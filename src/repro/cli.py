"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiments`` — list every reproducible experiment with its claim.
- ``run <experiment> [--scale smoke|quick|full] [--seed N] [--json F]
  [--csv F] [--chart]`` — regenerate one paper figure/claim and print
  its table (optionally as ASCII bars / archived to disk).
- ``compare <old.json> <new.json> [--threshold X]`` — diff two archived
  runs and flag regressions (exit code 1 if any cell moved past the
  threshold).
- ``demo`` — a 30-second guided tour (tiny cluster, a few transactions,
  a serializability check).
- ``chaos [--profile P] [--seed N] [--duration X] [--replicas R]
  [--topology T] [--open-loop RATE] [--admission POLICY] [--seeds K]
  [--jobs N]`` — run the microbenchmark
  under a named fault profile, verify every correctness invariant, and
  print the reproducible fault-trace digest. With ``--open-loop`` the
  cluster is additionally driven by open-loop clients at RATE txn/s per
  client through an admission controller, so overload and faults
  compose. ``--seeds K`` turns one run into a campaign over K
  consecutive seeds (fanned across processes with ``--jobs``), one
  digest and invariant verdict per seed.
- ``trace [--system calvin|baseline|both] [--format summary|chrome]
  [--out F]`` — run the microbenchmark with span tracing on and emit a
  per-phase latency breakdown or a Chrome ``trace_event`` JSON loadable
  in chrome://tracing / Perfetto.
- ``bench perf [--quick] [--out F] [--check BASELINE] [--profile C]``
  — measure the simulator's own wall-clock speed (events/sec,
  txns/sec) on a canned config matrix and optionally fail on
  regression vs a baseline; every written run also appends a
  timestamped row to ``BENCH_history.jsonl``. ``--profile CONFIG``
  cProfiles one config's measured window instead.
- ``bench saturation [--scale S] [--seed N] [--policy P] [--arrival A]
  [--partitions K]`` — sweep open-loop offered load across the
  admission knee and print the throughput-vs-latency curve.
- ``bench compare [--engines LIST] [--scale S] [--seed N]
  [--partitions K] [--mp LIST] [--hot LIST]`` — the three-system
  shoot-out: sweep contention × multipartition-% across the registered
  execution engines (Calvin core, 2PL+2PC baseline, STAR) and print one
  throughput table with a single-node reference column.
- ``bench geo [--scale S] [--seed N] [--topology T]
  [--partitions K]`` — the geo curves: WAN contention collapse over a
  routed multi-hop topology, and replica-local read throughput vs
  freshness; prints a deterministic digest over both tables.
  (``--smoke`` still parses as a deprecated alias for ``--scale smoke``.)
- ``bench elastic [--scale S] [--seed N] [--partitions K]
  [--policy P]`` — the elastic-reconfiguration sweep: drive a
  half-active cluster past its admission knee, then split a hot
  partition, retire an origin, and let the autoscaler do both from
  saturation signals; one shape digest per scenario plus a combined
  digest over the whole sweep.
- ``topology show [preset] [--replicas N] [--wan-latency S]
  [--wan-bandwidth B]`` — print a geo preset's datacenters, links and
  deterministic route table.
- ``lint [paths...] [--format text|json] [--baseline F]
  [--write-baseline] [--rules LIST] [--show-waived]`` — determinism
  static analysis (DET001–DET006) over Python sources; exit 1 on any
  unwaived, unbaselined finding. See docs/static_analysis.md.
- ``bisect [run flags] [--runs K] [--json]`` — run the microbenchmark
  K times at the same seed, compare per-epoch span digests, and report
  the first divergent epoch and span (the determinism debugger for a
  golden-digest mismatch).

``run``, ``chaos``, ``trace`` and ``bench`` additionally accept
``--sanitize``: arm the runtime determinism sanitizer for the duration
of the command, so any ambient randomness / wall-clock / entropy call
raises ``DeterminismViolation`` instead of silently diverging replicas.

Sweep-shaped commands (``run`` of a grid experiment, ``bench
perf|compare|geo|saturation|elastic``, ``chaos --seeds K``) accept
``--jobs N`` to fan independent cells across worker processes; every
cell builds its own cluster from an explicit seed, so results are
byte-identical at any job count.

The cross-command flags (``--seed``, ``--topology``, ``--sanitize``,
``--jobs``) are declared once in :func:`common_parent` and mounted per
subcommand, so spellings, defaults and help text cannot drift; changed
spellings keep working through a warn-once deprecation shim
(:func:`_warn_deprecated_spelling`).
"""

from __future__ import annotations

import argparse
import importlib
import sys
import warnings
from typing import Dict, List, Optional, Set

from repro.bench.io import save_csv, save_json

EXPERIMENTS: Dict[str, str] = {
    "fig5": "repro.bench.experiments.fig5_tpcc_scalability",
    "fig6": "repro.bench.experiments.fig6_microbenchmark",
    "fig7": "repro.bench.experiments.fig7_contention",
    "fig8": "repro.bench.experiments.fig8_checkpointing",
    "e5-disk": "repro.bench.experiments.e5_disk",
    "e6-replication": "repro.bench.experiments.e6_replication",
    "e7-recovery": "repro.bench.experiments.e7_recovery",
    "e8-failover": "repro.bench.experiments.e8_failover",
    "ablation-epoch": "repro.bench.experiments.ablation_epoch",
    "ablation-workers": "repro.bench.experiments.ablation_workers",
    "ablation-skew": "repro.bench.experiments.ablation_skew",
    "ablation-lockmanager": "repro.bench.experiments.ablation_lockmanager",
    "latency-breakdown": "repro.bench.experiments.latency_breakdown",
    "ablation-fanout": "repro.bench.experiments.ablation_fanout",
    "ollp-restarts": "repro.bench.experiments.ollp_restarts",
}


def common_parent(
    *,
    seed: Optional[int] = 2012,
    topology: bool = False,
    topology_default: Optional[str] = None,
    sanitize: bool = False,
    jobs: bool = False,
) -> argparse.ArgumentParser:
    """The one definition of the cross-command run flags.

    ``--seed``, ``--topology``, ``--sanitize`` and ``--jobs`` used to be
    re-declared per subcommand with drifting help strings; every
    subcommand now mounts the subset it supports from this shared parent
    (``add_parser(..., parents=[common_parent(...)])``), so spelling,
    defaults and help text stay consistent across the whole CLI.
    """
    parent = argparse.ArgumentParser(add_help=False)
    if seed is not None:
        parent.add_argument("--seed", type=int, default=seed)
    if topology:
        parent.add_argument(
            "--topology", default=topology_default,
            choices=("chain", "ring", "mesh", "hub"),
            help="geo topology preset: route WAN traffic over a datacenter "
                 "graph (one DC per replica) instead of the flat WAN pair",
        )
    if sanitize:
        parent.add_argument(
            "--sanitize", action="store_true",
            help="arm the runtime determinism sanitizer: ambient randomness, "
                 "wall-clock and entropy calls raise DeterminismViolation",
        )
        parent.add_argument(
            "--audit-footprints", action="store_true",
            help="record actual per-procedure key accesses and report "
                 "over/under-declared footprints (audit.footprint.* metrics "
                 "+ per-procedure table); digests are unaffected",
        )
    if jobs:
        parent.add_argument(
            "--jobs", type=int, default=None, metavar="N",
            help="fan independent sweep cells across N worker processes "
                 "(0 = one per core; default serial); results are "
                 "byte-identical at any job count",
        )
    return parent


def _add_run_flags(
    parser: argparse.ArgumentParser,
    *,
    duration: float,
    replicas: int,
    partitions: int = 2,
) -> None:
    """Workload-shape flags shared by ``chaos``, ``trace`` and ``bisect``
    (the cross-command flags come from :func:`common_parent`)."""
    parser.add_argument("--duration", type=float, default=duration,
                        help="measured virtual seconds")
    parser.add_argument("--replicas", type=int, default=replicas,
                        help="replica count (paxos replication when > 1)")
    parser.add_argument("--partitions", type=int, default=partitions)


def config_from_args(args: argparse.Namespace, **overrides):
    """Build the :class:`ClusterConfig` the run-flag commands share.

    Maps the :func:`common_parent` / :func:`_add_run_flags` namespace
    onto config fields (including the replicas → replication-mode rule
    every command used to restate inline); ``overrides`` win over the
    derived values.
    """
    from repro.config import ClusterConfig

    replicas = getattr(args, "replicas", 1)
    values = dict(
        num_partitions=getattr(args, "partitions", 2),
        num_replicas=replicas,
        replication_mode="paxos" if replicas > 1 else "none",
        seed=args.seed,
        topology=getattr(args, "topology", None),
        sanitize=getattr(args, "sanitize", False),
        audit_footprints=getattr(args, "audit_footprints", False),
    )
    values.update(overrides)
    return ClusterConfig(**values)


# Flag spellings that changed keep working through a warn-once shim.
_warned_spellings: Set[str] = set()


def _warn_deprecated_spelling(old: str, new: str) -> None:
    if old in _warned_spellings:
        return
    _warned_spellings.add(old)
    warnings.warn(
        f"{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Calvin (SIGMOD 2012) reproduction — experiments and demos",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("experiments", help="list reproducible experiments")

    run = sub.add_parser(
        "run", help="run one experiment",
        parents=[common_parent(sanitize=True, jobs=True)],
    )
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--scale", default="quick", choices=("smoke", "quick", "full"))
    run.add_argument("--json", metavar="FILE", help="also write the table as JSON")
    run.add_argument("--csv", metavar="FILE", help="also write the table as CSV")
    run.add_argument(
        "--chart", action="store_true", help="render the table as ASCII bars"
    )

    sub.add_parser("demo", help="run a small guided demo")

    chaos = sub.add_parser(
        "chaos", help="run a workload under fault injection and verify invariants",
        parents=[common_parent(topology=True, sanitize=True, jobs=True)],
    )
    from repro.faults.profiles import FAULT_PROFILES

    chaos.add_argument("--profile", default="chaos-mix",
                       choices=sorted(FAULT_PROFILES))
    _add_run_flags(chaos, duration=0.8, replicas=2)
    chaos.add_argument("--trace", action="store_true",
                       help="print the full fault trace, not just its digest")
    chaos.add_argument("--open-loop", type=float, metavar="RATE", default=None,
                       help="also drive open-loop clients at RATE txn/s each "
                            "(overload and faults compose)")
    chaos.add_argument("--admission", default="backpressure",
                       choices=("queue", "shed", "backpressure"),
                       help="admission policy in front of the sequencers "
                            "(used with --open-loop; default backpressure)")
    chaos.add_argument("--seeds", type=int, default=1, metavar="K",
                       help="campaign mode: run K consecutive seeds "
                            "(--seed .. --seed+K-1), verify every invariant "
                            "per seed, and print one digest per seed")

    trace = sub.add_parser(
        "trace", help="trace the microbenchmark and print latency breakdowns",
        parents=[common_parent(topology=True, sanitize=True)],
    )
    trace.add_argument("--system", default="both",
                       choices=("calvin", "baseline", "star", "both", "all"),
                       help="both = calvin+baseline; all adds the star engine")
    trace.add_argument("--format", default="summary",
                       choices=("summary", "chrome"),
                       help="summary = per-phase latency table; "
                            "chrome = trace_event JSON for chrome://tracing")
    trace.add_argument("--out", metavar="FILE",
                       help="write the chrome trace JSON to FILE")
    trace.add_argument("--mp-fraction", type=float, default=0.3,
                       help="multipartition transaction fraction")
    trace.add_argument("--profile", default=None,
                       choices=sorted(FAULT_PROFILES),
                       help="also inject a fault profile (calvin only)")
    _add_run_flags(trace, duration=0.5, replicas=1)

    compare = sub.add_parser(
        "compare", help="diff two archived experiment JSONs for regressions"
    )
    compare.add_argument("old", help="baseline result JSON")
    compare.add_argument("new", help="candidate result JSON")
    compare.add_argument("--threshold", type=float, default=0.10,
                         help="relative change flagged as regression (default 0.10)")

    bench = sub.add_parser(
        "bench", help="wall-clock benchmarks of the simulator itself"
    )
    bench_sub = bench.add_subparsers(dest="bench_command")
    perf = bench_sub.add_parser(
        "perf",
        help="measure events/sec + txns/sec on the canned config matrix",
        parents=[common_parent(seed=None, sanitize=True, jobs=True)],
    )
    perf.add_argument("--quick", action="store_true",
                      help="short durations (CI smoke)")
    perf.add_argument("--out", metavar="FILE", default="BENCH_perf.json",
                      help="where to write the result (default BENCH_perf.json)")
    perf.add_argument("--no-write", action="store_true",
                      help="print the result without writing --out")
    perf.add_argument("--check", metavar="BASELINE",
                      help="compare against a baseline BENCH_perf.json; "
                           "exit 1 on regression")
    perf.add_argument("--threshold", type=float, default=None,
                      help="normalised events/sec drop flagged as regression "
                           "(default 0.30)")
    perf.add_argument("--profile", metavar="CONFIG", default=None,
                      help="cProfile CONFIG's measured window instead of "
                           "benchmarking (e.g. tpcc-4p); prints the top "
                           "functions by cumulative time")
    perf.add_argument("--profile-out", metavar="FILE", default=None,
                      help="with --profile: dump raw pstats data to FILE "
                           "for snakeviz/pstats")
    perf.add_argument("--top", type=int, default=25, metavar="N",
                      help="with --profile: rows in the printed table "
                           "(default 25)")
    perf.add_argument("--history", metavar="FILE", default="BENCH_history.jsonl",
                      help="perf-history JSONL appended after each written "
                           "run (default BENCH_history.jsonl)")
    perf.add_argument("--no-history", action="store_true",
                      help="skip the history append")
    saturation = bench_sub.add_parser(
        "saturation",
        help="sweep open-loop offered load across the admission knee",
        parents=[common_parent(sanitize=True, jobs=True)],
    )
    saturation.add_argument("--scale", default="quick",
                            choices=("smoke", "quick", "full"))
    saturation.add_argument("--policy", default="backpressure",
                            choices=("queue", "shed", "backpressure"))
    saturation.add_argument("--arrival", default="poisson",
                            choices=("poisson", "uniform", "burst"))
    saturation.add_argument("--partitions", type=int, default=2)
    saturation.add_argument("--json", metavar="FILE",
                            help="also write the curve as JSON")
    saturation.add_argument("--csv", metavar="FILE",
                            help="also write the curve as CSV")
    saturation.add_argument("--chart", action="store_true",
                            help="render the curve as ASCII bars")
    shootout = bench_sub.add_parser(
        "compare",
        help="three-system shoot-out: contention × multipartition-% "
             "sweep across execution engines",
        parents=[common_parent(sanitize=True, jobs=True)],
    )
    shootout.add_argument("--engines", default="core,baseline,star",
                          help="comma-separated engine list "
                               "(default core,baseline,star)")
    shootout.add_argument("--scale", default="smoke",
                          choices=("smoke", "quick", "full"))
    shootout.add_argument("--partitions", type=int, default=4)
    shootout.add_argument("--mp", metavar="LIST", default=None,
                          help="comma-separated multipartition fractions, "
                               "e.g. 0,0.1,0.5,1 (default full sweep)")
    shootout.add_argument("--hot", metavar="LIST", default=None,
                          help="comma-separated per-partition hot-set sizes "
                               "(contention levels; default 10000,100)")
    shootout.add_argument("--json", metavar="FILE",
                          help="also write the table as JSON")
    shootout.add_argument("--csv", metavar="FILE",
                          help="also write the table as CSV")

    geo = bench_sub.add_parser(
        "geo",
        help="geo curves: WAN contention collapse + replica-local reads",
        parents=[common_parent(topology=True, topology_default="chain",
                               sanitize=True, jobs=True)],
    )
    geo.add_argument("--scale", default="quick",
                     choices=("smoke", "quick", "full"))
    geo.add_argument("--smoke", action="store_true",
                     help="deprecated alias for --scale smoke")
    geo.add_argument("--partitions", type=int, default=2)
    geo.add_argument("--json", metavar="PREFIX",
                     help="also write the tables as PREFIX-<experiment>.json")
    geo.add_argument("--csv", metavar="PREFIX",
                     help="also write the tables as PREFIX-<experiment>.csv")

    elastic = bench_sub.add_parser(
        "elastic",
        help="elastic reconfiguration sweep: split/resize/autoscale under "
             "open-loop overload, one shape digest per scenario",
        parents=[common_parent(sanitize=True, jobs=True)],
    )
    elastic.add_argument("--scale", default="quick",
                         choices=("smoke", "quick", "full"))
    elastic.add_argument("--partitions", type=int, default=4,
                         help="provisioned partitions; half start active, "
                              "the rest are dormant spares (default 4)")
    elastic.add_argument("--policy", default="backpressure",
                         choices=("queue", "shed", "backpressure"))
    elastic.add_argument("--json", metavar="FILE",
                         help="also write the table as JSON")
    elastic.add_argument("--csv", metavar="FILE",
                         help="also write the table as CSV")

    topology = sub.add_parser(
        "topology", help="inspect geo topology presets and their routes"
    )
    topology_sub = topology.add_subparsers(dest="topology_command")
    topo_show = topology_sub.add_parser(
        "show", help="print a preset's datacenters, links and route table"
    )
    topo_show.add_argument("preset", nargs="?", default="chain",
                           choices=("chain", "ring", "mesh", "hub"))
    topo_show.add_argument("--replicas", type=int, default=3,
                           help="datacenter count (one DC per replica)")
    topo_show.add_argument("--wan-latency", type=float, default=0.05,
                           help="per-link propagation latency, seconds")
    topo_show.add_argument("--wan-bandwidth", type=float, default=12.5e6,
                           help="per-link capacity, bytes/second")

    lint = sub.add_parser(
        "lint",
        help="static analysis over sources (DET rules) and registered "
             "procedures (FPT footprint rules)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files/directories to scan (default src/repro)",
    )
    lint.add_argument("--format", default="text", choices=("text", "json"))
    lint.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="grandfathered-findings JSON (default DETERMINISM_BASELINE.json "
             "when present)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="snapshot current active findings as the new baseline and exit 0",
    )
    lint.add_argument(
        "--rules", metavar="LIST", default=None,
        help="comma-separated rule subset, e.g. DET001,FPT006",
    )
    lint.add_argument(
        "--show-waived", action="store_true",
        help="also print waived and baselined findings",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--no-footprints", action="store_true",
        help="skip the FPT footprint pass over registered procedures "
             "(source-file DET rules only)",
    )

    bisect = sub.add_parser(
        "bisect",
        help="run the same seed twice and locate the first divergent epoch",
        parents=[common_parent(topology=True, sanitize=True)],
    )
    _add_run_flags(bisect, duration=0.3, replicas=1)
    bisect.add_argument("--profile", default=None,
                        choices=sorted(FAULT_PROFILES),
                        help="also inject a fault profile")
    bisect.add_argument("--runs", type=int, default=2,
                        help="number of same-seed runs to compare (default 2)")
    bisect.add_argument("--json", action="store_true",
                        help="emit the divergence report as JSON")
    return parser


def cmd_experiments() -> int:
    width = max(len(name) for name in EXPERIMENTS)
    for name in sorted(EXPERIMENTS):
        module = importlib.import_module(EXPERIMENTS[name])
        summary = (module.__doc__ or "").strip().splitlines()[0]
        print(f"{name.ljust(width)}  {summary}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import inspect

    module = importlib.import_module(EXPERIMENTS[args.experiment])
    kwargs = {}
    if args.jobs is not None:
        # Grid experiments fan their sweep across processes; the
        # single-scenario experiments have no grid to fan out.
        if "jobs" in inspect.signature(module.run).parameters:
            kwargs["jobs"] = args.jobs
        else:
            print(f"note: {args.experiment} has no sweep grid; "
                  "--jobs ignored", file=sys.stderr)
    result = module.run(scale=args.scale, seed=args.seed, **kwargs)
    print(result)
    if args.chart:
        from repro.bench.charts import ascii_chart
        from repro.errors import ConfigError

        print()
        try:
            print(ascii_chart(result))
        except ConfigError as exc:
            print(f"(not chartable: {exc})")
    if args.json:
        print(f"wrote {save_json(result, args.json)}")
    if args.csv:
        print(f"wrote {save_csv(result, args.csv)}")
    return 0


def cmd_demo() -> int:
    from repro import CalvinDB

    print("Building a 2-partition Calvin cluster...")
    db = CalvinDB(num_partitions=2, seed=1)

    @db.procedure("transfer")
    def transfer(ctx):
        src, dst, amount = ctx.args
        balance = ctx.read(src) or 0
        if balance < amount:
            ctx.abort("insufficient funds")
        ctx.write(src, balance - amount)
        ctx.write(dst, (ctx.read(dst) or 0) + amount)

    db.load({"alice": 100, "bob": 0})
    result = db.execute(
        "transfer", ("alice", "bob", 40),
        read_set=["alice", "bob"], write_set=["alice", "bob"],
    )
    print(f"transfer committed in {result.latency * 1e3:.1f} ms of virtual time "
          f"(one sequencing epoch + execution)")
    print(f"alice={db.get('alice')}, bob={db.get('bob')}")
    overdraft = db.execute(
        "transfer", ("alice", "bob", 10_000),
        read_set=["alice", "bob"], write_set=["alice", "bob"],
    )
    print(f"overdraft attempt: {overdraft.status.value} ({overdraft.value})")
    print("Try `python -m repro experiments` for the paper's figures.")
    return 0


def _chaos_checks():
    from repro.core import checkers

    return [
        ("serializability", checkers.check_serializability),
        ("conflict order", checkers.check_conflict_order),
        ("replica consistency", lambda c: checkers.check_replica_consistency(c) or 0),
        ("epoch contiguity", checkers.check_epoch_contiguity),
        ("no double-apply", checkers.check_no_double_apply),
        ("no lost commits", checkers.check_no_lost_commits),
        ("replica prefix consistency", checkers.check_replica_prefix_consistency),
    ]


def _chaos_campaign_cell(
    profile: str,
    seed: int,
    duration: float,
    replicas: int,
    partitions: int,
    topology: Optional[str],
    open_loop: Optional[float],
    admission: str,
) -> Dict:
    """One seed of a chaos campaign: run, verify invariants, summarize.

    Module-level (picklable) so ``--jobs`` can fan seeds across worker
    processes; everything returned is plain data plus a gauge-free
    metrics registry, so summaries merge in the parent.
    """
    from repro.bench.parallel import portable_registry
    from repro.config import ClusterConfig
    from repro.core.cluster import CalvinCluster
    from repro.core.traffic import ClientProfile
    from repro.workloads.microbenchmark import Microbenchmark

    driven = open_loop is not None
    config = ClusterConfig(
        num_partitions=partitions,
        num_replicas=replicas,
        replication_mode="paxos" if replicas > 1 else "none",
        seed=seed,
        fault_profile=profile,
        fault_horizon=duration * 0.85,
        admission_policy=admission if driven else "none",
        admission_epoch_budget=20 if driven else None,
        topology=topology,
    )
    cluster = CalvinCluster(
        config,
        workload=Microbenchmark(mp_fraction=0.3, hot_set_size=10, cold_set_size=100),
        monitor_interval=config.epoch_duration * 5,
    )
    cluster.load_workload_data()
    cluster.add_clients(ClientProfile(per_partition=4, max_txns=20))
    if driven:
        arrivals = max(1, int(open_loop * duration))
        cluster.add_clients(
            ClientProfile(
                per_partition=4, mode="open", rate=open_loop, max_txns=arrivals
            )
        )
    cluster.run(duration=duration)
    cluster.quiesce()
    failures = []
    checked = 0
    for name, check in _chaos_checks():
        try:
            checked += check(cluster)
        except Exception as exc:  # noqa: BLE001 - campaign reports, not aborts
            failures.append(f"{name}: {exc}")
    injector = cluster.fault_injector
    return {
        "seed": seed,
        "digest": injector.trace_digest(),
        "committed": cluster.metrics.committed,
        "fault_events": len(injector.trace),
        "invariants_checked": checked,
        "failures": failures,
        "registry": portable_registry(cluster.metrics_registry),
    }


def _chaos_campaign(args: argparse.Namespace) -> int:
    from repro.bench.parallel import Cell, merge_registries, run_cells

    seeds = list(range(args.seed, args.seed + args.seeds))
    print(f"chaos campaign: profile {args.profile}, seeds "
          f"{seeds[0]}..{seeds[-1]}, {args.duration}s of virtual time each...")
    cells = [
        Cell(
            fn=_chaos_campaign_cell,
            args=(args.profile, seed, args.duration, args.replicas,
                  args.partitions, args.topology, args.open_loop,
                  args.admission),
            label=f"seed {seed}",
        )
        for seed in seeds
    ]
    summaries = run_cells(cells, jobs=args.jobs)
    ok = True
    for summary in summaries:
        status = "ok" if not summary["failures"] else "FAIL"
        print(f"  seed {summary['seed']}: {status}  "
              f"digest {summary['digest'][:16]}  "
              f"{summary['committed']} committed, "
              f"{summary['fault_events']} fault events, "
              f"{summary['invariants_checked']} invariants checked")
        for failure in summary["failures"]:
            ok = False
            print(f"    invariant VIOLATED: {failure}")
    merged = merge_registries([summary["registry"] for summary in summaries])
    total = sum(summary["committed"] for summary in summaries)
    print(f"campaign total: {total} committed across {len(seeds)} seeds; "
          f"{len(merged.snapshot())} merged instrument(s)")
    print("each seed reproduces bit-for-bit: rerun any one with "
          "`repro chaos --seed N`")
    return 0 if ok else 1


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.core.cluster import CalvinCluster
    from repro.core.traffic import ClientProfile
    from repro.workloads.microbenchmark import Microbenchmark

    if args.seeds > 1:
        return _chaos_campaign(args)
    open_loop = args.open_loop is not None
    config = config_from_args(
        args,
        fault_profile=args.profile,
        fault_horizon=args.duration * 0.85,
        admission_policy=args.admission if open_loop else "none",
        admission_epoch_budget=20 if open_loop else None,
    )
    cluster = CalvinCluster(
        config,
        workload=Microbenchmark(mp_fraction=0.3, hot_set_size=10, cold_set_size=100),
        monitor_interval=config.epoch_duration * 5,
    )
    cluster.load_workload_data()
    cluster.add_clients(ClientProfile(per_partition=4, max_txns=20))
    if open_loop:
        # Bounded arrivals so quiesce() still has a fixed point: overload
        # and faults compose, then the cluster drains.
        arrivals = max(1, int(args.open_loop * args.duration))
        cluster.add_clients(
            ClientProfile(
                per_partition=4, mode="open", rate=args.open_loop,
                max_txns=arrivals,
            )
        )
    injector = cluster.fault_injector
    print(injector.plan.describe())
    print(f"running {args.duration}s of virtual time (seed {args.seed})...")
    cluster.run(duration=args.duration)
    cluster.quiesce()

    for name, check in _chaos_checks():
        count = check(cluster)
        print(f"  invariant ok: {name} ({count} checked)")
    print(f"committed {cluster.metrics.committed} txns; "
          f"{injector.monitor_checks} live monitor sweeps; "
          f"{len(injector.trace)} fault-trace events")
    if open_loop:
        stats = cluster.admission_stats()
        print(f"admission ({args.admission}): {stats['offered']} offered, "
              f"{stats['admitted']} admitted, {stats['shed']} shed, "
              f"{stats['dropped']} dropped, "
              f"{stats['backpressured']} backpressured, "
              f"peak queue {stats['peak_queue_depth']}")
    if args.trace:
        for entry in injector.trace:
            print(f"  {entry}")
    print(f"trace digest {injector.trace_digest()}")
    print("rerun with the same seed to reproduce this run bit-for-bit")
    return 0


def _traced_microbenchmark(system: str, args: argparse.Namespace):
    """Run one system's microbenchmark with a live tracer; returns the tracer."""
    from repro.config import ClusterConfig
    from repro.core.traffic import ClientProfile
    from repro.obs import TraceRecorder
    from repro.workloads.microbenchmark import Microbenchmark

    tracer = TraceRecorder()
    workload = Microbenchmark(
        mp_fraction=args.mp_fraction, hot_set_size=10, cold_set_size=100
    )
    if system == "calvin":
        from repro.core.cluster import CalvinCluster

        config = config_from_args(
            args,
            fault_profile=args.profile,
            fault_horizon=args.duration * 0.85,
        )
        cluster = CalvinCluster(config, workload=workload, tracer=tracer)
    elif system == "star":
        from repro.engines import build_cluster

        # The star engine models one replica and no fault injection.
        config = ClusterConfig(
            num_partitions=args.partitions, num_replicas=1, seed=args.seed,
            engine="star", sanitize=args.sanitize,
        )
        cluster = build_cluster(config, workload=workload, tracer=tracer)
    else:
        from repro.baseline.cluster import BaselineCluster

        # The baseline models a single replica; fault profiles are a
        # Calvin-cluster feature, so they apply to the calvin run only.
        config = ClusterConfig(
            num_partitions=args.partitions, num_replicas=1, seed=args.seed,
            sanitize=args.sanitize,
        )
        cluster = BaselineCluster(config, workload=workload, tracer=tracer)
    cluster.load_workload_data()
    cluster.add_clients(ClientProfile(per_partition=4, max_txns=20))
    cluster.run(duration=args.duration)
    cluster.quiesce()
    return tracer


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs import chrome_trace, summary_table, write_chrome_trace

    if args.system == "both":
        systems = ("calvin", "baseline")
    elif args.system == "all":
        systems = ("calvin", "baseline", "star")
    else:
        systems = (args.system,)
    # With --format=chrome and no --out, stdout must stay pure JSON.
    quiet = args.format == "chrome" and not args.out
    runs = {}
    for system in systems:
        if not quiet:
            print(f"tracing {system}: microbenchmark, seed {args.seed}, "
                  f"{args.duration}s of virtual time...")
        runs[system] = _traced_microbenchmark(system, args)

    if args.format == "chrome":
        traces = {name: tracer.spans for name, tracer in runs.items()}
        if args.out:
            path = write_chrome_trace(traces, args.out)
            spans = sum(len(tracer) for tracer in runs.values())
            print(f"wrote {path} ({spans} spans) — "
                  "load in chrome://tracing or ui.perfetto.dev")
        else:
            print(json.dumps(chrome_trace(traces)))
        return 0

    for name, tracer in runs.items():
        kinds = sorted({span.kind.value for span in tracer.spans})
        print()
        print(summary_table(tracer.spans, title=name))
        print(f"{len(tracer)} spans over {len(kinds)} phases; "
              f"trace digest {tracer.digest()}")
    print("\nrerun with the same seed to reproduce these digests bit-for-bit")
    return 0


def cmd_bench_saturation(args: argparse.Namespace) -> int:
    from repro.bench import saturation

    print(f"sweeping offered load ({args.scale} scale, seed {args.seed}, "
          f"policy {args.policy}, {args.arrival} arrivals)...",
          file=sys.stderr)
    result = saturation.run(
        scale=args.scale,
        seed=args.seed,
        policy=args.policy,
        arrival=args.arrival,
        partitions=args.partitions,
        jobs=args.jobs,
    )
    print(result)
    if args.chart:
        from repro.bench.charts import ascii_chart
        from repro.errors import ConfigError

        print()
        try:
            print(ascii_chart(result))
        except ConfigError as exc:
            print(f"(not chartable: {exc})")
    if args.json:
        print(f"wrote {save_json(result, args.json)}")
    if args.csv:
        print(f"wrote {save_csv(result, args.csv)}")
    return 0


def cmd_bench_geo(args: argparse.Namespace) -> int:
    from repro.bench import geo

    if args.smoke:
        _warn_deprecated_spelling("bench geo --smoke", "--scale smoke")
    scale = "smoke" if args.smoke else args.scale
    print(f"geo curves ({scale} scale, seed {args.seed}, "
          f"{args.topology} topology, {args.partitions} partitions)...",
          file=sys.stderr)
    collapse, reads, digest = geo.run(
        scale=scale,
        seed=args.seed,
        topology=args.topology,
        partitions=args.partitions,
        jobs=args.jobs,
    )
    print(collapse)
    print()
    print(reads)
    print(f"\ngeo digest {digest}")
    print("rerun with the same seed to reproduce this digest bit-for-bit")
    for result in (collapse, reads):
        if args.json:
            print(f"wrote {save_json(result, f'{args.json}-{result.experiment}.json')}")
        if args.csv:
            print(f"wrote {save_csv(result, f'{args.csv}-{result.experiment}.csv')}")
    return 0


def cmd_bench_elastic(args: argparse.Namespace) -> int:
    from repro.bench import elastic

    print(f"elastic reconfiguration sweep ({args.scale} scale, "
          f"seed {args.seed}, {args.partitions} partitions, "
          f"policy {args.policy})...",
          file=sys.stderr)
    result, digest = elastic.run(
        scale=args.scale,
        seed=args.seed,
        partitions=args.partitions,
        policy=args.policy,
        jobs=args.jobs,
    )
    print(result)
    print(f"\nelastic digest {digest}")
    print("rerun with the same seed (any --jobs) to reproduce this "
          "digest bit-for-bit")
    if args.json:
        print(f"wrote {save_json(result, args.json)}")
    if args.csv:
        print(f"wrote {save_csv(result, args.csv)}")
    return 0


def cmd_topology(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.topology_command != "show":
        parser.parse_args(["topology", "--help"])
        return 2
    from repro.geo.presets import GEO_PRESETS

    topo = GEO_PRESETS[args.preset](
        args.replicas, args.wan_latency, args.wan_bandwidth, 0.0005, 125e6
    )
    print(topo.describe())
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import shootout

    engines = tuple(part.strip() for part in args.engines.split(",") if part.strip())
    kwargs = {}
    if args.mp:
        kwargs["mp_fractions"] = tuple(
            float(part) for part in args.mp.split(",") if part.strip()
        )
    if args.hot:
        kwargs["contention"] = tuple(
            (f"hot={part.strip()}", int(part))
            for part in args.hot.split(",")
            if part.strip()
        )
    print(f"engine shoot-out: {', '.join(engines)} ({args.scale} scale, "
          f"seed {args.seed}, {args.partitions} partitions)...",
          file=sys.stderr)
    result = shootout.run(
        scale=args.scale,
        seed=args.seed,
        partitions=args.partitions,
        engines=engines,
        progress=lambda line: print(f"  {line}", file=sys.stderr),
        jobs=args.jobs,
        **kwargs,
    )
    print(result)
    if args.json:
        print(f"wrote {save_json(result, args.json)}")
    if args.csv:
        print(f"wrote {save_csv(result, args.csv)}")
    return 0


def cmd_bench(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    import json

    from repro.bench import perf

    if args.bench_command == "saturation":
        return cmd_bench_saturation(args)
    if args.bench_command == "geo":
        return cmd_bench_geo(args)
    if args.bench_command == "elastic":
        return cmd_bench_elastic(args)
    if args.bench_command == "compare":
        return cmd_bench_compare(args)
    if args.bench_command != "perf":
        parser.parse_args(["bench", "--help"])
        return 2
    if args.profile:
        print(f"profiling {args.profile} "
              f"({'quick' if args.quick else 'full'} window)...",
              file=sys.stderr)
        table, dumped = perf.profile_config(
            args.profile, quick=args.quick, out=args.profile_out,
            top_n=args.top,
        )
        print(table, end="")
        if dumped:
            print(f"wrote {dumped} (raw pstats: "
                  f"`python -m pstats {dumped}` or snakeviz)")
        return 0
    mode = "quick" if args.quick else "full"
    print(f"running perf benchmark ({mode} mode)...", file=sys.stderr)
    result = perf.run_perf(quick=args.quick, jobs=args.jobs)
    for name, record in result["configs"].items():
        print(f"  {name}: {record['events_per_sec']:,.0f} ev/s, "
              f"{record['txns_per_sec']:,.0f} txn/s "
              f"({record['events']} events in {record['wall_seconds']:.2f}s)")
    print(f"  calibration: {result['calibration_ops_per_sec']:,.0f} ops/s "
          f"(accel={'on' if result['accel'] else 'off'})")
    if not args.no_write:
        with open(args.out, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
        if not args.no_history:
            print(f"appended {perf.append_history(result, args.history)}")
    if args.check:
        with open(args.check) as handle:
            baseline = json.load(handle)
        threshold = perf.DEFAULT_THRESHOLD if args.threshold is None else args.threshold
        comparison = perf.compare(baseline, result, threshold=threshold)
        print(comparison)
        return 0 if comparison.ok else 1
    return 0


def render_rule_catalogue() -> str:
    """The ``repro lint --list-rules`` text: rule families grouped, one
    line per rule (pinned by test_analysis_lint)."""
    from repro.analysis import FPT_RULES, RULES

    families = (
        ("DET — determinism rules (scan Python sources)", RULES),
        ("FPT — footprint rules (check registered procedures)", FPT_RULES),
    )
    width = max(len(rule) for _, rules in families for rule in rules)
    lines: List[str] = []
    for title, rules in families:
        lines.append(title)
        for rule in sorted(rules):
            lines.append(f"  {rule.ljust(width)}  {rules[rule]}")
    return "\n".join(lines)


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import lint_paths, write_baseline

    if args.list_rules:
        print(render_rule_catalogue())
        return 0
    rules = None
    if args.rules:
        rules = {part.strip() for part in args.rules.split(",") if part.strip()}
    report = lint_paths(
        args.paths, rules=rules, baseline=args.baseline,
        footprints=not args.no_footprints,
    )
    if args.write_baseline:
        path = write_baseline(report, args.baseline or "DETERMINISM_BASELINE.json")
        print(f"wrote {path} ({len(report.active)} grandfathered finding(s); "
              "justify or fix each entry)")
        return 0
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.render_text(show_waived=args.show_waived))
    return 0 if report.ok else 1


def cmd_bisect(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import bisect_runs
    from repro.core.cluster import CalvinCluster
    from repro.core.traffic import ClientProfile
    from repro.obs import TraceRecorder
    from repro.workloads.microbenchmark import Microbenchmark

    config = config_from_args(
        args,
        fault_profile=args.profile,
        fault_horizon=args.duration * 0.85,
    )

    def build_and_run(index: int):
        if not args.json:
            print(f"run {index + 1}/{max(2, args.runs)}: seed {args.seed}, "
                  f"{args.duration}s of virtual time...")
        tracer = TraceRecorder()
        cluster = CalvinCluster(
            config,
            workload=Microbenchmark(
                mp_fraction=0.3, hot_set_size=10, cold_set_size=100
            ),
            tracer=tracer,
        )
        cluster.load_workload_data()
        cluster.add_clients(ClientProfile(per_partition=4, max_txns=20))
        cluster.run(duration=args.duration)
        cluster.quiesce()
        return list(tracer.spans)

    report = bisect_runs(
        build_and_run, config.epoch_duration, runs=max(2, args.runs)
    )
    if args.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.describe())
        if not report.equivalent:
            print("a same-seed divergence means ambient state leaked into "
                  "the run — try --sanitize and `repro lint` to find it")
    return 0 if report.equivalent else 1


def _dispatch(args: argparse.Namespace,
              parser: argparse.ArgumentParser) -> Optional[int]:
    """Route a parsed namespace to its command; None = unknown command."""
    if args.command == "experiments":
        return cmd_experiments()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "demo":
        return cmd_demo()
    if args.command == "chaos":
        return cmd_chaos(args)
    if args.command == "trace":
        return cmd_trace(args)
    if args.command == "bench":
        return cmd_bench(args, parser)
    if args.command == "topology":
        return cmd_topology(args, parser)
    if args.command == "lint":
        return cmd_lint(args)
    if args.command == "bisect":
        return cmd_bisect(args)
    if args.command == "compare":
        from repro.bench.compare import compare_files

        comparison = compare_files(args.old, args.new, args.threshold)
        print(comparison)
        return 0 if comparison.ok else 1
    return None


def main(argv: Optional[List[str]] = None) -> int:
    from contextlib import nullcontext

    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "sanitize", False) and args.command != "bisect":
        # Arm the trip wires for the whole command: cluster construction,
        # the simulated run(s), and reporting all happen inside. (bisect
        # threads the flag through its ClusterConfig instead, so each
        # compared run arms and disarms around its own kernel loop.)
        from repro.analysis import DeterminismSanitizer

        guard = DeterminismSanitizer()
    else:
        guard = nullcontext()
    with guard:
        if not getattr(args, "audit_footprints", False):
            result = _dispatch(args, parser)
        else:
            # Arm footprint auditing for the whole command: every cluster
            # built inside (experiments construct their own) attaches an
            # auditor and reports back through the scope. One merged table
            # covers the command; --jobs worker processes are not
            # collected (run serially when auditing).
            from repro.analysis import audit_scope
            from repro.analysis.footprint import default_registry

            with audit_scope() as scope:
                result = _dispatch(args, parser)
            merged = scope.merged()
            print()
            print(merged.render_table())
            verdicts = merged.cross_validate(default_registry())
            print(
                "  static FPT006 cross-check: "
                f"agree={verdicts['agree']} "
                f"static-only={verdicts['static_only']} "
                f"runtime-only={verdicts['runtime_only']}"
            )
        if result is not None:
            return result
    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())

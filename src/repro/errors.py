"""Exception hierarchy for the Calvin reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the library boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel detected an internal fault."""


class NetworkError(ReproError):
    """A message was addressed to an unknown node or malformed."""


class StorageError(ReproError):
    """A storage-engine level failure (unknown key space, bad checkpoint...)."""


class KeyNotFound(StorageError):
    """A read referenced a key that does not exist in the store."""


class FootprintViolation(ReproError):
    """Transaction logic touched a key outside its declared read/write set.

    Calvin requires read/write sets to be declared (or discovered via
    OLLP reconnaissance) before sequencing; executing outside the
    declared footprint would break determinism, so it is a hard error.
    """


class TransactionAborted(ReproError):
    """Raised inside transaction logic to signal a deterministic abort.

    In Calvin only *logic-induced* aborts exist (e.g. TPC-C New Order's
    1% invalid-item rollback); there are no deadlock or nondeterministic
    aborts. The baseline 2PC system additionally aborts on wait-die
    conflicts, reusing this type with ``reason``.
    """

    def __init__(self, reason: str = "aborted by transaction logic"):
        super().__init__(reason)
        self.reason = reason


class SchedulerError(ReproError):
    """Deterministic-scheduler invariant violation (a bug, not a workload error)."""


class PaxosError(ReproError):
    """Paxos protocol invariant violation."""


class RecoveryError(ReproError):
    """Recovery could not reconstruct a consistent state."""


class ConsistencyError(ReproError):
    """A correctness checker found divergent replicas or a
    non-serializable outcome."""


class DeterminismViolation(ReproError):
    """Nondeterministic ambient state was touched during a sanitized run.

    Raised by the runtime determinism sanitizer
    (:class:`repro.analysis.DeterminismSanitizer`) when simulated code
    reaches for the process-global RNG, the wall clock, or host entropy
    — any of which would make replicas (or same-seed reruns) diverge.
    The fix is always the same: draw from the cluster's seeded
    :class:`~repro.sim.rng.RngStreams` and read virtual ``sim.now``.
    """

"""Simulated cluster network: latency + bandwidth, per-link FIFO delivery.

Nodes register a handler under an address (any hashable id). ``send``
computes a delivery time from the link's latency and the message size
over the link's bandwidth, then clamps it to preserve FIFO ordering per
directed link — TCP-like ordering, which the Calvin scheduler's
remote-read protocol and Paxos both assume.

Topologies map each address to a *site* (datacenter). Intra-site links
use the LAN profile, inter-site links the WAN profile; this is how the
replication experiment models geographically distant replicas.

``send`` is on the critical path of every message hop, so the
common (fault-free) case avoids recomputation: link specs are memoised
per address pair, transfer times per (spec, size) — all link profiles
are jitter-free, so the sample for a given size never changes — and
same-tick deliveries on one link coalesce into a single heap entry when
that is provably order-preserving (the pending batch is still the most
recently scheduled entry and the arrival times are identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.errors import NetworkError

Address = Hashable
Handler = Callable[[Address, Any], None]


@dataclass(slots=True)
class DeliveryVerdict:
    """What a fault filter decided about one message.

    - ``drop``: the message vanishes (lossy link / crashed destination).
    - ``hold``: the filter takes custody (e.g. a network partition that
      buffers traffic TCP-style until it heals and re-sends it).
    - ``extra_delay``: added *after* the FIFO clamp, so a delayed message
      can arrive behind later traffic on the same link (reordering).
    - ``copies``: total deliveries (2+ = duplication).
    """

    drop: bool = False
    hold: bool = False
    extra_delay: float = 0.0
    copies: int = 1


DELIVER = DeliveryVerdict()

# filter(now, src, dst, message, size) -> DeliveryVerdict
FaultFilter = Callable[[float, Address, Address, Any, int], DeliveryVerdict]


@dataclass(frozen=True)
class LinkSpec:
    """One directed link class: latency in seconds, bandwidth in bytes/sec."""

    latency: float
    bandwidth: Optional[float] = None  # None = infinite

    def transfer_time(self, size: int) -> float:
        if self.bandwidth is None or size <= 0:
            return self.latency
        return self.latency + size / self.bandwidth


class Topology:
    """Maps addresses to sites and (site, site) pairs to link specs."""

    def __init__(self, local: LinkSpec, intra_site: LinkSpec, inter_site: LinkSpec):
        self.local = local
        self.intra_site = intra_site
        self.inter_site = inter_site
        self._sites: Dict[Address, int] = {}
        self._overrides: Dict[Tuple[int, int], LinkSpec] = {}
        # Memoised link() results; invalidated whenever placement or
        # overrides change (mutations happen at setup time, not per-send).
        self._link_cache: Dict[Tuple[Address, Address], LinkSpec] = {}
        # Bumped on every mutation so downstream caches (the network's
        # per-route transfer times) know to invalidate themselves.
        self.version = 0

    def place(self, address: Address, site: int) -> None:
        """Assign ``address`` to datacenter ``site``."""
        self._sites[address] = site
        self._link_cache.clear()
        self.version += 1

    def site_of(self, address: Address) -> int:
        return self._sites.get(address, 0)

    def set_site_link(self, site_a: int, site_b: int, spec: LinkSpec) -> None:
        """Override the link spec between two sites (both directions)."""
        self._overrides[(site_a, site_b)] = spec
        self._overrides[(site_b, site_a)] = spec
        self._link_cache.clear()
        self.version += 1

    def link(self, src: Address, dst: Address) -> LinkSpec:
        key = (src, dst)
        spec = self._link_cache.get(key)
        if spec is None:
            spec = self._link_cache[key] = self._compute_link(src, dst)
        return spec

    def _compute_link(self, src: Address, dst: Address) -> LinkSpec:
        if src == dst:
            return self.local
        site_src, site_dst = self.site_of(src), self.site_of(dst)
        if site_src == site_dst:
            return self.intra_site
        return self._overrides.get((site_src, site_dst), self.inter_site)


def lan_topology(latency: float = 0.0005, bandwidth: float = 125e6) -> Topology:
    """A single-datacenter topology (default: 0.5 ms, 1 Gbps)."""
    return Topology(
        local=LinkSpec(latency=0.0, bandwidth=None),
        intra_site=LinkSpec(latency=latency, bandwidth=bandwidth),
        inter_site=LinkSpec(latency=latency, bandwidth=bandwidth),
    )


def wan_topology(
    lan_latency: float = 0.0005,
    wan_latency: float = 0.05,
    lan_bandwidth: float = 125e6,
    wan_bandwidth: float = 12.5e6,
) -> Topology:
    """Multi-datacenter topology (default WAN one-way latency 50 ms)."""
    return Topology(
        local=LinkSpec(latency=0.0, bandwidth=None),
        intra_site=LinkSpec(latency=lan_latency, bandwidth=lan_bandwidth),
        inter_site=LinkSpec(latency=wan_latency, bandwidth=wan_bandwidth),
    )


class Network:
    """Message transport over a :class:`Topology` on a simulator."""

    def __init__(self, sim, topology: Optional[Topology] = None):
        self.sim = sim
        self.topology = topology or lan_topology()
        self._handlers: Dict[Address, Handler] = {}
        self._last_arrival: Dict[Tuple[Address, Address], float] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        # Fault-injection hook: consulted once per send (see faults/).
        self.fault_filter: Optional[FaultFilter] = None
        self.messages_dropped = 0
        self.messages_held = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0
        self.batched_deliveries = 0
        # Minimum spacing between same-link deliveries; preserves FIFO
        # while keeping equal-latency messages effectively simultaneous.
        self._fifo_epsilon = 1e-9
        # (src, dst, size) -> transfer time, valid for one topology
        # version. Specs are frozen and jitter-free, so within a version
        # a sample never goes stale.
        self._route_cache: Dict[Tuple[Address, Address, int], float] = {}
        self._route_version = self.topology.version
        # link -> (arrival, seq-at-schedule, messages) for the delivery
        # batch most recently scheduled on that link (see send()).
        self._pending_batches: Dict[
            Tuple[Address, Address], Tuple[float, int, List[Any]]
        ] = {}

    def register(self, address: Address, handler: Handler) -> None:
        """Attach ``handler(src, message)`` as the receiver for ``address``."""
        if address in self._handlers:
            raise NetworkError(f"address already registered: {address!r}")
        self._handlers[address] = handler

    def unregister(self, address: Address) -> None:
        """Detach ``address`` (e.g. to simulate a crashed node)."""
        self._handlers.pop(address, None)

    def send(self, src: Address, dst: Address, message: Any, size: int = 256) -> None:
        """Deliver ``message`` from ``src`` to ``dst`` after the link delay.

        Messages to unregistered destinations are dropped (the
        destination may have crashed); senders needing acknowledgement
        implement it at the protocol level, exactly as on a real network.
        """
        self.messages_sent += 1
        self.bytes_sent += size
        verdict = DELIVER
        if self.fault_filter is not None:
            verdict = self.fault_filter(self.sim.now, src, dst, message, size)
            if verdict.drop:
                self.messages_dropped += 1
                return
            if verdict.hold:
                # The filter has taken custody (it re-sends on heal).
                self.messages_held += 1
                return
        sim = self.sim
        cache = self._route_cache
        version = self.topology.version
        if version != self._route_version:
            cache.clear()
            self._route_version = version
        route = (src, dst, size)
        delay = cache.get(route)
        if delay is None:
            delay = cache[route] = self.topology.link(src, dst).transfer_time(size)
        arrival = sim.now + delay
        key = (src, dst)
        previous = self._last_arrival.get(key)
        if previous is not None and arrival <= previous:
            arrival = previous + self._fifo_epsilon
        self._last_arrival[key] = arrival
        if verdict.extra_delay == 0.0 and verdict.copies == 1:
            # Fast path: coalesce into the link's pending delivery batch
            # when provably order-preserving — the batch arrives at the
            # exact same time AND its heap entry is still the most
            # recently scheduled entry overall (no other event could
            # interleave between the batch and this message).
            batch = self._pending_batches.get(key)
            if batch is not None and batch[0] == arrival and batch[1] == sim._seq:
                batch[2].append(message)
                self.batched_deliveries += 1
                return
            messages = [message]
            # Inlined schedule_at: arrival >= now by construction (link
            # delay is non-negative and the FIFO clamp only moves it
            # forward), so the past-clamp branch can never fire.
            sim._seq = seq = sim._seq + 1
            heappush(sim._heap, (arrival, seq, self._deliver_batch, (key, messages), None))
            self._pending_batches[key] = (arrival, seq, messages)
            return
        # Extra delay lands *after* the FIFO clamp and is not recorded in
        # ``_last_arrival``: a later undelayed message can overtake this
        # one, which is exactly the reordering fault being modelled.
        if verdict.extra_delay > 0:
            self.messages_delayed += 1
            arrival += verdict.extra_delay
        if verdict.copies > 1:
            self.messages_duplicated += verdict.copies - 1
        for copy in range(max(1, verdict.copies)):
            self.sim.schedule_at(
                arrival + copy * self._fifo_epsilon, self._deliver, src, dst, message
            )

    def _deliver_batch(
        self, key: Tuple[Address, Address], messages: List[Any]
    ) -> None:
        batch = self._pending_batches.get(key)
        if batch is not None and batch[2] is messages:
            del self._pending_batches[key]
        src, dst = key
        handlers = self._handlers
        for message in messages:
            # Re-resolve per message: a handler may unregister its own
            # address mid-batch (crash during delivery).
            handler = handlers.get(dst)
            if handler is not None:
                handler(src, message)

    def _deliver(self, src: Address, dst: Address, message: Any) -> None:
        handler = self._handlers.get(dst)
        if handler is not None:
            handler(src, message)

    def register_metrics(self, registry, prefix: str = "net") -> None:
        """Expose transport tallies as gauges in ``registry``."""
        registry.gauge(f"{prefix}.messages_sent", lambda: self.messages_sent)
        registry.gauge(f"{prefix}.bytes_sent", lambda: self.bytes_sent)
        registry.gauge(f"{prefix}.messages_dropped", lambda: self.messages_dropped)
        registry.gauge(f"{prefix}.messages_held", lambda: self.messages_held)
        registry.gauge(f"{prefix}.messages_duplicated", lambda: self.messages_duplicated)
        registry.gauge(f"{prefix}.messages_delayed", lambda: self.messages_delayed)
        registry.gauge(f"{prefix}.batched_deliveries", lambda: self.batched_deliveries)

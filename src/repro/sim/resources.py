"""Counted resources: worker pools, disk queues, CPU slots.

A :class:`Resource` has integer capacity. ``request()`` returns an event
that triggers when a slot is granted (FIFO order). The holder calls
``release()`` when done. This mirrors SimPy's ``Resource`` but with the
minimum surface this project needs and strictly deterministic ordering.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Resource:
    """A counted, FIFO-granted resource."""

    def __init__(self, sim: "Simulator", capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Cumulative stats for utilization reporting.
        self.total_grants = 0
        self._busy_time = 0.0
        self._last_change = 0.0

    @property
    def in_use(self) -> int:
        """Slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """An event that triggers when a slot is granted to the caller."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._grant(event)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot; the longest-waiting request (if any) is granted."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        self._account()
        self._in_use -= 1
        if self._waiters:
            self._grant(self._waiters.popleft())

    def utilization(self, elapsed: float) -> float:
        """Average fraction of capacity busy over ``elapsed`` time."""
        if elapsed <= 0:
            return 0.0
        self._account()
        return self._busy_time / (elapsed * self.capacity)

    def _grant(self, event: Event) -> None:
        self._account()
        self._in_use += 1
        self.total_grants += 1
        event.succeed(self)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

"""Measurement primitives used by the benchmark harness.

These are deliberately simple: counters, latency samples with exact
percentiles, and fixed-width-bucket throughput time series (the shape
plotted in the paper's Figure 8 checkpointing experiment).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple


class Counter:
    """A named monotonic counter."""

    def __init__(self, name: str = "counter"):
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        """Zero the counter (start of a new measurement window)."""
        self.value = 0

    def merge(self, other: "Counter") -> None:
        """Fold another counter's count into this one."""
        self.value += other.value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}={self.value}>"


class LatencySample:
    """Collects latency observations; exact percentiles on demand."""

    def __init__(self, name: str = "latency") -> None:
        self.name = name
        self._values: List[float] = []
        self._sorted = True

    def add(self, value: float) -> None:
        self._values.append(value)
        self._sorted = False

    def values(self) -> Tuple[float, ...]:
        """The raw observations, in insertion order before the first
        percentile query (sorted after). Public accessor so consumers
        never reach into ``_values``."""
        return tuple(self._values)

    def reset(self) -> None:
        """Drop all observations."""
        self._values.clear()
        self._sorted = True

    def merge(self, other: "LatencySample") -> None:
        """Fold another sample's observations into this one."""
        self._values.extend(other._values)
        self._sorted = False

    def __len__(self) -> int:
        return len(self._values)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    def percentile(self, p: float) -> float:
        """Exact percentile by nearest-rank; ``p`` in [0, 100]."""
        if not self._values:
            return 0.0
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = max(1, math.ceil(p / 100.0 * len(self._values)))
        return self._values[rank - 1]

    @property
    def maximum(self) -> float:
        return max(self._values) if self._values else 0.0

    @property
    def minimum(self) -> float:
        return min(self._values) if self._values else 0.0


class ThroughputSeries:
    """Counts completions into fixed-width time buckets.

    ``series(end)`` yields ``(bucket_start_time, rate_per_second)`` rows,
    including empty buckets, so a dip (e.g. during a checkpoint) is
    visible rather than silently skipped.
    """

    def __init__(self, bucket_width: float = 0.1, name: str = "throughput"):
        if bucket_width <= 0:
            raise ValueError("bucket width must be positive")
        self.name = name
        self.bucket_width = bucket_width
        self._buckets: Dict[int, int] = {}
        self.total = 0

    def reset(self) -> None:
        """Drop all recorded completions."""
        self._buckets.clear()
        self.total = 0

    def merge(self, other: "ThroughputSeries") -> None:
        """Fold another series (same bucket width) into this one."""
        if other.bucket_width != self.bucket_width:
            raise ValueError(
                f"cannot merge series with bucket widths "
                f"{self.bucket_width} and {other.bucket_width}"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self.total += other.total

    def record(self, time: float, count: int = 1) -> None:
        index = int(time / self.bucket_width)
        self._buckets[index] = self._buckets.get(index, 0) + count
        self.total += count

    def series(self, end_time: float, start_time: float = 0.0) -> List[Tuple[float, float]]:
        first = int(start_time / self.bucket_width)
        last = int(end_time / self.bucket_width)
        rows = []
        for index in range(first, last + 1):
            count = self._buckets.get(index, 0)
            rows.append((index * self.bucket_width, count / self.bucket_width))
        return rows

    def rate(self, start_time: float, end_time: float) -> float:
        """Average completions/second over ``[start_time, end_time)``."""
        if end_time <= start_time:
            return 0.0
        first = int(start_time / self.bucket_width)
        last = int(end_time / self.bucket_width)
        total = sum(
            count for index, count in self._buckets.items() if first <= index < last
        )
        return total / (end_time - start_time)

"""Deterministic named random-number streams.

Every stochastic component (workload generators, disk latency, client
arrivals...) draws from its own named stream so that adding a new
consumer never perturbs the draws seen by existing ones. Stream seeds
are derived stably from the master seed and the stream name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Tuple


class RngStreams:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams: Dict[Tuple[str, ...], random.Random] = {}

    def stream(self, *name: object) -> random.Random:
        """Return the stream for ``name`` (created on first use)."""
        key = tuple(str(part) for part in name)
        stream = self._streams.get(key)
        if stream is None:
            digest = hashlib.sha256(
                (str(self.seed) + "\x00" + "\x00".join(key)).encode()
            ).digest()
            stream = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[key] = stream
        return stream

    def fork(self, *name: object) -> "RngStreams":
        """A child factory whose streams are independent of the parent's."""
        digest = hashlib.sha256(
            (str(self.seed) + "\x01" + "\x00".join(str(p) for p in name)).encode()
        ).digest()
        return RngStreams(int.from_bytes(digest[:8], "big"))

"""Deterministic discrete-event simulation kernel.

This subpackage is the substrate on which the simulated Calvin cluster
(and the 2PC baseline cluster) runs. It provides:

- :class:`~repro.sim.kernel.Simulator` — the event loop (virtual time),
- :class:`~repro.sim.events.Event` and combinators (``AllOf``/``AnyOf``),
- generator-based processes (:class:`~repro.sim.process.Process`),
- :class:`~repro.sim.resources.Resource` — counted resources such as a
  node's worker pool or a disk's request queue,
- :class:`~repro.sim.network.Network` — latency/bandwidth message
  transport with per-link FIFO delivery,
- deterministic named RNG streams (:class:`~repro.sim.rng.RngStreams`),
- measurement helpers (:mod:`repro.sim.stats`).

Everything is deterministic: a given seed and configuration always
produces the identical event trace, which the replica-consistency
checkers rely on.
"""

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.kernel import Simulator
from repro.sim.network import LinkSpec, Network, Topology, lan_topology, wan_topology
from repro.sim.process import Process
from repro.sim.resources import Resource
from repro.sim.rng import RngStreams
from repro.sim.stats import Counter, LatencySample, ThroughputSeries

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "LatencySample",
    "LinkSpec",
    "Network",
    "Process",
    "Resource",
    "RngStreams",
    "Simulator",
    "ThroughputSeries",
    "Timeout",
    "Topology",
    "lan_topology",
    "wan_topology",
]

"""Generator-based simulation processes.

A process is a Python generator that yields :class:`~repro.sim.events.Event`
objects; the kernel resumes the generator with the event's value when it
triggers. A process is itself an event that triggers with the generator's
return value, so processes can wait on each other.

Example::

    def worker(sim, pool):
        grant = yield pool.request()
        yield sim.timeout(0.001)          # do 1 ms of work
        pool.release()
        return "done"

    proc = sim.process(worker(sim, pool))
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Generator, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Process(Event):
    """Wraps a generator; the process event triggers on generator return."""

    __slots__ = ("_generator",)

    def __init__(self, sim: "Simulator", generator: Generator):
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator (did you call the function?)")
        # Inlined Event.__init__ + schedule (hot path).
        self.sim = sim
        self.value = None
        self._callbacks = []
        self._triggered = False
        self._ok = None
        self._generator = generator
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim.now, seq, self._step, (None, True), None))

    def _step(self, value: Any, ok: bool) -> None:
        try:
            if ok:
                target = self._generator.send(value)
            else:
                target = self._generator.throw(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # logic error inside the process
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(f"process yielded non-event: {target!r}"))
            return
        # Inlined target.add_callback(self._resume) — same semantics.
        callbacks = target._callbacks
        if callbacks is None:
            self.sim.schedule(0.0, self._resume, target)
        else:
            callbacks.append(self._resume)

    def _resume(self, event: Event) -> None:
        # _ok is strictly True/False once triggered — no bool() needed.
        self._step(event.value, event._ok)

"""The discrete-event simulation loop.

:class:`Simulator` keeps a binary heap of ``(time, sequence, fn, args,
owner)`` entries. Equal-time entries run in scheduling order (FIFO),
which makes runs bit-for-bit reproducible for a fixed seed — a property
the replica-consistency experiments depend on.

Entries may carry an *owner* tag (any hashable). Owners can be
suspended — their due entries are parked instead of dispatched — and
later resumed, which replays the parked entries in their original order.
This is the kernel-level hook the fault injector uses to crash and
restart a node's timer-driven processes without losing determinism.

The dispatch loop is the hottest code in the repository: every message
hop, CPU charge, and timer in a run passes through it. ``run`` therefore
binds the heap, ``heappop`` and the suspended-owner set to locals and
skips the park branch entirely while no owner is suspended (the common
case — fault-free runs never pay for crash support).
"""

from __future__ import annotations

import heapq
from math import inf
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Hashable,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.accel import dispatch_core as _dispatch_core
from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

HeapEntry = Tuple[float, int, Callable[..., None], tuple, Optional[Hashable]]


class Simulator:
    """A deterministic discrete-event simulator (virtual time in seconds)."""

    def __init__(self, sanitize: bool = False) -> None:
        self.now: float = 0.0
        self._heap: List[HeapEntry] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0
        # Determinism sanitizer: armed around every run()/
        # run_until_triggered() when requested (ClusterConfig.sanitize).
        # None in the common case, so the hot loop pays one attribute
        # check per run() call, not per event.
        self._sanitizer = None
        if sanitize:
            from repro.analysis.sanitizer import DeterminismSanitizer

            self._sanitizer = DeterminismSanitizer()
        # Tally of schedule_at calls whose target time was already in the
        # past and got clamped to "now" — visible in metric snapshots so
        # model bugs that schedule backwards in time do not pass silently.
        self.schedule_at_clamped = 0
        # Crash/restart support: owners whose entries are parked on pop.
        self._suspended: Set[Hashable] = set()
        self._parked: Dict[Hashable, List[Tuple[Callable[..., None], tuple]]] = {}

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args, None))

    def schedule_owned(
        self, owner: Optional[Hashable], delay: float, fn: Callable[..., None], *args: Any
    ) -> None:
        """Like :meth:`schedule`, tagging the entry with ``owner``.

        Owned entries are subject to :meth:`suspend_owner` /
        :meth:`resume_owner` (crash/restart of a node's processes).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args, owner))

    def schedule_many(
        self,
        owner: Optional[Hashable],
        delay: float,
        calls: Iterable[Tuple[Callable[..., None], tuple]],
    ) -> None:
        """Bulk-insert ``(fn, args)`` pairs at one delay, in order.

        Equivalent to calling :meth:`schedule_owned` once per pair —
        consecutive sequence numbers preserve FIFO order among the batch
        and relative to everything else — but hoists the time arithmetic
        and method lookups out of the loop.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        when = self.now + delay
        seq = self._seq
        heap = self._heap
        push = heapq.heappush
        for fn, args in calls:
            seq += 1
            push(heap, (when, seq, fn, args, owner))
        self._seq = seq

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute virtual time ``when``.

        Past times are clamped to "now" (and tallied in
        ``schedule_at_clamped`` — a nonzero count usually means a model
        bug computed a timestamp before the current virtual time).
        """
        delay = when - self.now
        if delay < 0.0:
            self.schedule_at_clamped += 1
            delay = 0.0
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args, None))

    # -- crash/restart hooks --------------------------------------------

    def suspend_owner(self, owner: Hashable) -> None:
        """Freeze ``owner``: its due entries are parked, not dispatched.

        Models a crashed (or stalled) component whose timers must not
        fire while it is down. Parked entries keep their original order.
        """
        if owner is None:
            raise SimulationError("cannot suspend the anonymous owner")
        self._suspended.add(owner)

    def resume_owner(self, owner: Hashable) -> None:
        """Unfreeze ``owner`` and replay its parked entries now, in order."""
        self._suspended.discard(owner)
        parked = self._parked.pop(owner, None)
        if parked:
            self.schedule_many(owner, 0.0, parked)

    def discard_parked(self, owner: Hashable) -> int:
        """Drop ``owner``'s parked entries (a restart that loses volatile
        timers rather than replaying them). Returns the number dropped."""
        return len(self._parked.pop(owner, []))

    def suspended(self, owner: Hashable) -> bool:
        return owner in self._suspended

    # -- event constructors ---------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that triggers after ``delay``."""
        return Timeout(self, delay, value)

    def all_of(self, events) -> AllOf:
        """An event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """An event that triggers when the first of ``events`` triggers."""
        return AnyOf(self, events)

    def process(self, generator: Generator) -> Process:
        """Start a generator as a simulation process."""
        return Process(self, generator)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Stops when the queue is empty, when virtual time would pass
        ``until``, or after ``max_events`` dispatches (a runaway guard).
        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        core = _dispatch_core()
        self._running = True
        if core is not None:
            # Accelerated path: the loop below, compiled. Bit-identical
            # by contract (tests/test_accel.py); the reentrancy guard
            # and sanitizer stay out here so both paths share them.
            sanitizer = self._sanitizer
            if sanitizer is not None:
                sanitizer.__enter__()
            try:
                core.run_loop(self, until, max_events)
            finally:
                self._running = False
                if sanitizer is not None:
                    sanitizer.__exit__(None, None, None)
            return self.now
        horizon = inf if until is None else until
        budget = inf if max_events is None else max_events
        heap = self._heap
        pop = heapq.heappop
        suspended = self._suspended
        executed = 0
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.__enter__()
        try:
            while heap:
                entry = heap[0]
                when = entry[0]
                if when > horizon:
                    self.now = until  # type: ignore[assignment]
                    break
                pop(heap)
                self.now = when
                if suspended:
                    owner = entry[4]
                    if owner is not None and owner in suspended:
                        self._parked.setdefault(owner, []).append((entry[2], entry[3]))
                        continue
                entry[2](*entry[3])
                executed += 1
                if executed >= budget:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; "
                        "likely a livelock in the model"
                    )
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self.events_executed += executed
            self._running = False
            if sanitizer is not None:
                sanitizer.__exit__(None, None, None)
        return self.now

    def run_until_triggered(
        self,
        event: Event,
        limit: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> Any:
        """Run until ``event`` triggers; return its value (raise if it failed).

        ``max_events`` bounds dispatches exactly like :meth:`run` — a
        runaway guard for drains that never converge.
        """
        core = _dispatch_core()
        if core is not None:
            sanitizer = self._sanitizer
            if sanitizer is not None:
                sanitizer.__enter__()
            try:
                core.run_until_loop(self, event, limit, max_events)
            finally:
                if sanitizer is not None:
                    sanitizer.__exit__(None, None, None)
            if event.ok:
                return event.value
            raise event.value
        horizon = inf if limit is None else limit
        budget = inf if max_events is None else max_events
        heap = self._heap
        pop = heapq.heappop
        suspended = self._suspended
        executed = 0
        sanitizer = self._sanitizer
        if sanitizer is not None:
            sanitizer.__enter__()
        try:
            while not event.triggered or event._callbacks is not None:
                if not heap:
                    raise SimulationError("event queue drained before event triggered")
                entry = heap[0]
                if entry[0] > horizon:
                    raise SimulationError(f"event not triggered before t={limit}")
                pop(heap)
                self.now = entry[0]
                if suspended:
                    owner = entry[4]
                    if owner is not None and owner in suspended:
                        self._parked.setdefault(owner, []).append((entry[2], entry[3]))
                        continue
                entry[2](*entry[3])
                executed += 1
                if executed >= budget:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; "
                        "likely a livelock in the model"
                    )
        finally:
            self.events_executed += executed
            if sanitizer is not None:
                sanitizer.__exit__(None, None, None)
        if event.ok:
            return event.value
        raise event.value

    @property
    def pending_events(self) -> int:
        """Number of entries currently queued."""
        return len(self._heap)

    def register_metrics(self, registry, prefix: str = "sim") -> None:
        """Expose kernel tallies as gauges in ``registry``."""
        registry.gauge(f"{prefix}.events_executed", lambda: self.events_executed)
        registry.gauge(f"{prefix}.pending_events", lambda: self.pending_events)
        registry.gauge(f"{prefix}.now", lambda: self.now)
        registry.gauge(f"{prefix}.schedule_at_clamped", lambda: self.schedule_at_clamped)

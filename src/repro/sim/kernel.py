"""The discrete-event simulation loop.

:class:`Simulator` keeps a binary heap of ``(time, sequence, fn, args,
owner)`` entries. Equal-time entries run in scheduling order (FIFO),
which makes runs bit-for-bit reproducible for a fixed seed — a property
the replica-consistency experiments depend on.

Entries may carry an *owner* tag (any hashable). Owners can be
suspended — their due entries are parked instead of dispatched — and
later resumed, which replays the parked entries in their original order.
This is the kernel-level hook the fault injector uses to crash and
restart a node's timer-driven processes without losing determinism.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Generator, Hashable, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

HeapEntry = Tuple[float, int, Callable[..., None], tuple, Optional[Hashable]]


class Simulator:
    """A deterministic discrete-event simulator (virtual time in seconds)."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[HeapEntry] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0
        # Crash/restart support: owners whose entries are parked on pop.
        self._suspended: Set[Hashable] = set()
        self._parked: Dict[Hashable, List[Tuple[Callable[..., None], tuple]]] = {}

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` units of virtual time."""
        self.schedule_owned(None, delay, fn, *args)

    def schedule_owned(
        self, owner: Optional[Hashable], delay: float, fn: Callable[..., None], *args: Any
    ) -> None:
        """Like :meth:`schedule`, tagging the entry with ``owner``.

        Owned entries are subject to :meth:`suspend_owner` /
        :meth:`resume_owner` (crash/restart of a node's processes).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args, owner))

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute virtual time ``when``."""
        self.schedule(max(0.0, when - self.now), fn, *args)

    # -- crash/restart hooks --------------------------------------------

    def suspend_owner(self, owner: Hashable) -> None:
        """Freeze ``owner``: its due entries are parked, not dispatched.

        Models a crashed (or stalled) component whose timers must not
        fire while it is down. Parked entries keep their original order.
        """
        if owner is None:
            raise SimulationError("cannot suspend the anonymous owner")
        self._suspended.add(owner)

    def resume_owner(self, owner: Hashable) -> None:
        """Unfreeze ``owner`` and replay its parked entries now, in order."""
        self._suspended.discard(owner)
        for fn, args in self._parked.pop(owner, []):
            self.schedule_owned(owner, 0.0, fn, *args)

    def discard_parked(self, owner: Hashable) -> int:
        """Drop ``owner``'s parked entries (a restart that loses volatile
        timers rather than replaying them). Returns the number dropped."""
        return len(self._parked.pop(owner, []))

    def suspended(self, owner: Hashable) -> bool:
        return owner in self._suspended

    # -- event constructors ---------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that triggers after ``delay``."""
        return Timeout(self, delay, value)

    def all_of(self, events) -> AllOf:
        """An event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """An event that triggers when the first of ``events`` triggers."""
        return AnyOf(self, events)

    def process(self, generator: Generator) -> Process:
        """Start a generator as a simulation process."""
        return Process(self, generator)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Stops when the queue is empty, when virtual time would pass
        ``until``, or after ``max_events`` dispatches (a runaway guard).
        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        try:
            dispatched = 0
            while self._heap:
                when, _seq, fn, args, owner = self._heap[0]
                if until is not None and when > until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                self.now = when
                if owner is not None and owner in self._suspended:
                    self._parked.setdefault(owner, []).append((fn, args))
                    continue
                fn(*args)
                self.events_executed += 1
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; "
                        "likely a livelock in the model"
                    )
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def run_until_triggered(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; return its value (raise if it failed)."""
        while not event.triggered or event._callbacks is not None:
            if not self._heap:
                raise SimulationError("event queue drained before event triggered")
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(f"event not triggered before t={limit}")
            when, _seq, fn, args, owner = heapq.heappop(self._heap)
            self.now = when
            if owner is not None and owner in self._suspended:
                self._parked.setdefault(owner, []).append((fn, args))
                continue
            fn(*args)
            self.events_executed += 1
        if event.ok:
            return event.value
        raise event.value

    @property
    def pending_events(self) -> int:
        """Number of entries currently queued."""
        return len(self._heap)

    def register_metrics(self, registry, prefix: str = "sim") -> None:
        """Expose kernel tallies as gauges in ``registry``."""
        registry.gauge(f"{prefix}.events_executed", lambda: self.events_executed)
        registry.gauge(f"{prefix}.pending_events", lambda: self.pending_events)
        registry.gauge(f"{prefix}.now", lambda: self.now)

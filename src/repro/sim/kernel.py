"""The discrete-event simulation loop.

:class:`Simulator` keeps a binary heap of ``(time, sequence, fn, args)``
entries. Equal-time entries run in scheduling order (FIFO), which makes
runs bit-for-bit reproducible for a fixed seed — a property the
replica-consistency experiments depend on.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process


class Simulator:
    """A deterministic discrete-event simulator (virtual time in seconds)."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, args))

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute virtual time ``when``."""
        self.schedule(max(0.0, when - self.now), fn, *args)

    # -- event constructors ---------------------------------------------

    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that triggers after ``delay``."""
        return Timeout(self, delay, value)

    def all_of(self, events) -> AllOf:
        """An event that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """An event that triggers when the first of ``events`` triggers."""
        return AnyOf(self, events)

    def process(self, generator: Generator) -> Process:
        """Start a generator as a simulation process."""
        return Process(self, generator)

    # -- execution -------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Drain the event queue.

        Stops when the queue is empty, when virtual time would pass
        ``until``, or after ``max_events`` dispatches (a runaway guard).
        Returns the final virtual time.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        try:
            dispatched = 0
            while self._heap:
                when, _seq, fn, args = self._heap[0]
                if until is not None and when > until:
                    self.now = until
                    break
                heapq.heappop(self._heap)
                self.now = when
                fn(*args)
                self.events_executed += 1
                dispatched += 1
                if max_events is not None and dispatched >= max_events:
                    raise SimulationError(
                        f"simulation exceeded max_events={max_events}; "
                        "likely a livelock in the model"
                    )
            else:
                if until is not None and until > self.now:
                    self.now = until
        finally:
            self._running = False
        return self.now

    def run_until_triggered(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; return its value (raise if it failed)."""
        while not event.triggered or event._callbacks is not None:
            if not self._heap:
                raise SimulationError("event queue drained before event triggered")
            if limit is not None and self._heap[0][0] > limit:
                raise SimulationError(f"event not triggered before t={limit}")
            when, _seq, fn, args = heapq.heappop(self._heap)
            self.now = when
            fn(*args)
            self.events_executed += 1
        if event.ok:
            return event.value
        raise event.value

    @property
    def pending_events(self) -> int:
        """Number of entries currently queued."""
        return len(self._heap)

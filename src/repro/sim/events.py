"""Events: the unit of synchronization in the simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in virtual time.
Callbacks registered on an event run when it triggers; a
:class:`~repro.sim.process.Process` that yields an event is resumed with
the event's value. Events trigger through the simulator's event queue
(never synchronously inside ``succeed``), which keeps execution order
independent of callback registration depth and therefore deterministic.
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Iterable, List, Optional, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

Callback = Callable[["Event"], None]


class Event:
    """A one-shot occurrence in virtual time.

    States: *pending* (created), *triggered* (``succeed``/``fail`` called,
    callbacks scheduled), *processed* (callbacks have run).
    """

    __slots__ = ("sim", "value", "_callbacks", "_triggered", "_ok")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.value: Any = None
        self._callbacks: Optional[List[Callback]] = []
        self._triggered = False
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once ``succeed`` or ``fail`` has been called."""
        return self._triggered

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None while pending."""
        return self._ok

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        # Inlined _trigger (hot path): identical semantics, one frame less.
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._ok = True
        self.value = value
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim.now, seq, self._run_callbacks, (), None))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, re-raised in waiting processes."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._trigger(exception, ok=False)
        return self

    def add_callback(self, callback: Callback) -> None:
        """Register ``callback(event)`` to run when the event triggers.

        If the event already triggered, the callback is scheduled to run
        at the current virtual time (still via the event queue).
        """
        if self._callbacks is None:
            # Already processed: schedule an immediate standalone call.
            self.sim.schedule(0.0, callback, self)
        else:
            self._callbacks.append(callback)

    def _trigger(self, value: Any, ok: bool) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._ok = ok
        self.value = value
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim.now, seq, self._run_callbacks, (), None))

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, None
        for callback in callbacks or ():
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if not self._triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__ + schedule (hot path).
        self.sim = sim
        self.value = None
        self._callbacks = []
        self._triggered = False
        self._ok = None
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim.now + delay, seq, self._expire, (value,), None))

    def _expire(self, value: Any) -> None:
        self.succeed(value)


class AllOf(Event):
    """Triggers when every child event has triggered.

    The value is the list of child values in the order the children were
    given. If any child fails, ``AllOf`` fails with that child's exception
    (the first failure in trigger order wins).
    """

    __slots__ = ("_pending", "_children")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._child_done)

    def _child_done(self, child: Event) -> None:
        if self._triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Triggers when the first child event triggers; value is ``(index, value)``."""

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for index, child in enumerate(self._children):
            child.add_callback(self._make_callback(index))

    def _make_callback(self, index: int) -> Callback:
        def on_child(child: Event) -> None:
            if self._triggered:
                return
            if not child.ok:
                self.fail(child.value)
            else:
                self.succeed((index, child.value))

        return on_child

"""Key-to-partition mapping strategies.

Partitioners must be *stable across processes and runs* (Python's
built-in ``hash`` is salted per process, so it is unusable here): replica
consistency checks compare stores produced by independently constructed
clusters.
"""

from __future__ import annotations

import sys
import zlib
from typing import Callable, Dict, Hashable

from repro.errors import ConfigError

Key = Hashable


def stable_hash(key: Key) -> int:
    """A process-stable 32-bit hash of a key (CRC32 over its repr)."""
    return zlib.crc32(repr(key).encode("utf-8"))


_SORT_TOKENS: Dict[Key, str] = {}


def sort_token(key: Key) -> str:
    """``repr(key)``, interned and cached.

    Hot paths order key collections with ``sorted(keys, key=repr)`` —
    a process-stable order (unlike salted ``hash``). Key sets are small
    and heavily reused (hot records, TPC-C districts), so caching the
    repr pays for itself within one epoch.
    """
    token = _SORT_TOKENS.get(key)
    if token is None:
        token = _SORT_TOKENS[key] = sys.intern(repr(key))
    return token


def sorted_keys(keys) -> list:
    """``sorted(keys, key=sort_token)`` with a C-level key function.

    On cache hits (the steady state — key universes are bounded and
    reused) the key function is ``dict.__getitem__``, avoiding a Python
    frame per element. Misses warm the cache and retry.
    """
    try:
        return sorted(keys, key=_SORT_TOKENS.__getitem__)
    except KeyError:
        keys = list(keys)
        tokens = _SORT_TOKENS
        for key in keys:
            if key not in tokens:
                tokens[key] = sys.intern(repr(key))
        return sorted(keys, key=tokens.__getitem__)


def warm_sort_tokens(keys) -> None:
    """Precompute sort tokens for ``keys`` (e.g. a workload's key
    universe at load time), so hot-path sorts never miss the cache."""
    tokens = _SORT_TOKENS
    for key in keys:
        if key not in tokens:
            tokens[key] = sys.intern(repr(key))


class Partitioner:
    """Maps keys to partition ids in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise ConfigError(f"num_partitions must be >= 1, got {num_partitions}")
        self.num_partitions = num_partitions

    def partition_of(self, key: Key) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Uniform hash partitioning over the stable hash of the whole key."""

    def partition_of(self, key: Key) -> int:
        return stable_hash(key) % self.num_partitions


class FuncPartitioner(Partitioner):
    """Partitioning by a caller-supplied function (e.g. TPC-C by warehouse).

    The function may return any integer; it is reduced modulo the
    partition count, so "partition by warehouse id" is simply
    ``lambda key: warehouse_of(key)``.
    """

    def __init__(self, num_partitions: int, func: Callable[[Key], int]):
        super().__init__(num_partitions)
        self._func = func

    def partition_of(self, key: Key) -> int:
        return int(self._func(key)) % self.num_partitions

"""Key-to-partition mapping strategies.

Partitioners must be *stable across processes and runs* (Python's
built-in ``hash`` is salted per process, so it is unusable here): replica
consistency checks compare stores produced by independently constructed
clusters.
"""

from __future__ import annotations

import zlib
from typing import Callable, Hashable

from repro.errors import ConfigError

Key = Hashable


def stable_hash(key: Key) -> int:
    """A process-stable 32-bit hash of a key (CRC32 over its repr)."""
    return zlib.crc32(repr(key).encode("utf-8"))


class Partitioner:
    """Maps keys to partition ids in ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise ConfigError(f"num_partitions must be >= 1, got {num_partitions}")
        self.num_partitions = num_partitions

    def partition_of(self, key: Key) -> int:
        raise NotImplementedError


class HashPartitioner(Partitioner):
    """Uniform hash partitioning over the stable hash of the whole key."""

    def partition_of(self, key: Key) -> int:
        return stable_hash(key) % self.num_partitions


class FuncPartitioner(Partitioner):
    """Partitioning by a caller-supplied function (e.g. TPC-C by warehouse).

    The function may return any integer; it is reduced modulo the
    partition count, so "partition by warehouse id" is simply
    ``lambda key: warehouse_of(key)``.
    """

    def __init__(self, num_partitions: int, func: Callable[[Key], int]):
        super().__init__(num_partitions)
        self._func = func

    def partition_of(self, key: Key) -> int:
        return int(self._func(key)) % self.num_partitions

"""Cluster catalog: node identity, addressing and layout.

A node is identified by ``NodeId(replica, partition)``. Network
addresses are small tuples so they stay hashable and debuggable.

Partial replication (``ClusterConfig.partial_hosting``) makes the
layout *sparse*: a replica may host only a subset of partitions, so
``nodes()``, ``replicas_of_partition()`` and friends all consult the
hosting map. Under full replication (the default) every hosting query
degenerates to the dense ``range`` answer, byte for byte.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.partition.partitioner import Key, Partitioner


@dataclass(frozen=True, order=True)
class NodeId:
    """Identity of one node: which replica it belongs to, which partition it hosts."""

    replica: int
    partition: int


def node_address(node: NodeId) -> Tuple[str, int, int]:
    """Network address of a node."""
    return ("node", node.replica, node.partition)


def client_address(replica: int, client_index: int) -> Tuple[str, int, int]:
    """Network address of a client."""
    return ("client", replica, client_index)


class Catalog:
    """Owns cluster layout: replicas × partitions, plus the partitioner."""

    def __init__(self, config: ClusterConfig, partitioner: Partitioner):
        config.validate()
        if partitioner.num_partitions != config.num_partitions:
            raise ConfigError(
                "partitioner partition count "
                f"({partitioner.num_partitions}) does not match config "
                f"({config.num_partitions})"
            )
        self.config = config
        self.partitioner = partitioner
        # partition_of dominates profiles (CRC32 over repr per call);
        # workloads draw from bounded key sets, so memoise per catalog.
        self._partition_cache: Dict[Key, int] = {}
        # Partial replication: per-replica hosted-partition sets (None =
        # full replication). Frozensets answer membership, the sorted
        # tuples answer deterministic iteration.
        if config.partial_hosting is None:
            self._hosting: Optional[Tuple[FrozenSet[int], ...]] = None
            self._hosted_sorted: Optional[Tuple[Tuple[int, ...], ...]] = None
        else:
            self._hosting = tuple(
                frozenset(hosted) for hosted in config.partial_hosting
            )
            self._hosted_sorted = tuple(
                tuple(hosted) for hosted in config.partial_hosting
            )

    @property
    def num_partitions(self) -> int:
        return self.config.num_partitions

    @property
    def num_replicas(self) -> int:
        return self.config.num_replicas

    @property
    def partial(self) -> bool:
        """True when some replica hosts only a subset of partitions."""
        return self._hosting is not None

    def hosting_of(self, replica: int) -> Optional[FrozenSet[int]]:
        """The partitions ``replica`` hosts, or None for "all of them"."""
        if self._hosting is None:
            return None
        return self._hosting[replica]

    def hosted_partitions(self, replica: int) -> Sequence[int]:
        """Sorted partitions hosted by ``replica`` (a ``range`` when full)."""
        if self._hosted_sorted is None:
            return range(self.num_partitions)
        return self._hosted_sorted[replica]

    def is_hosted(self, replica: int, partition: int) -> bool:
        if self._hosting is None:
            return True
        return partition in self._hosting[replica]

    def nodes(self) -> Iterator[NodeId]:
        """All *existing* nodes, replica-major (replica 0 first)."""
        for replica in range(self.num_replicas):
            for partition in self.hosted_partitions(replica):
                yield NodeId(replica, partition)

    def nodes_of_replica(self, replica: int) -> List[NodeId]:
        return [NodeId(replica, p) for p in self.hosted_partitions(replica)]

    def replicas_of_partition(self, partition: int) -> List[NodeId]:
        """The same partition across every replica *hosting* it (a Paxos
        group; under partial replication the group shrinks to hosts)."""
        return [
            NodeId(r, partition)
            for r in range(self.num_replicas)
            if self.is_hosted(r, partition)
        ]

    def writeset_targets(self, partition: int, participants) -> Tuple[int, ...]:
        """Peer replicas that need a shipped writeset for ``partition``.

        A replica re-executes a multipartition transaction only when it
        hosts *all* participants; a replica hosting ``partition`` but
        missing some participant cannot re-execute (it lacks the remote
        reads) and instead applies the writeset shipped by replica 0.
        Empty under full replication.
        """
        if self._hosting is None:
            return ()
        return tuple(
            replica
            for replica in range(1, self.num_replicas)
            if partition in self._hosting[replica]
            and not participants <= self._hosting[replica]
        )

    def partition_of(self, key: Key) -> int:
        cache = self._partition_cache
        partition = cache.get(key)
        if partition is None:
            partition = cache[key] = self.partitioner.partition_of(key)
        return partition

    def partitions_of(self, keys) -> Set[int]:
        """The set of partitions covering ``keys``.

        ``keys`` must be re-iterable (a set or sequence, not a
        generator): the miss fallback walks it a second time.
        """
        # Hot: every routing decision funnels through here. The cache is
        # warm for the whole key universe after the initial data load,
        # so subscript directly and fall back to the method on a miss.
        cache = self._partition_cache
        out = set()
        add = out.add
        try:
            for key in keys:
                add(cache[key])
        except KeyError:
            partition_of = self.partition_of
            for key in keys:
                add(partition_of(key))
        return out

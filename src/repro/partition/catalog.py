"""Cluster catalog: node identity, addressing and layout.

A node is identified by ``NodeId(replica, partition)``. Network
addresses are small tuples so they stay hashable and debuggable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.partition.partitioner import Key, Partitioner


@dataclass(frozen=True, order=True)
class NodeId:
    """Identity of one node: which replica it belongs to, which partition it hosts."""

    replica: int
    partition: int


def node_address(node: NodeId) -> Tuple[str, int, int]:
    """Network address of a node."""
    return ("node", node.replica, node.partition)


def client_address(replica: int, client_index: int) -> Tuple[str, int, int]:
    """Network address of a client."""
    return ("client", replica, client_index)


class Catalog:
    """Owns cluster layout: replicas × partitions, plus the partitioner."""

    def __init__(self, config: ClusterConfig, partitioner: Partitioner):
        config.validate()
        if partitioner.num_partitions != config.num_partitions:
            raise ConfigError(
                "partitioner partition count "
                f"({partitioner.num_partitions}) does not match config "
                f"({config.num_partitions})"
            )
        self.config = config
        self.partitioner = partitioner
        # partition_of dominates profiles (CRC32 over repr per call);
        # workloads draw from bounded key sets, so memoise per catalog.
        self._partition_cache: Dict[Key, int] = {}

    @property
    def num_partitions(self) -> int:
        return self.config.num_partitions

    @property
    def num_replicas(self) -> int:
        return self.config.num_replicas

    def nodes(self) -> Iterator[NodeId]:
        """All nodes, replica-major (replica 0 first)."""
        for replica in range(self.num_replicas):
            for partition in range(self.num_partitions):
                yield NodeId(replica, partition)

    def nodes_of_replica(self, replica: int) -> List[NodeId]:
        return [NodeId(replica, p) for p in range(self.num_partitions)]

    def replicas_of_partition(self, partition: int) -> List[NodeId]:
        """The same partition across every replica (a Paxos group)."""
        return [NodeId(r, partition) for r in range(self.num_replicas)]

    def partition_of(self, key: Key) -> int:
        cache = self._partition_cache
        partition = cache.get(key)
        if partition is None:
            partition = cache[key] = self.partitioner.partition_of(key)
        return partition

    def partitions_of(self, keys) -> Set[int]:
        """The set of partitions covering ``keys``.

        ``keys`` must be re-iterable (a set or sequence, not a
        generator): the miss fallback walks it a second time.
        """
        # Hot: every routing decision funnels through here. The cache is
        # warm for the whole key universe after the initial data load,
        # so subscript directly and fall back to the method on a miss.
        cache = self._partition_cache
        out = set()
        add = out.add
        try:
            for key in keys:
                add(cache[key])
        except KeyError:
            partition_of = self.partition_of
            for key in keys:
                add(partition_of(key))
        return out

"""Cluster catalog: node identity, addressing and layout.

A node is identified by ``NodeId(replica, partition)``. Network
addresses are small tuples so they stay hashable and debuggable.

Partial replication (``ClusterConfig.partial_hosting``) makes the
layout *sparse*: a replica may host only a subset of partitions, so
``nodes()``, ``replicas_of_partition()`` and friends all consult the
hosting map. Under full replication (the default) every hosting query
degenerates to the dense ``range`` answer, byte for byte.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.partition.partitioner import Key, Partitioner

# Procedure name of the control-plane migration transaction (see
# repro.reconfig): a MigrationTxn copies a key range from its source to
# its destination partition *through* the sequenced log. It lives here
# (not in repro.reconfig) so the routing layer and the data plane can
# recognise it without importing the control plane.
MIGRATION_PROC = "__migration__"


def is_migration_txn(txn) -> bool:
    """True when ``txn`` is a control-plane key-range migration."""
    return txn.procedure == MIGRATION_PROC


def migration_route(txn) -> Tuple[int, int]:
    """(source, dest) partitions of a migration transaction."""
    return txn.args[1], txn.args[2]


@dataclass(frozen=True, order=True)
class NodeId:
    """Identity of one node: which replica it belongs to, which partition it hosts."""

    replica: int
    partition: int


def node_address(node: NodeId) -> Tuple[str, int, int]:
    """Network address of a node."""
    return ("node", node.replica, node.partition)


def client_address(replica: int, client_index: int) -> Tuple[str, int, int]:
    """Network address of a client."""
    return ("client", replica, client_index)


class Catalog:
    """Owns cluster layout: replicas × partitions, plus the partitioner."""

    def __init__(self, config: ClusterConfig, partitioner: Partitioner):
        config.validate()
        if partitioner.num_partitions != config.num_partitions:
            raise ConfigError(
                "partitioner partition count "
                f"({partitioner.num_partitions}) does not match config "
                f"({config.num_partitions})"
            )
        self.config = config
        self.partitioner = partitioner
        # partition_of dominates profiles (CRC32 over repr per call);
        # workloads draw from bounded key sets, so memoise per catalog.
        self._partition_cache: Dict[Key, int] = {}
        # Partial replication: per-replica hosted-partition sets (None =
        # full replication). Frozensets answer membership, the sorted
        # tuples answer deterministic iteration.
        if config.partial_hosting is None:
            self._hosting: Optional[Tuple[FrozenSet[int], ...]] = None
            self._hosted_sorted: Optional[Tuple[Tuple[int, ...], ...]] = None
        else:
            self._hosting = tuple(
                frozenset(hosted) for hosted in config.partial_hosting
            )
            self._hosted_sorted = tuple(
                tuple(hosted) for hosted in config.partial_hosting
            )
        # -- elastic reconfiguration (repro.reconfig) --------------------
        # Epoch-keyed routing overrides and origin membership, both
        # versioned: entry i covers every epoch >= its effective epoch.
        # ``has_reconfig`` stays False until spares are configured or
        # the first override / membership change is armed; every hot
        # path keeps the static fast path while it is False, so an idle
        # cluster is byte-identical to the pre-reconfig code.
        active = config.active_partitions
        initial = config.num_partitions if active is None else active
        self._origin_epochs: List[int] = [0]
        self._origin_sets: List[Tuple[int, ...]] = [tuple(range(initial))]
        self._override_epochs: List[int] = []
        self._override_maps: List[Dict[Key, int]] = []
        self._overridden_keys: Set[Key] = set()
        self.has_reconfig: bool = active is not None

    @property
    def num_partitions(self) -> int:
        return self.config.num_partitions

    @property
    def num_replicas(self) -> int:
        return self.config.num_replicas

    @property
    def partial(self) -> bool:
        """True when some replica hosts only a subset of partitions."""
        return self._hosting is not None

    def hosting_of(self, replica: int) -> Optional[FrozenSet[int]]:
        """The partitions ``replica`` hosts, or None for "all of them"."""
        if self._hosting is None:
            return None
        return self._hosting[replica]

    def hosted_partitions(self, replica: int) -> Sequence[int]:
        """Sorted partitions hosted by ``replica`` (a ``range`` when full)."""
        if self._hosted_sorted is None:
            return range(self.num_partitions)
        return self._hosted_sorted[replica]

    def is_hosted(self, replica: int, partition: int) -> bool:
        if self._hosting is None:
            return True
        return partition in self._hosting[replica]

    def nodes(self) -> Iterator[NodeId]:
        """All *existing* nodes, replica-major (replica 0 first)."""
        for replica in range(self.num_replicas):
            for partition in self.hosted_partitions(replica):
                yield NodeId(replica, partition)

    def nodes_of_replica(self, replica: int) -> List[NodeId]:
        return [NodeId(replica, p) for p in self.hosted_partitions(replica)]

    def replicas_of_partition(self, partition: int) -> List[NodeId]:
        """The same partition across every replica *hosting* it (a Paxos
        group; under partial replication the group shrinks to hosts)."""
        return [
            NodeId(r, partition)
            for r in range(self.num_replicas)
            if self.is_hosted(r, partition)
        ]

    def writeset_targets(self, partition: int, participants) -> Tuple[int, ...]:
        """Peer replicas that need a shipped writeset for ``partition``.

        A replica re-executes a multipartition transaction only when it
        hosts *all* participants; a replica hosting ``partition`` but
        missing some participant cannot re-execute (it lacks the remote
        reads) and instead applies the writeset shipped by replica 0.
        Empty under full replication.
        """
        if self._hosting is None:
            return ()
        return tuple(
            replica
            for replica in range(1, self.num_replicas)
            if partition in self._hosting[replica]
            and not participants <= self._hosting[replica]
        )

    def partition_of(self, key: Key) -> int:
        cache = self._partition_cache
        partition = cache.get(key)
        if partition is None:
            partition = cache[key] = self.partitioner.partition_of(key)
        return partition

    def partitions_of(self, keys) -> Set[int]:
        """The set of partitions covering ``keys``.

        ``keys`` must be re-iterable (a set or sequence, not a
        generator): the miss fallback walks it a second time.
        """
        # Hot: every routing decision funnels through here. The cache is
        # warm for the whole key universe after the initial data load,
        # so subscript directly and fall back to the method on a miss.
        cache = self._partition_cache
        out = set()
        add = out.add
        try:
            for key in keys:
                add(cache[key])
        except KeyError:
            partition_of = self.partition_of
            for key in keys:
                add(partition_of(key))
        return out

    # -- elastic reconfiguration (repro.reconfig) -------------------------

    @property
    def initial_origins(self) -> Tuple[int, ...]:
        """Active input partitions at epoch 0."""
        return self._origin_sets[0]

    def origins_at(self, epoch: int) -> Tuple[int, ...]:
        """Sorted active input partitions (origins) covering ``epoch``."""
        idx = bisect_right(self._origin_epochs, epoch) - 1
        return self._origin_sets[idx]

    def arm_origin_change(self, effective_epoch: int, origins) -> None:
        """Change the active-origin set from ``effective_epoch`` on.

        Every scheduler's epoch barrier consults :meth:`origins_at`, so
        arming the same change on every replica (which the control plane
        does deterministically) makes all of them flip identically.
        """
        origins = tuple(sorted(set(origins)))
        if not origins:
            raise ConfigError("origin set cannot be empty")
        for origin in origins:
            if not 0 <= origin < self.num_partitions:
                raise ConfigError(f"unknown origin partition {origin}")
        last = self._origin_epochs[-1]
        if effective_epoch < last:
            raise ConfigError(
                "origin changes must be armed in epoch order "
                f"(got {effective_epoch} after {last})"
            )
        if effective_epoch == last:
            self._origin_sets[-1] = origins
        else:
            self._origin_epochs.append(effective_epoch)
            self._origin_sets.append(origins)
        self.has_reconfig = True

    def arm_override(self, effective_epoch: int, moves: Dict[Key, int]) -> None:
        """Route each key in ``moves`` to a new partition from
        ``effective_epoch`` on (cumulative over earlier overrides).

        The data copy itself is a sequenced :data:`MIGRATION_PROC`
        transaction ordered first within ``effective_epoch``; arming the
        override only changes *routing*, which every replica derives
        from the same epoch number.
        """
        if not moves:
            raise ConfigError("routing override moves no keys")
        for key, dest in moves.items():
            if not 0 <= dest < self.num_partitions:
                raise ConfigError(
                    f"override routes {key!r} to unknown partition {dest}"
                )
        if self._override_epochs and effective_epoch < self._override_epochs[-1]:
            raise ConfigError(
                "routing overrides must be armed in epoch order "
                f"(got {effective_epoch} after {self._override_epochs[-1]})"
            )
        if self._override_epochs and effective_epoch == self._override_epochs[-1]:
            self._override_maps[-1] = {**self._override_maps[-1], **moves}
        else:
            base = self._override_maps[-1] if self._override_maps else {}
            self._override_epochs.append(effective_epoch)
            self._override_maps.append({**base, **moves})
        self._overridden_keys.update(moves)
        self.has_reconfig = True

    def routing_version_at(self, epoch: int) -> int:
        """Index of the routing version covering ``epoch`` (0 = static)."""
        return bisect_right(self._override_epochs, epoch)

    def partition_of_at(self, key: Key, epoch: int) -> int:
        """Partition holding ``key`` under the routing of ``epoch``."""
        if key in self._overridden_keys:
            idx = bisect_right(self._override_epochs, epoch) - 1
            if idx >= 0:
                dest = self._override_maps[idx].get(key)
                if dest is not None:
                    return dest
        return self.partition_of(key)

    def partitions_of_at(self, keys, epoch: int) -> Set[int]:
        """The set of partitions covering ``keys`` at ``epoch``."""
        if not self._override_epochs:
            return self.partitions_of(keys)
        partition_of_at = self.partition_of_at
        return {partition_of_at(key, epoch) for key in keys}

    def participants_at(self, txn, epoch: int) -> FrozenSet[int]:
        """Epoch-aware :meth:`Transaction.participants`.

        A migration transaction's participants are pinned to its
        (source, dest) pair: at its own epoch the moving keys already
        route to the destination, yet the data still lives on the
        source, so both sides take part. Results for ordinary
        transactions are memoised per routing version.
        """
        if txn.procedure == MIGRATION_PROC:
            return frozenset(migration_route(txn))
        version = self.routing_version_at(epoch)
        cache = txn._participants_at_cache
        if cache is not None and cache[0] is self and cache[1] == version:
            return cache[2]
        parts = frozenset(self.partitions_of_at(txn.all_keys(), epoch))
        if not parts:
            raise ConfigError(f"transaction {txn.txn_id} has an empty footprint")
        if txn.write_set and not txn.read_set <= txn.write_set:
            active = frozenset(self.partitions_of_at(txn.write_set, epoch))
        elif txn.write_set:
            active = parts
        else:
            active = frozenset((min(parts),))
        object.__setattr__(
            txn, "_participants_at_cache", (self, version, parts, active)
        )
        return parts

    def active_participants_at(self, txn, epoch: int) -> FrozenSet[int]:
        """Epoch-aware :meth:`Transaction.active_participants`.

        Both sides of a migration are active: the destination applies
        the copied values, the source purges them.
        """
        if txn.procedure == MIGRATION_PROC:
            return frozenset(migration_route(txn))
        self.participants_at(txn, epoch)
        return txn._participants_at_cache[3]

    def reply_partition_at(self, txn, epoch: int) -> int:
        """Epoch-aware :meth:`Transaction.reply_partition`."""
        return min(self.active_participants_at(txn, epoch))

"""Data partitioning and cluster catalog.

Calvin deploys one node per (replica, partition): every node runs a
sequencer, a scheduler and one storage partition (paper Figure 1). The
:class:`~repro.partition.catalog.Catalog` owns that layout; the
partitioners map record keys to partitions.
"""

from repro.partition.catalog import Catalog, NodeId, client_address, node_address
from repro.partition.partitioner import (
    FuncPartitioner,
    HashPartitioner,
    Partitioner,
    stable_hash,
)

__all__ = [
    "Catalog",
    "FuncPartitioner",
    "HashPartitioner",
    "NodeId",
    "Partitioner",
    "client_address",
    "node_address",
    "stable_hash",
]

"""Trace exporters: Chrome trace JSON, text summaries, digests.

Three consumers, three formats:

- :func:`chrome_trace` — the ``trace_event`` JSON format loadable in
  ``chrome://tracing`` and Perfetto. Each (system, replica, partition)
  becomes a process; per-transaction spans land on a thread per
  transaction id, so lock waits and remote-read stalls are visually
  aligned per transaction across nodes.
- :func:`summary_table` / :func:`breakdown` — a per-phase latency table
  (count, mean, p50, p99, total share), the reproduction's main analysis
  artifact: it shows directly where simulated time goes in Calvin versus
  the 2PC baseline.
- :func:`trace_digest` — a stable hash for determinism regression tests
  (same seed ⇒ identical digest).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.spans import CAT_EPOCH, CAT_TXN, Span, SpanKind
from repro.sim.stats import LatencySample

# Stable report order for phase rows (pipeline order, then background).
_KIND_ORDER = {kind: index for index, kind in enumerate(SpanKind)}


def trace_digest(spans: Iterable[Span]) -> str:
    """Stable hash of a span list (same as ``TraceRecorder.digest``)."""
    payload = repr([span.canonical() for span in spans]).encode()
    return hashlib.sha256(payload).hexdigest()


# -- Chrome trace_event JSON --------------------------------------------------


def chrome_trace(traces: Mapping[str, Iterable[Span]]) -> Dict:
    """Build a Chrome ``trace_event`` document from labelled span lists.

    ``traces`` maps a system label (e.g. ``"calvin"``, ``"baseline"``)
    to its spans; labels become process-name prefixes so two systems can
    be compared side by side in one timeline. Times are exported in
    microseconds of virtual time, as the format requires.
    """
    events: List[Dict] = []
    pids: Dict[Tuple, int] = {}

    def pid_of(label: str, replica: Optional[int], partition: Optional[int]) -> int:
        key = (label, replica, partition)
        pid = pids.get(key)
        if pid is None:
            pid = len(pids) + 1
            pids[key] = pid
            name = label
            if replica is not None or partition is not None:
                name += f" node r{replica}/p{partition}"
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
        return pid

    for label in sorted(traces):
        for span in traces[label]:
            pid = pid_of(label, span.replica, span.partition)
            args: Dict = {"cat": span.cat}
            if span.seq is not None:
                args["seq"] = list(span.seq)
            if span.detail is not None:
                args["detail"] = span.detail
            events.append(
                {
                    "name": span.kind.value,
                    "cat": span.cat,
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": span.txn_id if span.txn_id is not None else 0,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(traces: Mapping[str, Iterable[Span]], path: str) -> str:
    """Serialize :func:`chrome_trace` output to ``path``; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(traces), handle)
    return path


# -- per-phase latency breakdown ----------------------------------------------


def breakdown(
    spans: Iterable[Span],
    since: float = 0.0,
    replica: Optional[int] = None,
) -> Dict[Tuple[SpanKind, str], LatencySample]:
    """Aggregate span durations into one sample per (kind, category).

    ``since`` drops spans that started before a warm-up boundary;
    ``replica`` restricts to one replica's view (pass 0 for the
    client-visible path on Calvin clusters).
    """
    table: Dict[Tuple[SpanKind, str], LatencySample] = {}
    for span in spans:
        if span.start < since:
            continue
        if replica is not None and span.replica not in (None, replica):
            continue
        key = (span.kind, span.cat)
        sample = table.get(key)
        if sample is None:
            sample = table[key] = LatencySample(f"{span.kind.value}.{span.cat}")
        sample.add(span.duration)
    return table


def phase_means(
    spans: Iterable[Span],
    since: float = 0.0,
    replica: Optional[int] = None,
    cat: str = CAT_TXN,
) -> Dict[SpanKind, float]:
    """Mean duration (seconds) per span kind over one category."""
    return {
        kind: sample.mean
        for (kind, sample_cat), sample in breakdown(spans, since, replica).items()
        if sample_cat == cat
    }


def summary_table(
    spans: Iterable[Span],
    title: str = "trace",
    since: float = 0.0,
    replica: Optional[int] = None,
) -> str:
    """The per-phase latency table, as aligned ASCII text.

    The ``share`` column is each phase's fraction of total pipeline time
    (txn + epoch categories only, so device/background activity does not
    distort the per-transaction picture).
    """
    table = breakdown(spans, since, replica)
    rows: List[Tuple[str, str, int, float, float, float, float]] = []
    pipeline_total = sum(
        sum(sample.values())
        for (kind, cat), sample in table.items()
        if cat in (CAT_TXN, CAT_EPOCH)
    )
    for (kind, cat), sample in sorted(
        table.items(), key=lambda item: (_KIND_ORDER[item[0][0]], item[0][1])
    ):
        total = sum(sample.values())
        share = total / pipeline_total if pipeline_total and cat in (CAT_TXN, CAT_EPOCH) else 0.0
        rows.append(
            (
                kind.value,
                cat,
                sample.count,
                sample.mean * 1e3,
                sample.percentile(50) * 1e3,
                sample.percentile(99) * 1e3,
                share,
            )
        )

    headers = ("phase", "cat", "count", "mean ms", "p50 ms", "p99 ms", "share")
    cells = [
        (
            name,
            cat,
            str(count),
            f"{mean:.3f}",
            f"{p50:.3f}",
            f"{p99:.3f}",
            f"{share * 100:.1f}%" if share else "-",
        )
        for name, cat, count, mean, p50, p99, share in rows
    ]
    widths = [
        max(len(headers[i]), max((len(row[i]) for row in cells), default=0))
        for i in range(len(headers))
    ]
    lines = [f"== {title}: per-phase latency breakdown =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(
                row[i].ljust(widths[i]) if i < 2 else row[i].rjust(widths[i])
                for i in range(len(row))
            )
        )
    if not rows:
        lines.append("(no spans recorded)")
    return "\n".join(lines)

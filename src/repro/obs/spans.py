"""The span/trace model of the sim-time observability subsystem.

A *span* is one closed interval of virtual time attributed to a phase of
the transaction pipeline (the paper's Figure 2 stages): where simulated
time goes between a client submitting a transaction and its reply.
Spans carry node/partition tags and, for per-transaction phases, the
transaction id and global sequence number, so a trace can be sliced
per transaction, per node, or per phase.

The taxonomy mirrors Calvin's critical path; the 2PC baseline emits the
same kinds where the phase has a direct analogue (lock acquisition,
remote reads, log forces, write application), which is what makes the
Calvin-vs-baseline latency breakdowns directly comparable.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Tuple


class SpanKind(enum.Enum):
    """Typed pipeline phases. Values are the stable wire/report names."""

    # Submit arrival at the sequencer -> epoch batch close (epoch wait).
    SEQUENCE = "sequence"
    # Epoch batch close -> batch agreed/durable and dispatchable at a
    # replica (Paxos agreement, async ship, or input-log force). The
    # baseline emits this for its 2PC prepare round — both are "make the
    # decision durable before applying it".
    REPLICATE = "replicate"
    # Sequencer dispatch -> sub-batch arrival at one scheduler.
    DISPATCH = "dispatch"
    # Scheduler admission -> all local locks granted.
    LOCK_WAIT = "lock-wait"
    # Blocked on another participant's read results (Calvin phase 4 /
    # baseline coordinator waiting for participant reads).
    REMOTE_READ_WAIT = "remote-read-wait"
    # On-CPU transaction work: local reads, remote-read serving.
    EXECUTE = "execute"
    # Disk time: prefetch deferral, cold-read stalls, device fetches,
    # baseline log forces.
    DISK = "disk"
    # Procedure logic + write application (commit apply).
    APPLY = "apply"
    # Checkpoint activity on a node (naive freeze or zigzag dump).
    CHECKPOINT = "checkpoint"
    # One STAR execution phase (partitioned or single-master) on the
    # phase controller's node; detail carries the phase name.
    PHASE = "phase"
    # One WAN hop of a routed message between datacenters (geo
    # topologies only); detail carries the (src_dc, dst_dc) link.
    HOP = "hop"
    # A control-plane reconfiguration action (split/merge/join/leave);
    # detail carries the ReconfigEvent summary (see repro.reconfig).
    RECONFIG = "reconfig"

    def __str__(self) -> str:  # pragma: no cover - presentation
        return self.value


# Span categories: which unit of work the interval is attributed to.
CAT_TXN = "txn"        # one transaction on one node
CAT_EPOCH = "epoch"    # one epoch batch (sequence-order plumbing)
CAT_DEVICE = "device"  # a storage device operation
CAT_NODE = "node"      # node-scoped background work (checkpoints)
CAT_NET = "net"        # network transport (WAN hops on geo topologies)


@dataclass(frozen=True)
class Span:
    """One closed interval of virtual time, fully determined at record time."""

    kind: SpanKind
    start: float
    end: float
    cat: str = CAT_TXN
    replica: Optional[int] = None
    partition: Optional[int] = None
    txn_id: Optional[int] = None
    seq: Optional[Tuple[int, int, int]] = None
    detail: Any = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    def canonical(self) -> Tuple:
        """A stable tuple used for digests and regression comparisons.

        Times are rounded to nanosecond precision so the digest is
        insensitive to float repr differences across Python versions
        while still catching any real timing change.
        """
        return (
            self.kind.value,
            self.cat,
            round(self.start, 9),
            round(self.end, 9),
            self.replica,
            self.partition,
            self.txn_id,
            self.seq,
            self.detail,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        who = f"r{self.replica}p{self.partition}"
        tag = f" txn={self.txn_id}" if self.txn_id is not None else ""
        return (
            f"<Span {self.kind.value} {who}{tag} "
            f"[{self.start * 1e3:.3f}ms, {self.end * 1e3:.3f}ms]>"
        )

"""Sim-time observability: transaction tracing, metrics, exporters.

The subsystem has three parts:

- **spans/recorder** — per-transaction traces with typed spans
  (sequence, replicate, dispatch, lock-wait, remote-read-wait, execute,
  disk, apply, checkpoint) carrying virtual-time start/end and
  node/partition tags. Pass a :class:`TraceRecorder` to a cluster to
  turn tracing on; the default :data:`NULL_RECORDER` is a no-op that
  adds zero overhead and zero simulation events.
- **registry** — a :class:`MetricsRegistry` of named counters, gauges,
  histograms and throughput series that components register into.
- **export** — Chrome ``trace_event`` JSON (``chrome://tracing`` /
  Perfetto), text latency-breakdown tables, and deterministic trace
  digests for regression tests.

See ``docs/observability.md`` for the span taxonomy and CLI examples.
"""

from repro.obs.export import (
    breakdown,
    chrome_trace,
    phase_means,
    summary_table,
    trace_digest,
    write_chrome_trace,
)
from repro.obs.recorder import NULL_RECORDER, NullRecorder, TraceRecorder
from repro.obs.registry import Gauge, MetricsRegistry
from repro.obs.spans import (
    CAT_DEVICE,
    CAT_EPOCH,
    CAT_NET,
    CAT_NODE,
    CAT_TXN,
    Span,
    SpanKind,
)

__all__ = [
    "CAT_DEVICE",
    "CAT_EPOCH",
    "CAT_NET",
    "CAT_NODE",
    "CAT_TXN",
    "Gauge",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "SpanKind",
    "TraceRecorder",
    "breakdown",
    "chrome_trace",
    "phase_means",
    "summary_table",
    "trace_digest",
    "write_chrome_trace",
]

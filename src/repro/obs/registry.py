"""A registry of named metric instruments.

Components register counters, gauges, histograms and throughput series
under dotted names (``net.messages_sent``, ``node.r0p1.sched.admitted``)
instead of keeping ad-hoc private tallies, so one ``snapshot()`` call
yields every number a run produced. Gauges may be *callable-backed*:
they read an existing attribute lazily at snapshot time, which lets hot
paths keep their plain-int counters (zero overhead) while still being
observable through the registry.

The instrument types for counters, histograms and series are the ones
from :mod:`repro.sim.stats`; the registry is how benchmark and test code
is meant to reach them (never via private fields).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

from repro.errors import ConfigError
from repro.sim.stats import Counter, LatencySample, ThroughputSeries


class Gauge:
    """A point-in-time value: settable, or backed by a read callable."""

    def __init__(self, name: str, fn: Optional[Callable[[], float]] = None):
        self.name = name
        self._fn = fn
        self._value: float = 0.0

    @property
    def value(self) -> float:
        return self._fn() if self._fn is not None else self._value

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ConfigError(f"gauge {self.name!r} is callable-backed; cannot set")
        self._value = value

    def reset(self) -> None:
        if self._fn is None:
            self._value = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}={self.value}>"


Instrument = Union[Counter, Gauge, LatencySample, ThroughputSeries]


class MetricsRegistry:
    """Named instruments for one cluster (or one run)."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # -- registration (create-or-return, type-checked) ---------------------

    def _get_or_create(self, name: str, kind: type, factory) -> Instrument:
        existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ConfigError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        instrument = factory()
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str, fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get_or_create(name, Gauge, lambda: Gauge(name, fn))
        if fn is not None and gauge._fn is None:
            # Re-registration upgrading a settable gauge is a conflict.
            raise ConfigError(f"gauge {name!r} already registered as settable")
        return gauge

    def histogram(self, name: str) -> LatencySample:
        return self._get_or_create(name, LatencySample, lambda: LatencySample(name))

    def series(self, name: str, bucket_width: float = 0.1) -> ThroughputSeries:
        return self._get_or_create(
            name, ThroughputSeries, lambda: ThroughputSeries(bucket_width, name)
        )

    # -- lookup --------------------------------------------------------------

    def get(self, name: str) -> Instrument:
        try:
            return self._instruments[name]
        except KeyError:
            raise ConfigError(f"no metric registered under {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def names(self):
        return sorted(self._instruments)

    # -- aggregation -----------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flatten every instrument to numbers (histograms expand to
        count/mean/p50/p99/max sub-keys)."""
        out: Dict[str, float] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, LatencySample):
                out[f"{name}.count"] = instrument.count
                out[f"{name}.mean"] = instrument.mean
                out[f"{name}.p50"] = instrument.percentile(50)
                out[f"{name}.p99"] = instrument.percentile(99)
                out[f"{name}.max"] = instrument.maximum
            elif isinstance(instrument, ThroughputSeries):
                out[f"{name}.total"] = instrument.total
            else:
                out[name] = instrument.value
        return out

    def reset(self) -> None:
        """Reset every resettable instrument (callable-backed gauges keep
        reflecting their source attribute)."""
        for instrument in self._instruments.values():
            instrument.reset()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's same-named instruments into this one.

        Used to aggregate per-shard or per-run registries; instruments
        present only in ``other`` are adopted by reference. Gauges are
        skipped (a point-in-time value has no meaningful sum).
        """
        for name, theirs in other._instruments.items():
            if isinstance(theirs, Gauge):
                continue
            mine = self._instruments.get(name)
            if mine is None:
                self._instruments[name] = theirs
                continue
            if type(mine) is not type(theirs):
                raise ConfigError(
                    f"cannot merge metric {name!r}: "
                    f"{type(mine).__name__} vs {type(theirs).__name__}"
                )
            mine.merge(theirs)

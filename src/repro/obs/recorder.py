"""Trace recorders: the live collector and its zero-overhead stand-in.

Components hold a recorder reference and guard every instrumentation
site with ``if tracer.enabled:`` — with the :data:`NULL_RECORDER` that
check is one attribute read and the branch is never taken, so tracing
off adds no simulation events, consumes no randomness, and perturbs
nothing (a hard requirement: trace-off runs must be bit-identical to
pre-instrumentation runs).

Recording is purely passive: a span is appended with timestamps the
caller already observed. Because the simulator dispatches events in a
deterministic order, the span list (and therefore the trace digest) is
bit-identical across same-seed runs.

*Marks* are the cross-component handshake: a producer stamps a named
virtual time (e.g. the sequencer marking when an epoch batch was
published) and a consumer later turns it into a span (the scheduler
closing the replicate/dispatch interval when the sub-batch arrives).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, List, Optional

from repro.obs.spans import Span, SpanKind


class TraceRecorder:
    """Collects spans for one run. One instance per cluster (or pair of
    clusters, when comparing systems — spans are tagged by node)."""

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._marks: Dict[Hashable, float] = {}

    # -- spans ------------------------------------------------------------

    def record(
        self,
        kind: SpanKind,
        start: float,
        end: float,
        *,
        cat: str = "txn",
        replica: Optional[int] = None,
        partition: Optional[int] = None,
        txn_id: Optional[int] = None,
        seq=None,
        detail=None,
    ) -> None:
        """Append one completed span."""
        self.spans.append(
            Span(
                kind=kind,
                start=start,
                end=end,
                cat=cat,
                replica=replica,
                partition=partition,
                txn_id=txn_id,
                seq=seq,
                detail=detail,
            )
        )

    def __len__(self) -> int:
        return len(self.spans)

    def spans_of(self, kind: SpanKind) -> List[Span]:
        return [span for span in self.spans if span.kind is kind]

    def clear(self) -> None:
        self.spans.clear()
        self._marks.clear()

    # -- marks (cross-component span boundaries) ---------------------------

    def mark(self, key: Hashable, time: float) -> None:
        """Stamp a named virtual time for a later :meth:`record` call."""
        self._marks[key] = time

    def take_mark(self, key: Hashable) -> Optional[float]:
        """Consume a mark (single-consumer boundaries)."""
        return self._marks.pop(key, None)

    def peek_mark(self, key: Hashable) -> Optional[float]:
        """Read a mark without consuming it (multi-consumer boundaries,
        e.g. every replica closes its own replicate span per epoch)."""
        return self._marks.get(key)

    # -- reproducibility ----------------------------------------------------

    def digest(self) -> str:
        """Stable hash of every recorded span, in record order.

        Same seed (and same fault plan) ⇒ identical simulation ⇒
        identical digest; any timing or ordering change flips it.
        """
        payload = repr([span.canonical() for span in self.spans]).encode()
        return hashlib.sha256(payload).hexdigest()


class NullRecorder:
    """The no-op recorder: tracing off.

    Every method is a no-op and ``enabled`` is False, so instrumented
    components skip even the argument construction for span records.
    """

    enabled = False
    __slots__ = ()

    @property
    def spans(self) -> List[Span]:
        return []

    def record(self, *args, **kwargs) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def spans_of(self, kind: SpanKind) -> List[Span]:
        return []

    def clear(self) -> None:
        pass

    def mark(self, key: Hashable, time: float) -> None:
        pass

    def take_mark(self, key: Hashable) -> None:
        return None

    def peek_mark(self, key: Hashable) -> None:
        return None

    def digest(self) -> str:
        return hashlib.sha256(b"[]").hexdigest()


NULL_RECORDER = NullRecorder()

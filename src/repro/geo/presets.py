"""Named geo topologies buildable straight from a ClusterConfig.

``ClusterConfig.topology`` names one of these presets; the builder
derives the datacenter count from ``num_replicas`` (one DC per replica,
minimum one) and reuses the existing ``wan_latency`` / ``wan_bandwidth``
/ ``lan_*`` knobs, so a preset config stays a one-line change from a
flat one.

- ``chain``: dc0 - dc1 - ... - dcN-1 in a line; the worst-case diameter,
  every batch to the far end crosses every link (contention collapse).
- ``ring``:  the chain plus a closing link; two disjoint routes exist,
  routing picks the deterministic shortest one.
- ``mesh``:  full bilateral connectivity; one hop everywhere, the
  closest model to the flat WAN pair.
- ``hub``:   dc0 is the hub, every other DC is a spoke; spoke-to-spoke
  traffic relays through dc0 and contends on its links.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.errors import ConfigError
from repro.geo.topology import GeoTopology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import ClusterConfig

Builder = Callable[[int, float, Optional[float], float, float], GeoTopology]


def _base(num_dcs: int, lan_latency: float, lan_bandwidth: float) -> GeoTopology:
    topo = GeoTopology(lan_latency=lan_latency, lan_bandwidth=lan_bandwidth)
    for dc in range(num_dcs):
        topo.add_datacenter(dc)
    return topo


def chain(
    num_dcs: int,
    wan_latency: float,
    wan_bandwidth: Optional[float],
    lan_latency: float,
    lan_bandwidth: float,
) -> GeoTopology:
    topo = _base(num_dcs, lan_latency, lan_bandwidth)
    for dc in range(num_dcs - 1):
        topo.add_link(dc, dc + 1, wan_latency, wan_bandwidth)
    return topo


def ring(
    num_dcs: int,
    wan_latency: float,
    wan_bandwidth: Optional[float],
    lan_latency: float,
    lan_bandwidth: float,
) -> GeoTopology:
    topo = chain(num_dcs, wan_latency, wan_bandwidth, lan_latency, lan_bandwidth)
    # Close the loop; a 2-DC "ring" is just the chain (the closing link
    # would duplicate the existing one).
    if num_dcs > 2:
        topo.add_link(num_dcs - 1, 0, wan_latency, wan_bandwidth)
    return topo


def mesh(
    num_dcs: int,
    wan_latency: float,
    wan_bandwidth: Optional[float],
    lan_latency: float,
    lan_bandwidth: float,
) -> GeoTopology:
    topo = _base(num_dcs, lan_latency, lan_bandwidth)
    for src in range(num_dcs):
        for dst in range(src + 1, num_dcs):
            topo.add_link(src, dst, wan_latency, wan_bandwidth)
    return topo


def hub(
    num_dcs: int,
    wan_latency: float,
    wan_bandwidth: Optional[float],
    lan_latency: float,
    lan_bandwidth: float,
) -> GeoTopology:
    topo = _base(num_dcs, lan_latency, lan_bandwidth)
    for spoke in range(1, num_dcs):
        topo.add_link(0, spoke, wan_latency, wan_bandwidth)
    return topo


GEO_PRESETS: Dict[str, Builder] = {
    "chain": chain,
    "ring": ring,
    "mesh": mesh,
    "hub": hub,
}


def build_geo_topology(config: "ClusterConfig") -> GeoTopology:
    """Instantiate ``config.topology`` with one datacenter per replica."""
    if config.topology is None:
        raise ConfigError("config has no topology preset set")
    try:
        builder = GEO_PRESETS[config.topology]
    except KeyError:
        raise ConfigError(
            f"unknown topology preset {config.topology!r}; "
            f"choose from {', '.join(sorted(GEO_PRESETS))}"
        ) from None
    num_dcs = max(1, config.num_replicas)
    topo = builder(
        num_dcs,
        config.wan_latency,
        config.wan_bandwidth,
        config.lan_latency,
        config.lan_bandwidth,
    )
    topo.validate()
    return topo

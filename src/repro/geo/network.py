"""Multi-hop, bandwidth-contended transport over a :class:`GeoTopology`.

:class:`GeoNetwork` subclasses the flat :class:`repro.sim.network.Network`
behind a strict seam: traffic between addresses placed in the *same*
datacenter goes through the inherited flat fast path untouched (route
cache, FIFO clamp, same-tick batch coalescing — byte-identical event
sequences), while cross-datacenter traffic is routed hop by hop along
the topology's deterministic shortest path, store-and-forward, with
each hop's bytes drained through that link's shared
:class:`~repro.geo.bandwidth.LinkChannel`.

Ordering: the flat network promises TCP-like FIFO per directed address
pair, and the scheduler's remote-read protocol and Paxos inherit that
assumption. Fair bandwidth sharing can complete a small late message
before a large early one, so the geo path adds a TCP-style reorder
buffer: sends take a per-pair sequence number and final delivery is
released strictly in send order (a blocked successor waits for its
predecessor, head-of-line style). Fault verdicts keep the flat
semantics: drop/hold are decided at send time; ``extra_delay`` lands
*after* the FIFO release (deliberate reordering); ``copies`` fan out at
delivery.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from repro.geo.bandwidth import LinkChannel
from repro.geo.topology import GeoTopology
from repro.obs import CAT_NET, NULL_RECORDER, SpanKind
from repro.sim.network import DELIVER, DeliveryVerdict, LinkSpec, Network, Topology

Address = Hashable


def _flat_equivalent(geo: GeoTopology) -> Topology:
    """The flat topology the inherited same-DC fast path runs on.

    Everything is "one site" from the base class's point of view: the
    base class only ever sees same-DC traffic, which uses the LAN
    profile (or the zero-cost local loopback).
    """
    lan = LinkSpec(latency=geo.lan_latency, bandwidth=geo.lan_bandwidth)
    return Topology(local=LinkSpec(latency=0.0, bandwidth=None), intra_site=lan, inter_site=lan)


class GeoNetwork(Network):
    """Message transport with datacenter-level routing and contention."""

    def __init__(self, sim, geo: GeoTopology, tracer=NULL_RECORDER):
        super().__init__(sim, _flat_equivalent(geo))
        self.geo = geo
        self.tracer = tracer
        self._tracing = tracer.enabled
        # (src_dc, dst_dc) -> shared capacity of that directed link.
        self._channels: Dict[Tuple[int, int], LinkChannel] = {}
        # TCP-style per-pair reorder buffer (see module docstring).
        self._pair_send_seq: Dict[Tuple[Address, Address], int] = {}
        self._pair_next: Dict[Tuple[Address, Address], int] = {}
        self._pair_ready: Dict[
            Tuple[Address, Address], Dict[int, Tuple[Any, DeliveryVerdict]]
        ] = {}
        self._geo_last_arrival: Dict[Tuple[Address, Address], float] = {}
        self.wan_messages = 0
        self.wan_bytes = 0
        self.hops_forwarded = 0
        self.fifo_reorders = 0

    def place(self, address: Address, dc_id: int) -> None:
        """Pin ``address`` into a datacenter, in both the geo graph and
        the inherited flat view (so same-DC link memoisation stays
        coherent if placements ever move)."""
        self.geo.place(address, dc_id)
        self.topology.place(address, dc_id)

    # -- sending ----------------------------------------------------------

    def send(self, src: Address, dst: Address, message: Any, size: int = 256) -> None:
        geo = self.geo
        src_dc = geo.dc_of(src)
        dst_dc = geo.dc_of(dst)
        if src_dc == dst_dc:
            # Same datacenter: the inherited flat fast path, bit-for-bit.
            super().send(src, dst, message, size)
            return
        self.messages_sent += 1
        self.bytes_sent += size
        self.wan_messages += 1
        self.wan_bytes += size
        verdict = DELIVER
        if self.fault_filter is not None:
            verdict = self.fault_filter(self.sim.now, src, dst, message, size)
            if verdict.drop:
                self.messages_dropped += 1
                return
            if verdict.hold:
                self.messages_held += 1
                return
        path = geo.path(src_dc, dst_dc)
        pair = (src, dst)
        # Sequence numbers are allocated only for messages actually in
        # flight — a dropped/held message must not stall its successors.
        seq = self._pair_send_seq.get(pair, 0)
        self._pair_send_seq[pair] = seq + 1
        self._forward(pair, message, size, path, 0, verdict, seq)

    def _forward(
        self,
        pair: Tuple[Address, Address],
        message: Any,
        size: int,
        path: Tuple[int, ...],
        index: int,
        verdict: DeliveryVerdict,
        seq: int,
    ) -> None:
        """Carry the message over link ``path[index] -> path[index+1]``:
        drain its bytes through the shared channel, then propagate."""
        hop_src, hop_dst = path[index], path[index + 1]
        link = self.geo.link(hop_src, hop_dst)
        channel = self._channel(hop_src, hop_dst)
        self.hops_forwarded += 1
        start = self.sim.now
        sim = self.sim

        def transferred() -> None:
            sim.schedule(link.latency, arrived)

        def arrived() -> None:
            if self._tracing:
                self.tracer.record(
                    SpanKind.HOP,
                    start,
                    sim.now,
                    cat=CAT_NET,
                    detail=(hop_src, hop_dst),
                )
            if index + 2 < len(path):
                self._forward(pair, message, size, path, index + 1, verdict, seq)
            else:
                self._arrived_at_destination(pair, message, verdict, seq)

        channel.submit(size, transferred)

    def _channel(self, src_dc: int, dst_dc: int) -> LinkChannel:
        key = (src_dc, dst_dc)
        link = self.geo.link(src_dc, dst_dc)
        channel = self._channels.get(key)
        if channel is None or channel.bandwidth != link.bandwidth:
            # New link, or a setup-time capacity change: in-flight flows
            # on a replaced channel finish at the old capacity.
            channel = self._channels[key] = LinkChannel(
                self.sim, link.bandwidth, f"dc{src_dc}-dc{dst_dc}"
            )
        return channel

    # -- in-order delivery -------------------------------------------------

    def _arrived_at_destination(
        self,
        pair: Tuple[Address, Address],
        message: Any,
        verdict: DeliveryVerdict,
        seq: int,
    ) -> None:
        expected = self._pair_next.get(pair, 0)
        if seq != expected:
            # A later send finished its transfer first (fair sharing let
            # it overtake); park it until its predecessors land.
            self.fifo_reorders += 1
        ready = self._pair_ready.setdefault(pair, {})
        ready[seq] = (message, verdict)
        while expected in ready:
            msg, vd = ready.pop(expected)
            expected += 1
            self._release(pair, msg, vd)
        self._pair_next[pair] = expected

    def _release(
        self, pair: Tuple[Address, Address], message: Any, verdict: DeliveryVerdict
    ) -> None:
        arrival = self.sim.now
        previous = self._geo_last_arrival.get(pair)
        if previous is not None and arrival <= previous:
            arrival = previous + self._fifo_epsilon
        self._geo_last_arrival[pair] = arrival
        # As on the flat path: extra delay lands after the FIFO point and
        # is not recorded, so reordering faults stay expressible.
        if verdict.extra_delay > 0:
            self.messages_delayed += 1
            arrival += verdict.extra_delay
        if verdict.copies > 1:
            self.messages_duplicated += verdict.copies - 1
        src, dst = pair
        for copy in range(max(1, verdict.copies)):
            self.sim.schedule_at(
                arrival + copy * self._fifo_epsilon, self._deliver, src, dst, message
            )

    # -- metrics -----------------------------------------------------------

    def _channel_stat(self, key: Tuple[int, int], attr: str) -> float:
        channel = self._channels.get(key)
        return getattr(channel, attr) if channel is not None else 0.0

    def _utilization(self, key: Tuple[int, int]) -> float:
        channel = self._channels.get(key)
        if channel is None or self.sim.now <= 0:
            return 0.0
        return channel.busy_time / self.sim.now

    def register_metrics(self, registry, prefix: str = "net") -> None:
        super().register_metrics(registry, prefix)
        registry.gauge(f"{prefix}.wan_messages", lambda: self.wan_messages)
        registry.gauge(f"{prefix}.wan_bytes", lambda: self.wan_bytes)
        registry.gauge(f"{prefix}.hops_forwarded", lambda: self.hops_forwarded)
        registry.gauge(f"{prefix}.fifo_reorders", lambda: self.fifo_reorders)
        for link in self.geo.links():
            key = (link.src, link.dst)
            name = f"{prefix}.link.dc{link.src}-dc{link.dst}"
            registry.gauge(
                f"{name}.bytes", lambda k=key: self._channel_stat(k, "bytes_carried")
            )
            registry.gauge(
                f"{name}.flows", lambda k=key: self._channel_stat(k, "flows_completed")
            )
            registry.gauge(
                f"{name}.busy_time", lambda k=key: self._channel_stat(k, "busy_time")
            )
            registry.gauge(
                f"{name}.queueing_delay",
                lambda k=key: self._channel_stat(k, "queueing_delay"),
            )
            registry.gauge(f"{name}.utilization", lambda k=key: self._utilization(k))

"""Geo-scale topology subsystem: datacenters, routed WAN links, partial
replication, and replica-local reads.

- **topology** — :class:`GeoTopology`: datacenters + directed links with
  latency and shared bandwidth, deterministic link-state shortest-path
  routing (versioned lazy route tables).
- **bandwidth** — :class:`LinkChannel`: fair (processor-sharing)
  capacity of one link; congestion becomes queueing delay.
- **network** — :class:`GeoNetwork`: multi-hop store-and-forward
  transport behind a strict backward-compatible seam over the flat
  :class:`repro.sim.network.Network` (same-DC traffic is bit-identical).
- **presets** — named topologies ("chain", "ring", "mesh", "hub")
  buildable from a :class:`repro.config.ClusterConfig`.
- **readonly** — :class:`ReadOnlyClient`: replica-local read-only
  transactions with a measured staleness bound.

See ``docs/geo.md`` for the model and its semantics.
"""

from repro.geo.bandwidth import LinkChannel
from repro.geo.network import GeoNetwork
from repro.geo.presets import GEO_PRESETS, build_geo_topology
from repro.geo.readonly import ReadOnlyClient, add_read_clients
from repro.geo.topology import Datacenter, GeoLink, GeoTopology

__all__ = [
    "Datacenter",
    "GEO_PRESETS",
    "GeoLink",
    "GeoNetwork",
    "GeoTopology",
    "LinkChannel",
    "ReadOnlyClient",
    "add_read_clients",
    "build_geo_topology",
]

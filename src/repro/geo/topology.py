"""Geo-scale topology: datacenters, routed WAN links, deterministic paths.

The flat :class:`repro.sim.network.Topology` knows two link classes (LAN
and WAN) and nothing about *where* traffic goes between them. A
:class:`GeoTopology` instead is an explicit graph: datacenters are
vertices, directed :class:`GeoLink` edges carry one-way propagation
latency and a shared bandwidth capacity, and messages between
datacenters follow link-state shortest paths with store-and-forward
multi-hop forwarding (see :class:`repro.geo.network.GeoNetwork`).

Routing is deterministic by construction: Dijkstra settles vertices on
the key ``(latency, hops, path)`` — ties on total latency break first
toward fewer hops, then toward the lexicographically smallest path of
datacenter ids — so every replica computes the same route table from
the same graph, an invariant the trace digests rely on.

Route tables are lazy and versioned: any structural mutation (adding a
datacenter or link) bumps ``version`` and invalidates them, the geo
namespace of the flat network's route-cache invalidation story.
Placements do not bump the version — routes are datacenter-level, so
moving an address cannot stale them.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, Hashable, List, Optional, Tuple

from repro.errors import ConfigError, NetworkError

Address = Hashable


@dataclass(frozen=True)
class Datacenter:
    """One site: an integer id plus an optional human-readable name."""

    id: int
    name: str = ""

    def label(self) -> str:
        return self.name or f"dc{self.id}"


@dataclass(frozen=True)
class GeoLink:
    """One *directed* WAN link.

    ``latency`` is one-way propagation time; ``bandwidth`` is the link
    capacity in bytes/second, shared fairly by concurrent flows
    (``None`` = infinite — a pure-latency link).
    """

    src: int
    dst: int
    latency: float
    bandwidth: Optional[float] = None

    def validate(self) -> None:
        if self.src == self.dst:
            raise ConfigError(f"link {self.src}->{self.dst} is a self-loop")
        if self.latency < 0:
            raise ConfigError(f"link {self.src}->{self.dst}: latency must be >= 0")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ConfigError(
                f"link {self.src}->{self.dst}: bandwidth must be positive or None"
            )


class GeoTopology:
    """A datacenter graph with deterministic link-state routing.

    ``lan_latency``/``lan_bandwidth`` describe the intra-datacenter
    fabric (traffic between two addresses placed in the same DC never
    touches the WAN graph).
    """

    def __init__(self, lan_latency: float = 0.0005, lan_bandwidth: float = 125e6):
        self.lan_latency = lan_latency
        self.lan_bandwidth = lan_bandwidth
        self._datacenters: Dict[int, Datacenter] = {}
        self._links: Dict[Tuple[int, int], GeoLink] = {}
        self._placement: Dict[Address, int] = {}
        # Structure version: bumped on datacenter/link mutation, checked
        # by the lazy route tables below and by GeoNetwork's caches.
        self.version = 0
        # (src, dst) -> settled shortest path / its total latency; valid
        # for one structure version. _routed_sources marks single-source
        # computations already folded in (dict, not set: values are
        # iterated nowhere, and dicts keep the linter's DET003 quiet).
        self._paths: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._latencies: Dict[Tuple[int, int], float] = {}
        self._routed_sources: Dict[int, bool] = {}
        self._routes_version = 0

    # -- construction -----------------------------------------------------

    def add_datacenter(self, dc_id: int, name: str = "") -> Datacenter:
        if dc_id in self._datacenters:
            raise ConfigError(f"datacenter {dc_id} already exists")
        dc = Datacenter(dc_id, name)
        self._datacenters[dc_id] = dc
        self.version += 1
        return dc

    def add_link(
        self,
        src: int,
        dst: int,
        latency: float,
        bandwidth: Optional[float] = None,
        symmetric: bool = True,
    ) -> None:
        """Connect two datacenters; ``symmetric`` adds both directions."""
        for dc in (src, dst):
            if dc not in self._datacenters:
                raise ConfigError(f"link endpoint {dc} is not a datacenter")
        pairs = ((src, dst), (dst, src)) if symmetric else ((src, dst),)
        for a, b in pairs:
            link = GeoLink(a, b, latency, bandwidth)
            link.validate()
            self._links[(a, b)] = link
        self.version += 1

    def place(self, address: Address, dc_id: int) -> None:
        """Pin ``address`` into a datacenter (default: datacenter 0).

        Placement is address-level, routes are datacenter-level, so
        this deliberately does NOT bump ``version``.
        """
        if dc_id not in self._datacenters:
            raise ConfigError(f"cannot place {address!r}: no datacenter {dc_id}")
        self._placement[address] = dc_id

    # -- queries ----------------------------------------------------------

    @property
    def num_datacenters(self) -> int:
        return len(self._datacenters)

    def datacenters(self) -> List[Datacenter]:
        return [self._datacenters[dc_id] for dc_id in sorted(self._datacenters)]

    def links(self) -> List[GeoLink]:
        """Every directed link, ordered by (src, dst)."""
        return [self._links[key] for key in sorted(self._links)]

    def link(self, src: int, dst: int) -> GeoLink:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise NetworkError(f"no link {src}->{dst} in topology") from None

    def dc_of(self, address: Address) -> int:
        return self._placement.get(address, 0)

    # -- routing ----------------------------------------------------------

    def path(self, src_dc: int, dst_dc: int) -> Tuple[int, ...]:
        """The routed datacenter sequence from ``src_dc`` to ``dst_dc``
        (inclusive of both endpoints; length 1 when they are equal)."""
        self._ensure_routes(src_dc)
        try:
            return self._paths[(src_dc, dst_dc)]
        except KeyError:
            raise NetworkError(
                f"no route from datacenter {src_dc} to {dst_dc}"
            ) from None

    def path_latency(self, src_dc: int, dst_dc: int) -> float:
        """Total propagation latency along :meth:`path` (bandwidth excluded)."""
        self._ensure_routes(src_dc)
        try:
            return self._latencies[(src_dc, dst_dc)]
        except KeyError:
            raise NetworkError(
                f"no route from datacenter {src_dc} to {dst_dc}"
            ) from None

    def _ensure_routes(self, src_dc: int) -> None:
        if self._routes_version != self.version:
            self._paths.clear()
            self._latencies.clear()
            self._routed_sources.clear()
            self._routes_version = self.version
        if src_dc not in self._routed_sources:
            self._compute_from(src_dc)
            self._routed_sources[src_dc] = True

    def _compute_from(self, src_dc: int) -> None:
        """Single-source Dijkstra with fully deterministic tie-breaks.

        Heap entries are ``(latency, hops, path)``; the first pop for a
        vertex is therefore the minimum of that triple, which is unique
        — path tuples are distinct — so equal-latency routes always
        resolve the same way regardless of insertion order.
        """
        if src_dc not in self._datacenters:
            raise NetworkError(f"no datacenter {src_dc} in topology")
        adjacency: Dict[int, List[GeoLink]] = {}
        for key in sorted(self._links):
            link = self._links[key]
            adjacency.setdefault(link.src, []).append(link)
        settled: Dict[int, Tuple[float, int, Tuple[int, ...]]] = {}
        heap: List[Tuple[float, int, Tuple[int, ...]]] = [(0.0, 0, (src_dc,))]
        while heap:
            cost, hops, path = heappop(heap)
            vertex = path[-1]
            if vertex in settled:
                continue
            settled[vertex] = (cost, hops, path)
            for link in adjacency.get(vertex, ()):
                if link.dst not in settled:
                    heappush(heap, (cost + link.latency, hops + 1, path + (link.dst,)))
        for vertex in sorted(settled):
            cost, _hops, path = settled[vertex]
            self._paths[(src_dc, vertex)] = path
            self._latencies[(src_dc, vertex)] = cost

    def validate(self) -> None:
        """Check the graph is non-empty and fully routable."""
        if not self._datacenters:
            raise ConfigError("topology has no datacenters")
        for link in self.links():
            link.validate()
        for src in sorted(self._datacenters):
            for dst in sorted(self._datacenters):
                self.path(src, dst)  # raises NetworkError on a partition

    def describe(self) -> str:
        """Human-readable dump used by ``repro topology show``."""
        lines = [f"{self.num_datacenters} datacenter(s), {len(self._links)} directed link(s)"]
        for dc in self.datacenters():
            lines.append(f"  {dc.label()} (id {dc.id})")
        lines.append("links:")
        for link in self.links():
            bw = "inf" if link.bandwidth is None else f"{link.bandwidth / 1e6:.2f} MB/s"
            lines.append(
                f"  dc{link.src} -> dc{link.dst}: "
                f"{link.latency * 1e3:.1f} ms, {bw}"
            )
        lines.append("routes:")
        for src in sorted(self._datacenters):
            for dst in sorted(self._datacenters):
                if src == dst:
                    continue
                hops = " -> ".join(f"dc{dc}" for dc in self.path(src, dst))
                lines.append(
                    f"  {hops}: {self.path_latency(src, dst) * 1e3:.1f} ms"
                )
        return "\n".join(lines)

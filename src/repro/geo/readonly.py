"""Replica-local read-only transactions (deferred-update style scale-out).

Calvin's determinism means any replica's committed prefix is a
transactionally consistent snapshot, so read-only transactions never
need sequencing: a client reads from the *closest* replica hosting all
of its read partitions, entirely off the write path. The price is
staleness — a replica lags the input site by however many epochs are
still crossing the WAN — which the client measures from the epoch
watermark each serving node stamps into its reply.

:class:`ReadOnlyClient` is closed-loop and mirrors the interface the
cluster's ``quiesce``/``run`` machinery expects from clients
(``start``/``idle``/``finished``/``submitted``/``max_txns``), so it
rides the normal lifecycle. Observations land in the cluster metrics
registry: ``geo.ro.latency_ms`` and ``geo.ro.staleness_epochs``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import ConfigError
from repro.net.messages import ReadOnlyQuery, ReadOnlyReply
from repro.partition.catalog import NodeId, node_address
from repro.partition.partitioner import Key

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cluster import CalvinCluster


def readonly_client_address(index: int) -> Tuple[str, int]:
    return ("ro-client", index)


class ReadOnlyClient:
    """One outstanding read-only query at a time, against the closest
    eligible replica."""

    def __init__(
        self,
        cluster: "CalvinCluster",
        index: int,
        keys_per_query: int = 4,
        partitions_per_query: int = 1,
        max_txns: Optional[int] = None,
        datacenter: int = 0,
        replica_local: bool = True,
    ):
        if partitions_per_query < 1:
            raise ConfigError("partitions_per_query must be >= 1")
        if keys_per_query < partitions_per_query:
            raise ConfigError("keys_per_query must cover every queried partition")
        self.cluster = cluster
        self.index = index
        self.keys_per_query = keys_per_query
        self.partitions_per_query = min(
            partitions_per_query, cluster.config.num_partitions
        )
        self.max_txns = max_txns
        self.datacenter = datacenter
        # replica_local=False forces every read to the input site
        # (replica 0) — the baseline replica-local reads are measured
        # against.
        self.replica_local = replica_local
        self.address = readonly_client_address(index)
        self.rng = cluster.rngs.stream("readonly", index)
        self.submitted = 0
        self.completed = 0
        self.local_replica_hits = 0
        self._query_counter = 0
        self._inflight: Optional[int] = None
        self._expected: Dict[int, Dict] = {}
        self._started_at = 0.0
        self._latency = cluster.metrics_registry.histogram("geo.ro.latency_ms")
        self._staleness = cluster.metrics_registry.histogram("geo.ro.staleness_epochs")
        cluster.network.register(self.address, self._on_message)
        if cluster.geo is not None:
            cluster.network.place(self.address, datacenter)

    # -- client lifecycle (the surface quiesce()/run() relies on) ----------

    def start(self) -> None:
        self._submit()

    @property
    def finished(self) -> bool:
        return self.max_txns is not None and self.completed >= self.max_txns

    @property
    def idle(self) -> bool:
        return self._inflight is None and self.finished

    # -- querying ----------------------------------------------------------

    def _pick_keys(self) -> Dict[int, List[Key]]:
        """Deterministically sample hot keys grouped by partition."""
        workload = self.cluster.workload
        hot = getattr(workload, "hot_set_size", None)
        if hot is None:
            raise ConfigError(
                "ReadOnlyClient needs a workload with a per-partition hot set "
                f"(got {type(workload).__name__})"
            )
        num_partitions = self.cluster.config.num_partitions
        first = self.rng.randrange(num_partitions)
        partitions = [
            (first + offset) % num_partitions
            for offset in range(self.partitions_per_query)
        ]
        per_partition: Dict[int, List[Key]] = {p: [] for p in sorted(partitions)}
        for i in range(self.keys_per_query):
            partition = partitions[i % len(partitions)]
            per_partition[partition].append(
                ("hot", partition, self.rng.randrange(hot))
            )
        return per_partition

    def _choose_replica(self, partitions: Sequence[int]) -> int:
        """The closest replica hosting *all* queried partitions; ties go
        to the lowest replica id. Replica 0 hosts everything, so an
        eligible replica always exists."""
        cluster = self.cluster
        catalog = cluster.catalog
        geo = cluster.geo
        if not self.replica_local:
            return 0
        candidates: List[Tuple[float, int]] = []
        for replica in range(catalog.num_replicas):
            if not all(catalog.is_hosted(replica, p) for p in partitions):
                continue
            if geo is None:
                cost = 0.0 if replica == 0 else 1.0
            else:
                client_dc = geo.dc_of(self.address)
                cost = max(
                    geo.path_latency(
                        client_dc, geo.dc_of(("node", replica, partition))
                    )
                    for partition in partitions
                )
            candidates.append((cost, replica))
        return min(candidates)[1]

    def _submit(self) -> None:
        if self.finished:
            return
        per_partition = self._pick_keys()
        partitions = sorted(per_partition)
        replica = self._choose_replica(partitions)
        if replica != 0:
            self.local_replica_hits += 1
        self._query_counter += 1
        query_id = self._query_counter
        self._inflight = query_id
        self._expected[query_id] = {
            "pending": set(partitions),
            "min_epoch": None,
        }
        self._started_at = self.cluster.sim.now
        self.submitted += 1
        for partition in partitions:
            query = ReadOnlyQuery(query_id, tuple(per_partition[partition]))
            target = node_address(NodeId(replica, partition))
            self.cluster.network.send(
                self.address, target, query, query.size_estimate()
            )

    def _on_message(self, src: Any, message: Any) -> None:
        assert isinstance(message, ReadOnlyReply), f"ro-client got {message!r}"
        state = self._expected.get(message.query_id)
        if state is None or message.query_id != self._inflight:
            return  # stale reply for an already-completed query
        state["pending"].discard(message.from_partition)
        if state["min_epoch"] is None or message.epoch < state["min_epoch"]:
            state["min_epoch"] = message.epoch
        if state["pending"]:
            return
        del self._expected[message.query_id]
        self._inflight = None
        self.completed += 1
        cluster = self.cluster
        now = cluster.sim.now
        self._latency.add((now - self._started_at) * 1e3)
        # Staleness bound in epochs: how far the serving replica's
        # watermark can lag the input site's current epoch.
        current_epoch = int(now / cluster.config.epoch_duration)
        self._staleness.add(max(0, current_epoch - state["min_epoch"]))
        self._submit()


def add_read_clients(
    cluster: "CalvinCluster",
    count: int,
    max_txns: Optional[int] = None,
    keys_per_query: int = 4,
    partitions_per_query: int = 1,
    spread: bool = True,
    replica_local: bool = True,
) -> List[ReadOnlyClient]:
    """Attach ``count`` read-only clients to ``cluster``.

    With ``spread`` (and a geo topology), client ``i`` lives in
    datacenter ``i % num_datacenters`` — the replica-local reads setup;
    otherwise all clients sit at the input site (datacenter 0).
    """
    num_dcs = cluster.geo.num_datacenters if cluster.geo is not None else 1
    created = []
    for i in range(count):
        index = len(cluster.clients)
        client = ReadOnlyClient(
            cluster,
            index,
            keys_per_query=keys_per_query,
            partitions_per_query=partitions_per_query,
            max_txns=max_txns,
            datacenter=(i % num_dcs) if spread else 0,
            replica_local=replica_local,
        )
        cluster.clients.append(client)
        created.append(client)
    return created

"""Deterministic processor-sharing bandwidth model for WAN links.

Each directed :class:`~repro.geo.topology.GeoLink` with finite capacity
gets one :class:`LinkChannel`. Concurrent flows share the capacity
fairly (fluid-flow processor sharing): with ``n`` active flows each
drains at ``bandwidth / n`` bytes per second, so congestion shows up as
queueing delay instead of a fixed serialization time.

The kernel has no event cancellation, so completions are guarded by a
generation counter: every membership change bumps ``_generation`` and
schedules a fresh completion for the new earliest finisher; completions
carrying a stale generation simply no-op. Flow bookkeeping lives in an
insertion-ordered dict keyed by a monotonically increasing flow id,
which makes the completion order of simultaneous finishers — and hence
the whole simulation — deterministic.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

# Remaining-bytes fuzz: float drains can leave a flow at e.g. 1e-10
# bytes; anything at or below this is complete.
_EPSILON = 1e-6


class LinkChannel:
    """Fair-shared capacity of one directed link.

    ``submit(size, callback)`` starts a flow of ``size`` bytes; the
    callback fires (via the kernel, never re-entrantly except for the
    documented zero-cost fast path) when the flow's last byte has
    drained through the shared capacity.
    """

    def __init__(self, sim: Any, bandwidth: Optional[float], label: str = ""):
        self.sim = sim
        self.bandwidth = bandwidth
        self.label = label
        # flow id -> [remaining_bytes, callback, size, submitted_at]
        self._flows: Dict[int, List[Any]] = {}
        self._next_flow_id = 0
        self._generation = 0
        self._last_advance = 0.0
        # Tallies exported as gauges by GeoNetwork.register_metrics.
        self.flows_completed = 0
        self.bytes_carried = 0.0
        self.busy_time = 0.0
        self.queueing_delay = 0.0

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def submit(self, size: float, callback: Callable[[], None]) -> None:
        """Begin transferring ``size`` bytes; run ``callback`` when done.

        Infinite-bandwidth links and empty transfers complete
        immediately and synchronously — the caller's propagation-latency
        schedule supplies the only delay, matching the flat network's
        pure-latency semantics.
        """
        self.bytes_carried += size
        if self.bandwidth is None or math.isinf(self.bandwidth) or size <= 0:
            self.flows_completed += 1
            callback()
            return
        self._advance()
        flow_id = self._next_flow_id
        self._next_flow_id += 1
        self._flows[flow_id] = [float(size), callback, float(size), self.sim.now]
        self._reschedule()

    def _advance(self) -> None:
        """Drain every active flow up to ``sim.now`` at the fair share."""
        now = self.sim.now
        elapsed = now - self._last_advance
        self._last_advance = now
        n = len(self._flows)
        if n == 0 or elapsed <= 0:
            return
        drained = elapsed * self.bandwidth / n
        for flow in self._flows.values():
            flow[0] -= drained
        self.busy_time += elapsed

    def _reschedule(self) -> None:
        """Schedule the completion of the earliest-finishing flow."""
        self._generation += 1
        if not self._flows:
            return
        n = len(self._flows)
        min_remaining = min(flow[0] for flow in self._flows.values())
        delay = max(0.0, min_remaining) * n / self.bandwidth
        self.sim.schedule(delay, self._complete, self._generation)

    def _complete(self, generation: int) -> None:
        if generation != self._generation:
            return  # membership changed since this was scheduled
        self._advance()
        # A current-generation completion *is* the scheduled finish
        # instant of the earliest flow (any membership change since
        # would have bumped the generation), so that flow is done now by
        # construction. Finishing everything within epsilon of the
        # minimum — instead of requiring the drain arithmetic to land
        # below epsilon — keeps float residue from spinning the channel
        # at one timestamp when the completion delay is smaller than the
        # clock's representable resolution (high bandwidth, late times).
        finished = []
        if self._flows:
            threshold = max(
                _EPSILON, min(flow[0] for flow in self._flows.values()) + _EPSILON
            )
            finished = [
                fid for fid, flow in self._flows.items() if flow[0] <= threshold
            ]
        callbacks = []
        for fid in finished:
            _remaining, callback, size, submitted = self._flows.pop(fid)
            self.flows_completed += 1
            transfer = self.sim.now - submitted
            self.queueing_delay += max(0.0, transfer - size / self.bandwidth)
            callbacks.append(callback)
        self._reschedule()
        # Fire after bookkeeping: a callback may submit a new flow.
        for callback in callbacks:
            callback()

"""Tabular reporting for experiment results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """The output of one experiment: a titled table plus raw rows."""

    experiment: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} values for {len(self.headers)} headers"
            )
        self.rows.append(values)

    def column(self, header: str) -> List[Any]:
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.headers, row)) for row in self.rows]

    def __str__(self) -> str:
        return format_table(self)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned ASCII table."""
    headers = [str(h) for h in result.headers]
    cells = [[_format_cell(v) for v in row] for row in result.rows]
    widths = [
        max(len(headers[i]), max((len(row[i]) for row in cells), default=0))
        for i in range(len(headers))
    ]
    lines = [f"== {result.experiment}: {result.title} =="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    if result.notes:
        lines.append(f"note: {result.notes}")
    return "\n".join(lines)

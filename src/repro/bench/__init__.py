"""Benchmark harness: one module per paper figure/experiment.

Each experiment module exposes ``run(scale=...) -> ExperimentResult``
and can be executed directly (``python -m repro.bench.experiments.fig6_microbenchmark``).
``scale`` trades fidelity for wall-clock time:

- ``"smoke"`` — seconds; used by the pytest-benchmark suite's sanity runs,
- ``"quick"`` — tens of seconds; default, reproduces every trend,
- ``"full"``  — minutes; largest clusters/longest windows.

The numbers are *simulated* throughput (virtual-time transactions per
second); see EXPERIMENTS.md for the paper-vs-measured comparison.
"""

from repro.bench.charts import ascii_chart
from repro.bench.compare import Comparison, compare_files, compare_results
from repro.bench.io import load_json, save_csv, save_json
from repro.bench.reporting import ExperimentResult, format_table

__all__ = [
    "Comparison",
    "ExperimentResult",
    "ascii_chart",
    "compare_files",
    "compare_results",
    "format_table",
    "load_json",
    "save_csv",
    "save_json",
]

"""ASCII charts for experiment results.

Terminal-renderable bar charts so a benchmark's shape is visible without
leaving the shell (the CLI's ``--chart`` flag). Each numeric column of
an :class:`~repro.bench.reporting.ExperimentResult` becomes a bar per
row, scaled to the column-set maximum, so relative magnitudes across
rows *and* across series read directly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bench.reporting import ExperimentResult
from repro.errors import ConfigError

_FILLS = "█▓▒░#*+-"


def _numeric_columns(result: ExperimentResult) -> List[str]:
    numeric = []
    for header in result.headers:
        values = result.column(header)
        if values and all(isinstance(v, (int, float)) and not isinstance(v, bool)
                          for v in values):
            numeric.append(header)
    return numeric


def ascii_chart(
    result: ExperimentResult,
    label_header: Optional[str] = None,
    value_headers: Optional[Sequence[str]] = None,
    width: int = 48,
) -> str:
    """Render ``result`` as horizontal bars.

    ``label_header`` defaults to the first column; ``value_headers``
    default to every other numeric column. All series share one scale.
    """
    if not result.rows:
        raise ConfigError("cannot chart an empty result")
    headers = list(result.headers)
    label_header = label_header or headers[0]
    if label_header not in headers:
        raise ConfigError(f"unknown label column {label_header!r}")
    if value_headers is None:
        value_headers = [h for h in _numeric_columns(result) if h != label_header]
    if not value_headers:
        raise ConfigError("no numeric columns to chart")
    for header in value_headers:
        if header not in headers:
            raise ConfigError(f"unknown value column {header!r}")
    if len(value_headers) > len(_FILLS):
        raise ConfigError(f"at most {len(_FILLS)} series supported")

    labels = [str(v) for v in result.column(label_header)]
    series = {h: result.column(h) for h in value_headers}
    peak = max(max(values) for values in series.values())
    peak = peak if peak > 0 else 1.0
    label_width = max(len(label) for label in labels + [label_header])

    lines = [f"{result.experiment}: {result.title}"]
    for header, fill in zip(value_headers, _FILLS):
        lines.append(f"  {fill} = {header}")
    for index, label in enumerate(labels):
        for header, fill in zip(value_headers, _FILLS):
            value = series[header][index]
            bar = fill * max(0, round(value / peak * width))
            shown = label if header == value_headers[0] else ""
            lines.append(
                f"{shown.rjust(label_width)} |{bar.ljust(width)}| {value:,.1f}"
            )
    return "\n".join(lines)

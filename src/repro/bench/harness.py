"""Shared plumbing for experiments: build, load, saturate, measure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.baseline.cluster import BaselineCluster
from repro.config import BaselineConfig, ClusterConfig
from repro.core.cluster import CalvinCluster
from repro.core.metrics import RunReport
from repro.errors import ConfigError
from repro.obs import TraceRecorder
from repro.workloads.base import Workload

# Enough closed-loop clients per partition to saturate a node's workers
# through the ~10 ms epoch latency.
SATURATION_CLIENTS = 400


@dataclass(frozen=True)
class ScaleProfile:
    """Wall-clock/fidelity trade-off for experiments."""

    name: str
    warmup: float          # virtual seconds before the measurement window
    duration: float        # virtual seconds measured
    clients_per_partition: int
    max_machines: int      # cap on cluster-size sweeps

    @staticmethod
    def get(name: str) -> "ScaleProfile":
        try:
            return _PROFILES[name]
        except KeyError:
            raise ConfigError(
                f"unknown scale {name!r}; use one of {sorted(_PROFILES)}"
            ) from None


_PROFILES = {
    "smoke": ScaleProfile("smoke", warmup=0.12, duration=0.15, clients_per_partition=150, max_machines=4),
    "quick": ScaleProfile("quick", warmup=0.2, duration=0.3, clients_per_partition=SATURATION_CLIENTS, max_machines=8),
    "full": ScaleProfile("full", warmup=0.4, duration=1.0, clients_per_partition=SATURATION_CLIENTS, max_machines=16),
}


def run_calvin(
    workload: Workload,
    config: ClusterConfig,
    profile: ScaleProfile,
    clients_per_partition: Optional[int] = None,
    tracer: Optional[TraceRecorder] = None,
) -> RunReport:
    """Build a Calvin cluster, saturate it, measure one window.

    Pass a live :class:`TraceRecorder` to collect per-phase spans for
    the run (e.g. for the latency-breakdown experiment).
    """
    cluster = CalvinCluster(
        config, workload=workload, record_history=False, tracer=tracer
    )
    cluster.load_workload_data()
    cluster.add_clients(clients_per_partition or profile.clients_per_partition)
    return cluster.run(duration=profile.duration, warmup=profile.warmup)


def run_baseline(
    workload: Workload,
    config: ClusterConfig,
    profile: ScaleProfile,
    baseline: Optional[BaselineConfig] = None,
    clients_per_partition: Optional[int] = None,
    tracer: Optional[TraceRecorder] = None,
) -> RunReport:
    """Same measurement against the System R*-style baseline."""
    cluster = BaselineCluster(config, baseline=baseline, workload=workload, tracer=tracer)
    cluster.load_workload_data()
    cluster.add_clients(clients_per_partition or profile.clients_per_partition)
    return cluster.run(duration=profile.duration, warmup=profile.warmup)


def machine_sweep(profile: ScaleProfile, targets=(1, 2, 4, 8, 16)) -> list:
    """Cluster sizes to sweep, clipped to the profile's cap."""
    return [m for m in targets if m <= profile.max_machines]

"""Shared plumbing for experiments: build, load, saturate, measure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.baseline.cluster import BaselineCluster
from repro.config import BaselineConfig, ClusterConfig
from repro.core.cluster import CalvinCluster
from repro.core.metrics import RunReport
from repro.core.traffic import ClientProfile
from repro.errors import ConfigError
from repro.obs import TraceRecorder
from repro.workloads.base import Workload

# Enough closed-loop clients per partition to saturate a node's workers
# through the ~10 ms epoch latency.
SATURATION_CLIENTS = 400


@dataclass(frozen=True)
class ScaleProfile:
    """Wall-clock/fidelity trade-off for experiments."""

    name: str
    warmup: float          # virtual seconds before the measurement window
    duration: float        # virtual seconds measured
    clients_per_partition: int
    max_machines: int      # cap on cluster-size sweeps

    @staticmethod
    def get(name: str) -> "ScaleProfile":
        try:
            return _PROFILES[name]
        except KeyError:
            raise ConfigError(
                f"unknown scale {name!r}; use one of {sorted(_PROFILES)}"
            ) from None


_PROFILES = {
    "smoke": ScaleProfile("smoke", warmup=0.12, duration=0.15, clients_per_partition=150, max_machines=4),
    "quick": ScaleProfile("quick", warmup=0.2, duration=0.3, clients_per_partition=SATURATION_CLIENTS, max_machines=8),
    "full": ScaleProfile("full", warmup=0.4, duration=1.0, clients_per_partition=SATURATION_CLIENTS, max_machines=16),
}


class LockStatsSampler:
    """Samples lock-manager occupancy once per sequencing epoch.

    Reading ``active_txns`` / ``queued_requests`` walks every shard's
    lock table, so doing it after every grant scales with the *grant*
    rate and distorts exactly the experiments that stress the lock
    manager. Sampling on an epoch timer bounds the cost by the epoch
    rate instead, and a per-epoch time series is all the ablations
    report anyway (window means and peaks).
    """

    def __init__(self) -> None:
        # (virtual time, active txns, queued lock requests), replica 0.
        self.samples: List[Tuple[float, int, int]] = []

    def attach(self, cluster: CalvinCluster) -> None:
        """Install the epoch-periodic sampling timer on ``cluster``."""
        sim = cluster.sim
        interval = cluster.config.epoch_duration
        schedulers = [
            cluster.node(0, partition).scheduler
            for partition in range(cluster.config.num_partitions)
        ]

        def sample() -> None:
            active = queued = 0
            for scheduler in schedulers:
                shard_active, shard_queued = scheduler.lock_occupancy()
                active += shard_active
                queued += shard_queued
            self.samples.append((sim.now, active, queued))
            sim.schedule(interval, sample)

        # Offset to mid-epoch: sampling exactly on epoch boundaries
        # phase-locks with admission and reads a drained lock table.
        sim.schedule(interval * 0.5, sample)

    def mean_active(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s[1] for s in self.samples) / len(self.samples)

    def mean_queued(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s[2] for s in self.samples) / len(self.samples)

    def peak_queued(self) -> int:
        return max((s[2] for s in self.samples), default=0)


def run_calvin(
    workload: Workload,
    config: ClusterConfig,
    profile: ScaleProfile,
    clients_per_partition: Optional[int] = None,
    tracer: Optional[TraceRecorder] = None,
    on_cluster: Optional[Callable[[CalvinCluster], None]] = None,
    clients: Optional[ClientProfile] = None,
) -> RunReport:
    """Build a Calvin cluster, saturate it, measure one window.

    Pass a live :class:`TraceRecorder` to collect per-phase spans for
    the run (e.g. for the latency-breakdown experiment), an
    ``on_cluster`` hook to instrument the built cluster before it runs
    (e.g. attach a :class:`LockStatsSampler`), or a full
    :class:`ClientProfile` (``clients``) to drive the cluster with
    something other than the default closed-loop saturation population.
    """
    cluster = CalvinCluster(
        config, workload=workload, record_history=False, tracer=tracer
    )
    cluster.load_workload_data()
    if clients is None:
        clients = ClientProfile(
            per_partition=clients_per_partition or profile.clients_per_partition
        )
    cluster.add_clients(clients)
    if on_cluster is not None:
        on_cluster(cluster)
    return cluster.run(duration=profile.duration, warmup=profile.warmup)


def run_baseline(
    workload: Workload,
    config: ClusterConfig,
    profile: ScaleProfile,
    baseline: Optional[BaselineConfig] = None,
    clients_per_partition: Optional[int] = None,
    tracer: Optional[TraceRecorder] = None,
) -> RunReport:
    """Same measurement against the System R*-style baseline."""
    cluster = BaselineCluster(config, baseline=baseline, workload=workload, tracer=tracer)
    cluster.load_workload_data()
    cluster.add_clients(
        ClientProfile(
            per_partition=clients_per_partition or profile.clients_per_partition
        )
    )
    return cluster.run(duration=profile.duration, warmup=profile.warmup)


def run_engine(
    engine_name: str,
    workload: Workload,
    config: ClusterConfig,
    profile: ScaleProfile,
    clients_per_partition: Optional[int] = None,
    tracer: Optional[TraceRecorder] = None,
    on_cluster: Optional[Callable[[object], None]] = None,
) -> RunReport:
    """Saturate and measure one window under any registered engine.

    The engine-generic twin of :func:`run_calvin` / :func:`run_baseline`,
    dispatching through :mod:`repro.engines` — the path the three-system
    shoot-out (``repro bench compare``) sweeps.
    """
    from repro.engines import get_engine

    cluster = get_engine(engine_name).build(
        config, workload, record_history=False, tracer=tracer
    )
    cluster.load_workload_data()
    cluster.add_clients(
        ClientProfile(
            per_partition=clients_per_partition or profile.clients_per_partition
        )
    )
    if on_cluster is not None:
        on_cluster(cluster)
    return cluster.run(duration=profile.duration, warmup=profile.warmup)


def machine_sweep(profile: ScaleProfile, targets=(1, 2, 4, 8, 16)) -> list:
    """Cluster sizes to sweep, clipped to the profile's cap."""
    return [m for m in targets if m <= profile.max_machines]

"""Elastic reconfiguration sweep: ``repro bench elastic``.

Drives a half-active cluster (spare partitions provisioned but
dormant) with open-loop traffic and exercises the control plane
mid-run: splitting a hot partition onto a spare, retiring an origin,
and letting the autoscaler close the loop from admission saturation
signals to those same actions. Each scenario reports throughput and
tail latency around the resize plus a **shape digest** — a SHA-256
over the merged input log, the final state, and the control-plane
event list — so the whole sweep is a determinism oracle: the same
seed reproduces every digest bit-for-bit, serial or fanned across
worker processes with ``--jobs``.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

from repro.bench.harness import ScaleProfile
from repro.bench.parallel import sweep
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.core.cluster import CalvinCluster
from repro.core.traffic import ClientProfile
from repro.errors import ConfigError
from repro.partition.partitioner import sort_token
from repro.reconfig import AutoscalePolicy, Autoscaler, ClusterAdmin
from repro.workloads.microbenchmark import Microbenchmark

# Same admission budget as the saturation sweep: the knee position is
# exact, so "hot" is a precise statement about the intake queue.
EPOCH_BUDGET = 20
_CLIENTS_PER_PARTITION = 4
# Offered load as a fraction of one origin's admission capacity —
# comfortably past the knee, so queues build and the autoscaler sees
# real saturation signals.
_OVERLOAD = 1.3

SCENARIOS = ("static", "split", "resize", "autoscale")


def shape_digest(cluster) -> str:
    """SHA-256 over (input log, final state, control-plane events)."""
    digest = hashlib.sha256()
    for entry in cluster.merged_log():
        digest.update(
            repr(
                (entry.epoch, entry.origin_partition,
                 tuple(txn.txn_id for txn in entry.txns))
            ).encode()
        )
    state = cluster.final_state()
    for key in sorted(state, key=sort_token):
        digest.update(repr((key, state[key])).encode())
    admin = getattr(cluster, "reconfig_admin", None)
    if admin is not None:
        for event in admin.events:
            digest.update(repr(event).encode())
    return digest.hexdigest()


def _cell(
    scenario: str,
    scale: str,
    seed: int,
    partitions: int,
    policy: str,
) -> Tuple:
    """One scenario: fresh half-active cluster, resize mid-window."""
    profile = ScaleProfile.get(scale)
    active = max(2, partitions // 2)
    config = ClusterConfig(
        num_partitions=partitions,
        seed=seed,
        active_partitions=active,
        admission_policy=policy,
        admission_epoch_budget=EPOCH_BUDGET,
        admission_queue_capacity=2 * EPOCH_BUDGET,
    )
    workload = Microbenchmark(
        mp_fraction=0.1, hot_set_size=200, cold_set_size=200
    )
    cluster = CalvinCluster(config, workload=workload, record_history=False)
    cluster.load_workload_data()
    admin = ClusterAdmin(cluster)

    total = profile.warmup + profile.duration
    capacity = EPOCH_BUDGET / config.epoch_duration
    rate = _OVERLOAD * capacity / _CLIENTS_PER_PARTITION
    cluster.add_clients(
        ClientProfile(
            per_partition=_CLIENTS_PER_PARTITION,
            mode="open",
            rate=rate,
            max_txns=max(1, int(rate * total)),
        )
    )

    sim = cluster.sim
    act1 = profile.warmup
    act2 = profile.warmup + profile.duration / 2
    if scenario == "split":
        sim.schedule_at(act1, admin.split, 0, 0.5)
    elif scenario == "resize":
        sim.schedule_at(act1, admin.split, 0, 0.5)
        sim.schedule_at(act2, admin.remove_node, 1)
    elif scenario == "autoscale":
        scaler = Autoscaler(
            admin,
            AutoscalePolicy(
                interval=4 * config.epoch_duration,
                scale_up_queue_depth=EPOCH_BUDGET // 2,
                cooldown=profile.duration / 2,
                min_origins=active,
            ),
        )
        scaler.start()
    elif scenario != "static":
        raise ConfigError(f"unknown elastic scenario {scenario!r}")

    cluster.start()
    for client in cluster.clients:
        client.start()
    sim.run(until=profile.warmup)
    cluster.metrics.begin_window(sim.now)
    sim.run(until=total)
    report = cluster.metrics.report(sim.now)
    cluster.quiesce()

    latency = cluster.metrics.latency
    origins = ",".join(str(origin) for origin in admin.current_origins())
    return (
        scenario,
        report.committed,
        report.throughput,
        latency.percentile(50) * 1e3,
        latency.percentile(99) * 1e3,
        admin.keys_moved,
        origins,
        shape_digest(cluster),
    )


def run(
    scale: str = "quick",
    seed: int = 2012,
    partitions: int = 4,
    policy: str = "backpressure",
    jobs: Optional[int] = None,
) -> Tuple[ExperimentResult, str]:
    """Run every scenario; return (table, digest over all scenarios)."""
    ScaleProfile.get(scale)  # validate before any cell runs
    result = ExperimentResult(
        experiment="elastic",
        title=(
            f"elastic reconfiguration under open-loop overload — "
            f"{partitions} partitions ({max(2, partitions // 2)} active), "
            f"policy={policy}"
        ),
        headers=(
            "scenario",
            "committed",
            "committed/s",
            "p50_ms",
            "p99_ms",
            "keys_moved",
            "origins_after",
            "digest",
        ),
    )
    params = [
        (scenario, scale, seed, partitions, policy) for scenario in SCENARIOS
    ]
    combined = hashlib.sha256()
    for row in sweep(_cell, params, jobs=jobs):
        combined.update(row[-1].encode())
        result.add_row(*row[:-1], row[-1][:16])
    result.notes = (
        "each scenario rebuilds the cluster from the same seed; the digest "
        "column hashes (input log, final state, reconfig events), so any "
        "routing or migration nondeterminism changes it"
    )
    return result, combined.hexdigest()

"""Deterministic process-pool fan-out: the one sweep engine.

Every experiment grid in the repository — the paper figures, the
ablations, the engine shoot-out, the saturation/geo ladders, the chaos
campaign — is a list of *independent cells*: each builds a fresh
cluster from an explicit seed, runs it, and reduces the run to a
picklable row. That makes sweeps embarrassingly parallel without
touching determinism: virtual results depend only on the cell's
parameters, never on which process ran it or when.

:func:`run_cells` is the engine. ``jobs <= 1`` (the default) runs the
cells serially in-process — exactly the behaviour the old private
``for`` loops had; ``jobs > 1`` fans out across a process pool. In both
modes results come back **in cell order** (never completion order), so
a sweep's output is byte-identical at any job count — a property
tests/test_bench_parallel.py pins.

Worker functions must be module-level (picklable) and take only
picklable arguments; they must not return clusters, simulators or
callable-backed gauges. For metrics, return
:func:`portable_registry` of the cluster's registry and fold the
results with :func:`merge_registries` on join.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.obs.registry import Gauge, MetricsRegistry

ProgressFn = Callable[[str], None]


@dataclass(frozen=True)
class Cell:
    """One unit of sweep work: ``fn(*args, **kwargs)`` in some process."""

    fn: Callable[..., Any]
    args: Tuple = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)
    label: str = ""


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``--jobs`` value: ``None``→1 (serial), ``0``→cpu count."""
    if jobs is None:
        return 1
    if jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigError(f"--jobs must be >= 0, got {jobs}")
    return jobs


def _execute_cell(fn, args, kwargs, sanitize: bool):
    """Pool-side shim: optionally arm the sanitizer around one cell.

    Module-level so it pickles under any multiprocessing start method.
    """
    if sanitize:
        from repro.analysis.sanitizer import DeterminismSanitizer

        with DeterminismSanitizer():
            return fn(*args, **kwargs)
    return fn(*args, **kwargs)


def run_cells(
    cells: Sequence[Cell],
    jobs: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> List[Any]:
    """Run every cell; return results in cell order.

    Serial (``jobs <= 1``) runs in-process. Parallel submits all cells
    to a process pool and collects results in submission order, so the
    returned list — and anything derived from it — is independent of
    scheduling. ``progress`` (if given) is called with
    ``"label: result"``-ish one-liners, also in cell order. A cell that
    raises propagates its exception after the pool is torn down;
    remaining cells may or may not have run (their results are
    discarded either way).
    """
    effective = resolve_jobs(jobs)
    if effective <= 1 or len(cells) <= 1:
        results = []
        for cell in cells:
            results.append(cell.fn(*cell.args, **cell.kwargs))
            if progress is not None:
                progress(cell.label or f"cell {len(results)}/{len(cells)}")
        return results

    # The parent's sanitizer (if armed) must stand down around the pool:
    # multiprocessing's own plumbing legitimately reads time.monotonic.
    # Each worker re-arms it around its cell instead, so the simulated
    # work stays guarded at any job count.
    from repro.analysis.sanitizer import sanitizer_active, sanitizer_suspended

    sanitize_cells = sanitizer_active()
    results = []
    with sanitizer_suspended():
        with ProcessPoolExecutor(max_workers=min(effective, len(cells))) as pool:
            futures = [
                pool.submit(_execute_cell, cell.fn, cell.args, cell.kwargs, sanitize_cells)
                for cell in cells
            ]
            for index, future in enumerate(futures):
                results.append(future.result())
                if progress is not None:
                    progress(cells[index].label or f"cell {index + 1}/{len(cells)}")
    return results


def sweep(
    fn: Callable[..., Any],
    params: Iterable[Tuple],
    jobs: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> List[Any]:
    """Run ``fn(*p)`` for every parameter tuple, deterministically ordered.

    The convenience wrapper the figure/ablation grids use: one
    module-level worker, one list of parameter tuples, results in
    parameter order at any job count.
    """
    cells = [Cell(fn=fn, args=tuple(p), label=repr(tuple(p))) for p in params]
    return run_cells(cells, jobs=jobs, progress=progress)


def portable_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """A picklable copy of ``registry``: every instrument except gauges.

    Callable-backed gauges close over live cluster objects and cannot
    cross a process boundary (and :meth:`MetricsRegistry.merge` skips
    gauges anyway). Counters, histograms and series are plain data.
    """
    portable = MetricsRegistry()
    for name in registry.names():
        instrument = registry.get(name)
        if isinstance(instrument, Gauge):
            continue
        portable._instruments[name] = instrument
    return portable


def merge_registries(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """Fold per-run registries into one (counters/histograms/series sum)."""
    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    return merged

"""E6 / abstract claim — Paxos WAN replication costs latency, not throughput.

The same microbenchmark runs with (a) no replication, (b) asynchronous
replication to 2 peer replicas, (c) Multi-Paxos agreement across 3
replica sites ~50 ms apart. Calvin replicates *inputs* before execution,
and Paxos instances pipeline, so throughput should be essentially flat
while commit latency absorbs the WAN round trip.
"""

from __future__ import annotations

from repro.bench.harness import ScaleProfile, run_calvin
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.microbenchmark import Microbenchmark

MODES = (("none", 1), ("async", 3), ("paxos", 3))


def run(scale: str = "quick", seed: int = 2012, machines: int = 2) -> ExperimentResult:
    profile = ScaleProfile.get(scale)
    result = ExperimentResult(
        experiment="E6 (replication)",
        title="Replication mode vs throughput and latency (WAN ~50ms one-way)",
        headers=("mode", "replicas", "total txn/s", "p50 ms", "p99 ms"),
        notes="paper claim: Paxos-based strong consistency at no throughput cost; "
        "latency grows by ~1 WAN round trip",
    )
    for mode, replicas in MODES:
        workload = Microbenchmark(mp_fraction=0.10, hot_set_size=10000)
        config = ClusterConfig(
            num_partitions=machines,
            num_replicas=replicas,
            replication_mode=mode,
            seed=seed,
        )
        # Closed-loop clients: under Paxos each request is outstanding
        # for ~1 WAN RTT instead of ~1 epoch, so saturating the same
        # worker pool needs proportionally more clients, and the
        # measurement must start after the leader-election transient.
        clients = profile.clients_per_partition
        run_profile = profile
        if mode == "paxos":
            # ~12x more outstanding requests cover the ~12x latency, but
            # cap the base so huge profiles don't flood the epoch queues
            # (offered load beyond saturation only adds queueing delay).
            clients = min(clients, 150) * 12
            run_profile = ScaleProfile(
                profile.name, warmup=max(profile.warmup, 0.5),
                duration=profile.duration,
                clients_per_partition=clients,
                max_machines=profile.max_machines,
            )
        report = run_calvin(workload, config, run_profile, clients_per_partition=clients)
        result.add_row(
            mode,
            replicas,
            report.throughput,
            report.latency_p50 * 1e3,
            report.latency_p99 * 1e3,
        )
    return result


if __name__ == "__main__":
    print(run())

"""Ablation — epoch duration (DESIGN.md decision 4).

Calvin batches inputs into 10 ms epochs. Shorter epochs cut the
sequencing latency floor but multiply per-epoch overheads (sub-batch
fan-out is O(partitions²) messages per epoch); longer epochs amortize
overheads at the cost of latency. This sweep quantifies the trade.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bench.harness import ScaleProfile, run_calvin
from repro.bench.parallel import sweep
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.microbenchmark import Microbenchmark

EPOCHS = (0.002, 0.005, 0.010, 0.020, 0.050)


def _cell(epoch: float, machines: int, scale: str, seed: int) -> Tuple:
    profile = ScaleProfile.get(scale)
    workload = Microbenchmark(mp_fraction=0.10, hot_set_size=10000)
    config = ClusterConfig(num_partitions=machines, seed=seed, epoch_duration=epoch)
    report = run_calvin(workload, config, profile)
    return (
        epoch * 1e3,
        report.throughput,
        report.latency_p50 * 1e3,
        report.latency_p99 * 1e3,
    )


def run(
    scale: str = "quick",
    seed: int = 2012,
    machines: int = 4,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Ablation (epoch)",
        title="Epoch duration: throughput vs latency",
        headers=("epoch ms", "total txn/s", "p50 ms", "p99 ms"),
        notes="the paper fixes 10ms; latency floor tracks epoch length",
    )
    params = [(epoch, machines, scale, seed) for epoch in EPOCHS]
    for row in sweep(_cell, params, jobs=jobs):
        result.add_row(*row)
    return result


if __name__ == "__main__":
    print(run())

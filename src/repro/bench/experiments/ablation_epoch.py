"""Ablation — epoch duration (DESIGN.md decision 4).

Calvin batches inputs into 10 ms epochs. Shorter epochs cut the
sequencing latency floor but multiply per-epoch overheads (sub-batch
fan-out is O(partitions²) messages per epoch); longer epochs amortize
overheads at the cost of latency. This sweep quantifies the trade.
"""

from __future__ import annotations

from repro.bench.harness import ScaleProfile, run_calvin
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.microbenchmark import Microbenchmark

EPOCHS = (0.002, 0.005, 0.010, 0.020, 0.050)


def run(scale: str = "quick", seed: int = 2012, machines: int = 4) -> ExperimentResult:
    profile = ScaleProfile.get(scale)
    result = ExperimentResult(
        experiment="Ablation (epoch)",
        title="Epoch duration: throughput vs latency",
        headers=("epoch ms", "total txn/s", "p50 ms", "p99 ms"),
        notes="the paper fixes 10ms; latency floor tracks epoch length",
    )
    for epoch in EPOCHS:
        workload = Microbenchmark(mp_fraction=0.10, hot_set_size=10000)
        config = ClusterConfig(
            num_partitions=machines, seed=seed, epoch_duration=epoch
        )
        report = run_calvin(workload, config, profile)
        result.add_row(
            epoch * 1e3,
            report.throughput,
            report.latency_p50 * 1e3,
            report.latency_p99 * 1e3,
        )
    return result


if __name__ == "__main__":
    print(run())

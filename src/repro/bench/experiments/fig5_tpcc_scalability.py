"""E1 / paper Figure 5 — TPC-C New Order scalability.

Workload: 100% New Order, 10% multi-warehouse order lines, warehouses
scale with machines (the paper's setup). The paper reports total
throughput growing near-linearly to ~500 k txns/sec at 100 machines
(≈5 k/machine) with per-machine throughput roughly flat.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bench.harness import ScaleProfile, machine_sweep, run_calvin
from repro.bench.parallel import sweep
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.tpcc import TpccWorkload


def _cell(machines: int, clients: int, scale: str, seed: int) -> Tuple:
    profile = ScaleProfile.get(scale)
    workload = TpccWorkload(mix={"new_order": 1.0}, remote_fraction=0.10)
    config = ClusterConfig(num_partitions=machines, seed=seed)
    report = run_calvin(workload, config, profile, clients_per_partition=clients)
    return (
        machines,
        report.throughput,
        report.throughput / machines,
        report.latency_p99 * 1e3,
    )


def run(scale: str = "quick", seed: int = 2012, jobs: Optional[int] = None) -> ExperimentResult:
    profile = ScaleProfile.get(scale)
    result = ExperimentResult(
        experiment="Fig5 (E1)",
        title="TPC-C New Order scalability (10% multi-warehouse)",
        headers=("machines", "total txn/s", "per-machine txn/s", "p99 ms"),
        notes="paper: near-linear total scaling, ~5k New Orders/s/machine",
    )
    # TPC-C New Orders have ~40-key footprints over a finite stock/district
    # key space: past moderate concurrency, extra closed-loop clients only
    # lengthen lock queues (convoying) without adding throughput. Offer a
    # saturating-but-not-thrashing load regardless of scale profile.
    clients = min(150, profile.clients_per_partition)
    params = [(machines, clients, scale, seed) for machines in machine_sweep(profile)]
    for row in sweep(_cell, params, jobs=jobs):
        result.add_row(*row)
    return result


if __name__ == "__main__":
    print(run())

"""E7 — determinism end-to-end: replica consistency and checkpoint recovery.

Runs a contended, multipartition workload with a mid-run Zig-Zag
checkpoint; then (a) verifies every replica holds identical state,
(b) rebuilds the database from the checkpoint plus the input-log suffix
and verifies it matches the live cluster exactly, and (c) replays the
*full* log from the initial load as a second independent reconstruction.
"""

from __future__ import annotations

from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.core.checkers import check_replica_consistency
from repro.core.cluster import CalvinCluster
from repro.core.traffic import ClientProfile
from repro.errors import ConsistencyError
from repro.workloads.microbenchmark import Microbenchmark


def run(scale: str = "quick", seed: int = 2012) -> ExperimentResult:
    txns_per_client = 40 if scale != "smoke" else 15
    workload = Microbenchmark(mp_fraction=0.3, hot_set_size=50)
    config = ClusterConfig(
        num_partitions=3, num_replicas=2, replication_mode="async", seed=seed
    )
    cluster = CalvinCluster(config, workload=workload, record_history=False)
    cluster.load_workload_data()
    cluster.add_clients(ClientProfile(per_partition=10, max_txns=txns_per_client))
    done = cluster.schedule_checkpoint(at_time=0.12, mode="zigzag")
    cluster.run(duration=0.5)
    cluster.quiesce()
    check_replica_consistency(cluster)
    if not done.triggered:
        raise ConsistencyError("checkpoint did not complete during the run")

    live_state = cluster.final_state()
    epoch = cluster.checkpoints[0].epoch
    checkpoint_image = {}
    for snapshot in cluster.checkpoints.values():
        checkpoint_image.update(snapshot.data)
    suffix = [entry for entry in cluster.merged_log() if entry.epoch >= epoch]
    recovered = CalvinCluster.replay(
        config, cluster.registry, cluster.catalog.partitioner,
        checkpoint_image, suffix, start_epoch=epoch,
    )
    recovery_ok = recovered.final_state() == live_state

    full = CalvinCluster.replay(
        config, cluster.registry, cluster.catalog.partitioner,
        cluster.initial_data, cluster.merged_log(),
    )
    full_replay_ok = full.final_state() == live_state

    result = ExperimentResult(
        experiment="E7 (recovery)",
        title="Determinism: replica consistency, checkpoint + log replay",
        headers=("check", "result", "detail"),
    )
    result.add_row("replica consistency", "PASS", f"{config.num_replicas} replicas identical")
    result.add_row(
        "checkpoint recovery",
        "PASS" if recovery_ok else "FAIL",
        f"epoch {epoch} image + {sum(len(e.txns) for e in suffix)} replayed txns",
    )
    result.add_row(
        "full log replay",
        "PASS" if full_replay_ok else "FAIL",
        f"{sum(len(e.txns) for e in cluster.merged_log())} txns from initial load",
    )
    if not (recovery_ok and full_replay_ok):
        raise ConsistencyError("recovery reconstruction diverged from live state")
    return result


if __name__ == "__main__":
    print(run())

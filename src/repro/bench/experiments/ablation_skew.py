"""Ablation — access skew (Zipfian theta) under deterministic locking.

YCSB-style workload: as the Zipf exponent rises, more traffic lands on
the hottest records. Reads share locks, so a read-heavy skewed workload
degrades far less than an update-heavy one — a clean view of the
deterministic lock manager's shared/exclusive behaviour that the paper's
hot-set microbenchmark (exclusive-only) cannot show.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.harness import ScaleProfile, run_calvin
from repro.bench.parallel import sweep
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.ycsb import YcsbWorkload

THETAS = (0.0, 0.6, 0.9, 0.99, 1.2)


def _cell(theta: float, read_fraction: float, machines: int, scale: str, seed: int) -> float:
    profile = ScaleProfile.get(scale)
    workload = YcsbWorkload(
        records_per_partition=5000,
        theta=theta,
        read_fraction=read_fraction,
        mp_fraction=0.1,
    )
    config = ClusterConfig(num_partitions=machines, seed=seed)
    return run_calvin(workload, config, profile).throughput


def run(
    scale: str = "quick",
    seed: int = 2012,
    machines: int = 2,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Ablation (skew)",
        title="Zipfian skew vs throughput (YCSB-style, 2 machines)",
        headers=("theta", "read-heavy txn/s", "update-heavy txn/s"),
        notes="read-heavy = 95% reads (shared locks absorb skew); "
        "update-heavy = 100% read-modify-write (exclusive locks serialize "
        "the head keys)",
    )
    params = [
        (theta, read_fraction, machines, scale, seed)
        for theta in THETAS
        for read_fraction in (0.95, 0.0)
    ]
    rates = sweep(_cell, params, jobs=jobs)
    for index, theta in enumerate(THETAS):
        result.add_row(theta, rates[2 * index], rates[2 * index + 1])
    return result


if __name__ == "__main__":
    print(run())

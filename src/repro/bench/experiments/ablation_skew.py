"""Ablation — access skew (Zipfian theta) under deterministic locking.

YCSB-style workload: as the Zipf exponent rises, more traffic lands on
the hottest records. Reads share locks, so a read-heavy skewed workload
degrades far less than an update-heavy one — a clean view of the
deterministic lock manager's shared/exclusive behaviour that the paper's
hot-set microbenchmark (exclusive-only) cannot show.
"""

from __future__ import annotations

from repro.bench.harness import ScaleProfile, run_calvin
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.ycsb import YcsbWorkload

THETAS = (0.0, 0.6, 0.9, 0.99, 1.2)


def run(scale: str = "quick", seed: int = 2012, machines: int = 2) -> ExperimentResult:
    profile = ScaleProfile.get(scale)
    result = ExperimentResult(
        experiment="Ablation (skew)",
        title="Zipfian skew vs throughput (YCSB-style, 2 machines)",
        headers=("theta", "read-heavy txn/s", "update-heavy txn/s"),
        notes="read-heavy = 95% reads (shared locks absorb skew); "
        "update-heavy = 100% read-modify-write (exclusive locks serialize "
        "the head keys)",
    )
    for theta in THETAS:
        rates = []
        for read_fraction in (0.95, 0.0):
            workload = YcsbWorkload(
                records_per_partition=5000,
                theta=theta,
                read_fraction=read_fraction,
                mp_fraction=0.1,
            )
            config = ClusterConfig(num_partitions=machines, seed=seed)
            rates.append(run_calvin(workload, config, profile).throughput)
        result.add_row(theta, rates[0], rates[1])
    return result


if __name__ == "__main__":
    print(run())

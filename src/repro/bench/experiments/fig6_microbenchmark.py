"""E2 / paper Figure 6 — microbenchmark per-machine throughput scalability.

Per-machine throughput versus cluster size at 0%, 10% and 100%
multipartition transactions, low contention. The paper shows ~27 k
txns/s/machine at 0% (flat), a drop to roughly half when 10% of
transactions are multipartition, and a much lower but still flat-ish
curve at 100%.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bench.harness import ScaleProfile, machine_sweep, run_calvin
from repro.bench.parallel import sweep
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.microbenchmark import Microbenchmark

MP_FRACTIONS = (0.0, 0.10, 1.0)


def _cell(mp_fraction: float, machines: int, scale: str, seed: int) -> Tuple:
    profile = ScaleProfile.get(scale)
    workload = Microbenchmark(mp_fraction=mp_fraction, hot_set_size=10000)
    config = ClusterConfig(num_partitions=machines, seed=seed)
    report = run_calvin(workload, config, profile)
    return (
        machines,
        int(mp_fraction * 100),
        report.throughput / machines,
        report.throughput,
    )


def run(scale: str = "quick", seed: int = 2012, jobs: Optional[int] = None) -> ExperimentResult:
    profile = ScaleProfile.get(scale)
    result = ExperimentResult(
        experiment="Fig6 (E2)",
        title="Microbenchmark per-machine throughput vs machines",
        headers=("machines", "mp %", "per-machine txn/s", "total txn/s"),
        notes="paper: ~27k/machine at 0% mp; large drop at 100% mp; near-flat scaling",
    )
    machines_list = machine_sweep(profile, targets=(2, 4, 8, 16))
    params = [
        (mp_fraction, machines, scale, seed)
        for mp_fraction in MP_FRACTIONS
        for machines in machines_list
    ]
    for row in sweep(_cell, params, jobs=jobs):
        result.add_row(*row)
    return result


if __name__ == "__main__":
    print(run())

"""Experiment modules, one per paper figure / claim (see DESIGN.md E1-E7)."""

"""Ablation — worker pool size (execution concurrency per node).

Per-machine throughput versus the number of worker contexts. Throughput
scales with workers while they are the bottleneck, then flattens when
the single-threaded lock-manager admission (Calvin's serialization
point, ~O(locks x lock_request_cpu) per transaction) takes over —
the same ceiling the paper's single-lock-manager design discussion
implies.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bench.harness import ScaleProfile, run_calvin
from repro.bench.parallel import sweep
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.microbenchmark import Microbenchmark

WORKER_COUNTS = (2, 4, 8, 16, 32)


def _cell(workers: int, machines: int, scale: str, seed: int) -> Tuple:
    profile = ScaleProfile.get(scale)
    workload = Microbenchmark(mp_fraction=0.10, hot_set_size=10000)
    config = ClusterConfig(
        num_partitions=machines, seed=seed, workers_per_node=workers
    )
    report = run_calvin(workload, config, profile)
    return (workers, report.throughput / machines, report.latency_p50 * 1e3)


def run(
    scale: str = "quick",
    seed: int = 2012,
    machines: int = 2,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Ablation (workers)",
        title="Worker contexts per node vs per-machine throughput",
        headers=("workers", "per-machine txn/s", "p50 ms"),
        notes="flattens when the single lock-manager thread becomes the bound",
    )
    params = [(workers, machines, scale, seed) for workers in WORKER_COUNTS]
    for row in sweep(_cell, params, jobs=jobs):
        result.add_row(*row)
    return result


if __name__ == "__main__":
    print(run())

"""E5 / paper Section 4 — disk-based storage with sequencer prefetching.

Sweeps the fraction of transactions touching a disk-resident (archive)
record, with perfect and with badly wrong latency estimates. The paper's
claims: (a) the sequencer's prefetch-and-defer scheme sustains nearly
full throughput as long as the disk subsystem itself keeps up; (b) the
penalty of underestimating fetch latency is transactions stalling in the
scheduler while holding locks.
"""

from __future__ import annotations

from repro.bench.harness import ScaleProfile, run_calvin
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.microbenchmark import Microbenchmark

ARCHIVE_FRACTIONS = (0.0, 0.01, 0.02, 0.05, 0.10)


def run(scale: str = "quick", seed: int = 2012, machines: int = 2) -> ExperimentResult:
    profile = ScaleProfile.get(scale)
    result = ExperimentResult(
        experiment="E5 (Section 4)",
        title="Disk-resident transactions: prefetching and estimate error",
        headers=(
            "disk txn %",
            "txn/s (good estimate)",
            "txn/s (underestimated)",
            "p99 ms (good)",
            "p99 ms (under)",
        ),
        notes="disk device: 8-way, ~10ms access; 'underestimated' = sequencer "
        "predicts 0ms, so transactions stall holding locks",
    )
    for fraction in ARCHIVE_FRACTIONS:
        rows = []
        for error in (0.0, 1.0):
            workload = Microbenchmark(
                mp_fraction=0.0, archive_fraction=fraction, archive_set_size=50000
            )
            config = ClusterConfig(
                num_partitions=machines,
                seed=seed,
                disk_enabled=fraction > 0,
                disk_estimate_error=error,
            )
            rows.append(run_calvin(workload, config, profile))
        result.add_row(
            fraction * 100,
            rows[0].throughput,
            rows[1].throughput,
            rows[0].latency_p99 * 1e3,
            rows[1].latency_p99 * 1e3,
        )
    return result


if __name__ == "__main__":
    print(run())

"""E4 / paper Figure 8 — throughput while a checkpoint is captured.

A steady microbenchmark load runs while a checkpoint is taken mid-run.
The paper's asynchronous (Zig-Zag-style) scheme shows a modest
throughput reduction for the duration of the capture; the naive
stop-the-world alternative (our added contrast) shows a full outage.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bench.parallel import sweep
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.core.cluster import CalvinCluster
from repro.core.traffic import ClientProfile
from repro.workloads.microbenchmark import Microbenchmark

# Sized so the dump takes a visible fraction of the run.
_RECORDS_PER_PARTITION = 60000


def _throughput_series(mode: str, seed: int, machines: int, duration: float,
                       checkpoint_at: float) -> Tuple[List[Tuple[float, float]], Dict]:
    workload = Microbenchmark(
        mp_fraction=0.10, hot_set_size=10000,
        cold_set_size=_RECORDS_PER_PARTITION - 10000,
    )
    config = ClusterConfig(num_partitions=machines, seed=seed)
    cluster = CalvinCluster(config, workload=workload, record_history=False)
    cluster.load_workload_data()
    cluster.add_clients(ClientProfile(per_partition=300))
    done = cluster.schedule_checkpoint(at_time=checkpoint_at, mode=mode)
    cluster.run(duration=duration, warmup=0.0)
    series = cluster.metrics.throughput.series(cluster.sim.now - 0.1, start_time=0.1)
    info = {
        "completed": done.triggered,
        "records": sum(s.record_count for s in cluster.checkpoints.values()),
        "capture_seconds": max(
            (s.finished_at - s.started_at for s in cluster.checkpoints.values()),
            default=0.0,
        ),
    }
    return series, info


def run(
    scale: str = "quick",
    seed: int = 2012,
    machines: int = 2,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    duration = 1.0 if scale != "smoke" else 0.6
    checkpoint_at = duration * 0.35
    result = ExperimentResult(
        experiment="Fig8 (E4)",
        title="Throughput over time while checkpointing (txn/s, cluster)",
        headers=("t (s)", "zigzag txn/s", "naive txn/s"),
        notes=f"checkpoint starts ~t={checkpoint_at:.2f}s; paper: async scheme shows "
        "a modest dip, no outage",
    )
    params = [
        (mode, seed, machines, duration, checkpoint_at) for mode in ("zigzag", "naive")
    ]
    (zigzag, zigzag_info), (naive, naive_info) = sweep(
        _throughput_series, params, jobs=jobs
    )
    for (t, zz_rate), (_t2, nv_rate) in zip(zigzag, naive):
        result.add_row(round(t, 2), zz_rate, nv_rate)
    result.notes += (
        f"; zigzag capture {zigzag_info['capture_seconds']*1e3:.0f}ms over "
        f"{zigzag_info['records']} records, naive outage "
        f"{naive_info['capture_seconds']*1e3:.0f}ms"
    )
    return result


if __name__ == "__main__":
    print(run())

"""E8 — no single point of failure (abstract claim).

A 3-replica Paxos-replicated cluster loses an entire replica mid-run.
Because input batches only need a majority of acceptors and every
replica executes the full agreed log, throughput at the surviving input
replica is unaffected. Losing a *majority* of replicas, by contrast,
stalls agreement entirely — Calvin chooses safety over availability.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.core.cluster import CalvinCluster
from repro.core.traffic import ClientProfile
from repro.faults.plan import FaultPlan
from repro.workloads.microbenchmark import Microbenchmark


def _run(crash_replicas: List[int], seed: int, machines: int,
         duration: float, crash_at: float) -> List[Tuple[float, float]]:
    workload = Microbenchmark(mp_fraction=0.10, hot_set_size=10000)
    config = ClusterConfig(
        num_partitions=machines, num_replicas=3, replication_mode="paxos", seed=seed
    )
    # Permanent whole-replica crashes (no restart: ``until`` unset).
    plan = FaultPlan(name=f"e8-crash-{'-'.join(map(str, crash_replicas))}")
    for replica in crash_replicas:
        plan.crash(at=crash_at, replica=replica)
    cluster = CalvinCluster(
        config, workload=workload, record_history=False, fault_plan=plan
    )
    cluster.load_workload_data()
    cluster.add_clients(ClientProfile(per_partition=1200))  # saturate through the WAN commit latency
    cluster.run(duration=duration, warmup=0.0)
    # Skip the leader-election warmup in the reported series.
    return cluster.metrics.throughput.series(cluster.sim.now - 0.05, start_time=0.4)


def run(scale: str = "quick", seed: int = 2012, machines: int = 2) -> ExperimentResult:
    duration = 1.4 if scale != "smoke" else 1.1
    crash_at = 0.7
    result = ExperimentResult(
        experiment="E8 (failover)",
        title="Throughput across a whole-replica crash (Paxos x3, txn/s)",
        headers=("t (s)", "minority crash", "majority crash"),
        notes=f"one replica (of 3) crashes at t={crash_at}s in col 2; two crash in "
        "col 3 — agreement needs a majority, so the system stalls rather than "
        "diverge",
    )
    minority = _run([1], seed, machines, duration, crash_at)
    majority = _run([1, 2], seed, machines, duration, crash_at)
    for (t, rate_minority), (_t, rate_majority) in zip(minority, majority):
        result.add_row(round(t, 2), rate_minority, rate_majority)
    return result


if __name__ == "__main__":
    print(run())

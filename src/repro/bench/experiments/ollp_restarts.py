"""OLLP sensitivity — dependent-transaction restart rate vs update pressure.

The paper (Section 3.2.1) notes that OLLP performs well when the
reconnaissance-to-execution window rarely invalidates the predicted
footprint, and degrades when hot dependencies churn. This experiment
quantifies that on TPC-C: Delivery's footprint depends on each
district's oldest-undelivered-order queue, which every New Order
mutates — so raising the New Order share raises Delivery's restart
probability.
"""

from __future__ import annotations

from repro.bench.harness import ScaleProfile
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.core.cluster import CalvinCluster
from repro.core.traffic import ClientProfile
from repro.workloads.tpcc import TpccWorkload

# Delivery is held at a fixed 5% while the queue-churning New Order
# share sweeps against queue-neutral Payment, so the restart ratio
# isolates reconnaissance staleness rather than delivery-vs-delivery
# contention.
NEW_ORDER_SHARES = (0.0, 0.3, 0.6, 0.9)
DELIVERY_SHARE = 0.05


def run(scale: str = "quick", seed: int = 2012, machines: int = 2) -> ExperimentResult:
    profile = ScaleProfile.get(scale)
    result = ExperimentResult(
        experiment="OLLP (restarts)",
        title="Dependent-txn restarts vs New Order share (TPC-C)",
        headers=(
            "new_order %",
            "total txn/s",
            "deliveries/s",
            "restarts/s",
            "restart ratio",
        ),
        notes="restart ratio = restarts / (restarts + committed deliveries); "
        "New Orders invalidate a Delivery's footprint when they change a "
        "district queue HEAD — i.e. when queues hover near empty — so the "
        "ratio jumps as churn appears, then eases as queues stay non-empty",
    )
    clients = min(40, profile.clients_per_partition)
    for share in NEW_ORDER_SHARES:
        mix = {
            "delivery": DELIVERY_SHARE,
            "payment": max(0.0, 1.0 - DELIVERY_SHARE - share),
        }
        if share > 0:
            mix["new_order"] = share
        workload = TpccWorkload(
            mix=mix,
            remote_fraction=0.05,
            by_name_fraction=0.0,  # keep Payment fully independent
        )
        config = ClusterConfig(num_partitions=machines, seed=seed)
        cluster = CalvinCluster(config, workload=workload, record_history=False)
        cluster.load_workload_data()
        cluster.add_clients(ClientProfile(per_partition=clients))
        # Warm up, snapshot cumulative counters, then measure deltas so
        # warm-up restarts don't pollute the ratio.
        cluster.run(duration=profile.warmup)
        before_restarts = cluster.metrics.restarts
        before_deliveries = cluster.metrics.per_procedure.get("delivery", 0)
        report = cluster.run(duration=profile.duration)
        window = report.duration
        deliveries = report.per_procedure.get("delivery", 0) - before_deliveries
        restarts = report.restarts - before_restarts
        ratio = restarts / max(1, restarts + deliveries)
        result.add_row(
            int(share * 100),
            report.throughput,
            deliveries / window,
            restarts / window,
            ratio,
        )
    return result


if __name__ == "__main__":
    print(run())

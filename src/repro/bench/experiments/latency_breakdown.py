"""Latency decomposition vs multipartition fraction.

Calvin's latency has two structural parts: the sequencing wait (epoch
batching, roughly half an epoch at low contention) and execution (lock
queueing plus local work plus, for multipartition transactions, the
remote-read exchange). This experiment separates them — showing that
the deterministic protocol's latency floor comes from batching, not
from coordination, and that multipartition transactions pay one
remote-read round trip rather than a commit protocol.

The phase columns come straight from the tracing subsystem: each run
records typed spans (:class:`repro.obs.SpanKind`) and the table reports
their mean durations over the measurement window — the same data
``python -m repro trace`` renders interactively.
"""

from __future__ import annotations

from repro.bench.harness import ScaleProfile, run_calvin
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.obs import SpanKind, TraceRecorder, phase_means
from repro.workloads.microbenchmark import Microbenchmark

MP_FRACTIONS = (0.0, 0.1, 0.5, 1.0)


def run(scale: str = "quick", seed: int = 2012, machines: int = 2) -> ExperimentResult:
    profile = ScaleProfile.get(scale)
    result = ExperimentResult(
        experiment="Latency breakdown",
        title="Latency decomposition vs multipartition fraction",
        headers=(
            "mp %",
            "p50 ms",
            "p99 ms",
            "sequence ms",
            "lock wait ms",
            "execute ms",
            "remote read ms",
        ),
        notes="phase columns are mean span durations from the trace recorder "
        "(measurement window only): sequence = submit -> epoch close, "
        "lock wait = admission -> all locks granted, remote read = waiting "
        "on other partitions' values; "
        "clients kept below saturation so queueing does not mask the floor",
    )
    for mp_fraction in MP_FRACTIONS:
        workload = Microbenchmark(mp_fraction=mp_fraction, hot_set_size=10000)
        config = ClusterConfig(num_partitions=machines, seed=seed)
        tracer = TraceRecorder()
        report = run_calvin(
            workload, config, profile,
            clients_per_partition=max(20, profile.clients_per_partition // 8),
            tracer=tracer,
        )
        means = phase_means(tracer.spans, since=profile.warmup)
        result.add_row(
            int(mp_fraction * 100),
            report.latency_p50 * 1e3,
            report.latency_p99 * 1e3,
            means.get(SpanKind.SEQUENCE, 0.0) * 1e3,
            means.get(SpanKind.LOCK_WAIT, 0.0) * 1e3,
            means.get(SpanKind.EXECUTE, 0.0) * 1e3,
            means.get(SpanKind.REMOTE_READ_WAIT, 0.0) * 1e3,
        )
    return result


if __name__ == "__main__":
    print(run())

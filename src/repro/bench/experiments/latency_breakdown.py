"""Latency decomposition vs multipartition fraction.

Calvin's latency has two structural parts: the sequencing wait (epoch
batching + lock queueing, roughly half an epoch at low contention) and
execution (local work plus, for multipartition transactions, the
remote-read exchange). This experiment separates them — showing that
the deterministic protocol's latency floor comes from batching, not
from coordination, and that multipartition transactions pay one
remote-read round trip rather than a commit protocol.
"""

from __future__ import annotations

from repro.bench.harness import ScaleProfile, run_calvin
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.microbenchmark import Microbenchmark

MP_FRACTIONS = (0.0, 0.1, 0.5, 1.0)


def run(scale: str = "quick", seed: int = 2012, machines: int = 2) -> ExperimentResult:
    profile = ScaleProfile.get(scale)
    result = ExperimentResult(
        experiment="Latency breakdown",
        title="Latency decomposition vs multipartition fraction",
        headers=(
            "mp %",
            "p50 ms",
            "p99 ms",
            "sequencing ms (mean)",
            "execution ms (mean)",
        ),
        notes="sequencing = submit -> locks granted (epoch wait + queueing); "
        "execution = locks granted -> done (incl. remote reads); "
        "clients kept below saturation so queueing does not mask the floor",
    )
    for mp_fraction in MP_FRACTIONS:
        workload = Microbenchmark(mp_fraction=mp_fraction, hot_set_size=10000)
        config = ClusterConfig(num_partitions=machines, seed=seed)
        report = run_calvin(
            workload, config, profile,
            clients_per_partition=max(20, profile.clients_per_partition // 8),
        )
        result.add_row(
            int(mp_fraction * 100),
            report.latency_p50 * 1e3,
            report.latency_p99 * 1e3,
            report.sequencing_mean * 1e3,
            report.execution_mean * 1e3,
        )
    return result


if __name__ == "__main__":
    print(run())

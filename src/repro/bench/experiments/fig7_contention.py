"""E3 / paper Figure 7 — slowdown under contention, Calvin vs 2PC baseline.

Microbenchmark with 10% multipartition transactions; the contention
index (1 / hot-set size) sweeps from 0.0001 toward 1. Each system's
throughput is normalized to its own lowest-contention point, so the
table reports *slowdown factors*. The paper shows the System R*-style
system degrading dramatically sooner and deeper than Calvin, because it
holds locks across two-phase commit and suffers deadlock aborts.
"""

from __future__ import annotations

from typing import Optional

from repro.bench.harness import ScaleProfile, run_baseline, run_calvin
from repro.bench.parallel import sweep
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.microbenchmark import Microbenchmark

CONTENTION_HOT_SETS = (10000, 1000, 100, 10, 2, 1)


def _cell(system: str, hot_set: int, machines: int, scale: str, seed: int) -> float:
    profile = ScaleProfile.get(scale)
    workload = Microbenchmark(mp_fraction=0.10, hot_set_size=hot_set)
    config = ClusterConfig(num_partitions=machines, seed=seed)
    runner = run_calvin if system == "calvin" else run_baseline
    return runner(workload, config, profile).throughput


def run(
    scale: str = "quick",
    seed: int = 2012,
    machines: int = 2,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Fig7 (E3)",
        title="Slowdown vs contention index (10% multipartition)",
        headers=(
            "contention idx",
            "calvin txn/s",
            "calvin slowdown",
            "2pc txn/s",
            "2pc slowdown",
        ),
        notes="slowdown = system's low-contention throughput / its throughput here; "
        "paper: 2PC system collapses orders of magnitude sooner than Calvin",
    )
    params = [
        (system, hot_set, machines, scale, seed)
        for hot_set in CONTENTION_HOT_SETS
        for system in ("calvin", "2pc")
    ]
    rates = sweep(_cell, params, jobs=jobs)
    calvin_rates = rates[0::2]
    baseline_rates = rates[1::2]
    calvin_reference = max(calvin_rates[0], 1e-9)
    baseline_reference = max(baseline_rates[0], 1e-9)
    for index, hot_set in enumerate(CONTENTION_HOT_SETS):
        result.add_row(
            1.0 / hot_set,
            calvin_rates[index],
            calvin_reference / max(calvin_rates[index], 1e-9),
            baseline_rates[index],
            baseline_reference / max(baseline_rates[index], 1e-9),
        )
    return result


if __name__ == "__main__":
    print(run())

"""Ablation — multipartition fan-out (participants per transaction).

The paper's microbenchmark caps multipartition transactions at two
participants. This sweep extends it: each additional participant adds
per-node message handling and another partition's locks, but the
protocol still needs only ONE remote-read exchange (no commit round),
so throughput degrades roughly with the total per-transaction work
rather than falling off a coordination cliff.
"""

from __future__ import annotations

from repro.bench.harness import ScaleProfile, run_calvin
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.microbenchmark import Microbenchmark

FANOUTS = (2, 3, 4, 6)


def run(scale: str = "quick", seed: int = 2012, machines: int = 6) -> ExperimentResult:
    profile = ScaleProfile.get(scale)
    machines = min(machines, profile.max_machines)
    result = ExperimentResult(
        experiment="Ablation (fan-out)",
        title="Participants per multipartition txn vs throughput (100% mp)",
        headers=("participants", "total txn/s", "per-machine txn/s", "p50 ms"),
        notes="one remote-read exchange regardless of fan-out — no 2PC cliff",
    )
    for fanout in FANOUTS:
        if fanout > machines:
            continue
        workload = Microbenchmark(
            mp_fraction=1.0, hot_set_size=10000, partitions_per_txn=fanout
        )
        config = ClusterConfig(num_partitions=machines, seed=seed)
        report = run_calvin(workload, config, profile)
        result.add_row(
            fanout,
            report.throughput,
            report.throughput / machines,
            report.latency_p50 * 1e3,
        )
    return result


if __name__ == "__main__":
    print(run())

"""Ablation — multipartition fan-out (participants per transaction).

The paper's microbenchmark caps multipartition transactions at two
participants. This sweep extends it: each additional participant adds
per-node message handling and another partition's locks, but the
protocol still needs only ONE remote-read exchange (no commit round),
so throughput degrades roughly with the total per-transaction work
rather than falling off a coordination cliff.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bench.harness import ScaleProfile, run_calvin
from repro.bench.parallel import sweep
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.workloads.microbenchmark import Microbenchmark

FANOUTS = (2, 3, 4, 6)


def _cell(fanout: int, machines: int, scale: str, seed: int) -> Tuple:
    profile = ScaleProfile.get(scale)
    workload = Microbenchmark(
        mp_fraction=1.0, hot_set_size=10000, partitions_per_txn=fanout
    )
    config = ClusterConfig(num_partitions=machines, seed=seed)
    report = run_calvin(workload, config, profile)
    return (
        fanout,
        report.throughput,
        report.throughput / machines,
        report.latency_p50 * 1e3,
    )


def run(
    scale: str = "quick",
    seed: int = 2012,
    machines: int = 6,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    profile = ScaleProfile.get(scale)
    machines = min(machines, profile.max_machines)
    result = ExperimentResult(
        experiment="Ablation (fan-out)",
        title="Participants per multipartition txn vs throughput (100% mp)",
        headers=("participants", "total txn/s", "per-machine txn/s", "p50 ms"),
        notes="one remote-read exchange regardless of fan-out — no 2PC cliff",
    )
    params = [
        (fanout, machines, scale, seed) for fanout in FANOUTS if fanout <= machines
    ]
    for row in sweep(_cell, params, jobs=jobs):
        result.add_row(*row)
    return result


if __name__ == "__main__":
    print(run())

"""Ablation — sharding the lock-manager thread (DESIGN.md decision 2).

The paper's scheduler serializes all lock requests through one lock
manager thread; at high worker counts that thread becomes the node's
throughput ceiling. Sharding the lock table by key (each shard its own
in-order thread) preserves per-key determinism and lifts the ceiling —
the direction later deterministic-database work explored. This sweep
measures single-partition microbenchmark throughput with an enlarged
worker pool, so the admission path is the binding constraint.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bench.harness import LockStatsSampler, ScaleProfile, run_calvin
from repro.bench.parallel import sweep
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig, CostModel
from repro.workloads.microbenchmark import Microbenchmark

SHARD_COUNTS = (1, 2, 4, 8)


def _cell(shards: int, machines: int, scale: str, seed: int) -> Tuple:
    profile = ScaleProfile.get(scale)
    costs = CostModel(lock_request_cpu=6e-6)
    workload = Microbenchmark(mp_fraction=0.0, hot_set_size=10000)
    config = ClusterConfig(
        num_partitions=machines,
        seed=seed,
        workers_per_node=32,
        lock_manager_shards=shards,
        costs=costs,
    )
    sampler = LockStatsSampler()
    report = run_calvin(
        workload, config, profile,
        clients_per_partition=profile.clients_per_partition * 2,
        on_cluster=sampler.attach,
    )
    return (
        shards,
        report.throughput / machines,
        report.latency_p50 * 1e3,
        round(sampler.mean_active(), 1),
        sampler.peak_queued(),
    )


def run(
    scale: str = "quick",
    seed: int = 2012,
    machines: int = 1,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    result = ExperimentResult(
        experiment="Ablation (lock manager)",
        title="Lock-manager shards vs per-machine throughput (32 workers)",
        headers=("shards", "per-machine txn/s", "p50 ms", "mean locked txns", "peak queued"),
        notes="lock_request_cpu raised 4x so admission, not workers, binds — "
        "isolating the serialization point the paper's design accepts; "
        "occupancy sampled once per epoch, not per grant",
    )
    params = [(shards, machines, scale, seed) for shards in SHARD_COUNTS]
    for row in sweep(_cell, params, jobs=jobs):
        result.add_row(*row)
    return result


if __name__ == "__main__":
    print(run())

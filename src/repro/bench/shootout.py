"""Three-system shoot-out: Calvin core vs 2PL+2PC baseline vs STAR.

One saturated measurement window per (contention, multipartition-%)
cell per engine, all on the paper's microbenchmark, all through the
:mod:`repro.engines` seam — so every system sees the same workload
generator, cost model, network and simulator.

The sweep is built to expose the phase-switching trade STAR makes:

* at **low multipartition fractions** STAR matches Calvin on the
  single-partition stream and skips Calvin's per-participant
  multipartition overhead (remote-read fan-out + wait) by running the
  few multipartition transactions on the master's full-replica view —
  it should **beat** Calvin;
* at **high multipartition fractions** everything funnels through the
  one master node, so STAR's throughput should **degrade toward the
  single-node reference** (a 1-partition core run of the same
  per-partition workload) while Calvin keeps scaling across partitions.

The single-node reference column makes that ceiling visible in the
same table.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.bench.harness import SATURATION_CLIENTS, ScaleProfile, run_engine
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.core.metrics import RunReport
from repro.errors import ConfigError
from repro.workloads.microbenchmark import Microbenchmark

# (label, per-partition hot set size): low contention first. The paper's
# contention index is 1/hot_set_size (Section 6.3).
DEFAULT_CONTENTION: Tuple[Tuple[str, int], ...] = (
    ("low", 10000),
    ("high", 100),
)
DEFAULT_MP_FRACTIONS: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.3, 0.5, 1.0)


def _config_for(engine: str, partitions: int, seed: int) -> ClusterConfig:
    return ClusterConfig(
        num_partitions=partitions,
        num_replicas=1,
        seed=seed,
        engine=engine,
    )


def run(
    scale: str = "smoke",
    seed: int = 2012,
    partitions: int = 4,
    engines: Sequence[str] = ("core", "baseline", "star"),
    mp_fractions: Sequence[float] = DEFAULT_MP_FRACTIONS,
    contention: Sequence[Tuple[str, int]] = DEFAULT_CONTENTION,
    progress=None,
) -> ExperimentResult:
    """Sweep contention x multipartition-% across ``engines``.

    Returns an :class:`ExperimentResult` with one throughput column per
    engine plus the single-node reference; ``progress`` (if given) is
    called with a one-line string after every cell, for live CLI output.
    """
    if partitions < 2:
        raise ConfigError("the shoot-out needs >= 2 partitions")
    unknown = [e for e in engines if e not in ("core", "baseline", "star")]
    if unknown:
        raise ConfigError(f"unknown engine(s) in shoot-out: {unknown}")
    profile = ScaleProfile.get(scale)
    # The phase-switch trade only shows at depth: under-saturated clients
    # turn STAR's multipartition batching latency into lost throughput.
    # Scale therefore controls window lengths only, never client count.
    clients = SATURATION_CLIENTS

    headers = ["contention", "hot_set", "mp_%"]
    headers += [f"{engine}_tps" for engine in engines]
    headers.append("single_node_tps")
    if "core" in engines and "star" in engines:
        headers.append("star/calvin")
    result = ExperimentResult(
        experiment="engine-shootout",
        title=(
            f"{' vs '.join(engines)}, {partitions} partitions, "
            f"{scale} scale, seed {seed}"
        ),
        headers=headers,
    )

    for label, hot_set_size in contention:
        # The single-node ceiling: the same per-partition workload on one
        # partition (multipartition draws collapse to single-partition
        # there, so one run covers every mp point of this contention row).
        reference = run_engine(
            "core",
            Microbenchmark(hot_set_size=hot_set_size, cold_set_size=10000),
            _config_for("core", 1, seed),
            profile,
            clients_per_partition=clients,
        )
        if progress is not None:
            progress(
                f"contention={label} single-node reference: "
                f"{reference.throughput:,.0f} txn/s"
            )
        for mp_fraction in mp_fractions:
            reports: Dict[str, RunReport] = {}
            for engine in engines:
                workload = Microbenchmark(
                    hot_set_size=hot_set_size,
                    cold_set_size=10000,
                    mp_fraction=mp_fraction,
                )
                reports[engine] = run_engine(
                    engine, workload, _config_for(engine, partitions, seed),
                    profile, clients_per_partition=clients,
                )
                if progress is not None:
                    progress(
                        f"contention={label} mp={mp_fraction:.0%} "
                        f"{engine}: {reports[engine].throughput:,.0f} txn/s"
                    )
            row = [label, hot_set_size, round(mp_fraction * 100, 1)]
            row += [round(reports[engine].throughput, 1) for engine in engines]
            row.append(round(reference.throughput, 1))
            if "core" in engines and "star" in engines:
                calvin = reports["core"].throughput
                row.append(
                    round(reports["star"].throughput / calvin, 2) if calvin else 0.0
                )
            result.add_row(*row)

    result.notes = (
        "star should beat core at low mp% and degrade toward "
        "single_node_tps as mp% -> 100"
    )
    return result


def summarize(result: ExperimentResult) -> str:
    """One-line verdict over a shoot-out table (used by tests and CLI)."""
    verdicts = []
    for row in result.as_dicts():
        if "star_tps" not in row or "core_tps" not in row:
            return "n/a (need both core and star columns)"
        ratio = row["star_tps"] / row["core_tps"] if row["core_tps"] else 0.0
        verdicts.append(
            f"{row['contention']}/mp={row['mp_%']}%: star/calvin={ratio:.2f}"
        )
    return "; ".join(verdicts)


__all__ = [
    "DEFAULT_CONTENTION",
    "DEFAULT_MP_FRACTIONS",
    "run",
    "summarize",
]

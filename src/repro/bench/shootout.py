"""Three-system shoot-out: Calvin core vs 2PL+2PC baseline vs STAR.

One saturated measurement window per (contention, multipartition-%)
cell per engine, all on the paper's microbenchmark, all through the
:mod:`repro.engines` seam — so every system sees the same workload
generator, cost model, network and simulator.

The sweep is built to expose the phase-switching trade STAR makes:

* at **low multipartition fractions** STAR matches Calvin on the
  single-partition stream and skips Calvin's per-participant
  multipartition overhead (remote-read fan-out + wait) by running the
  few multipartition transactions on the master's full-replica view —
  it should **beat** Calvin;
* at **high multipartition fractions** everything funnels through the
  one master node, so STAR's throughput should **degrade toward the
  single-node reference** (a 1-partition core run of the same
  per-partition workload) while Calvin keeps scaling across partitions.

The single-node reference column makes that ceiling visible in the
same table.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.bench.harness import SATURATION_CLIENTS, ScaleProfile, run_engine
from repro.bench.parallel import Cell, run_cells
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.workloads.microbenchmark import Microbenchmark

# (label, per-partition hot set size): low contention first. The paper's
# contention index is 1/hot_set_size (Section 6.3).
DEFAULT_CONTENTION: Tuple[Tuple[str, int], ...] = (
    ("low", 10000),
    ("high", 100),
)
DEFAULT_MP_FRACTIONS: Tuple[float, ...] = (0.0, 0.05, 0.1, 0.3, 0.5, 1.0)


def _config_for(engine: str, partitions: int, seed: int) -> ClusterConfig:
    return ClusterConfig(
        num_partitions=partitions,
        num_replicas=1,
        seed=seed,
        engine=engine,
    )


def _shootout_cell(
    engine: str,
    hot_set_size: int,
    mp_fraction: Optional[float],
    partitions: int,
    seed: int,
    scale: str,
    clients: int,
) -> float:
    """One saturated window; ``mp_fraction=None`` is the single-node
    reference (the workload's default multipartition draw on one
    partition collapses to single-partition there)."""
    profile = ScaleProfile.get(scale)
    if mp_fraction is None:
        workload = Microbenchmark(hot_set_size=hot_set_size, cold_set_size=10000)
    else:
        workload = Microbenchmark(
            hot_set_size=hot_set_size,
            cold_set_size=10000,
            mp_fraction=mp_fraction,
        )
    report = run_engine(
        engine,
        workload,
        _config_for(engine, partitions, seed),
        profile,
        clients_per_partition=clients,
    )
    return report.throughput


def run(
    scale: str = "smoke",
    seed: int = 2012,
    partitions: int = 4,
    engines: Sequence[str] = ("core", "baseline", "star"),
    mp_fractions: Sequence[float] = DEFAULT_MP_FRACTIONS,
    contention: Sequence[Tuple[str, int]] = DEFAULT_CONTENTION,
    progress=None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Sweep contention x multipartition-% across ``engines``.

    Returns an :class:`ExperimentResult` with one throughput column per
    engine plus the single-node reference; ``progress`` (if given) is
    called with a one-line string after every cell, for live CLI output
    (in deterministic cell order, even with ``jobs > 1``).
    """
    if partitions < 2:
        raise ConfigError("the shoot-out needs >= 2 partitions")
    unknown = [e for e in engines if e not in ("core", "baseline", "star")]
    if unknown:
        raise ConfigError(f"unknown engine(s) in shoot-out: {unknown}")
    ScaleProfile.get(scale)  # validate before any cell runs
    # The phase-switch trade only shows at depth: under-saturated clients
    # turn STAR's multipartition batching latency into lost throughput.
    # Scale therefore controls window lengths only, never client count.
    clients = SATURATION_CLIENTS

    headers = ["contention", "hot_set", "mp_%"]
    headers += [f"{engine}_tps" for engine in engines]
    headers.append("single_node_tps")
    if "core" in engines and "star" in engines:
        headers.append("star/calvin")
    result = ExperimentResult(
        experiment="engine-shootout",
        title=(
            f"{' vs '.join(engines)}, {partitions} partitions, "
            f"{scale} scale, seed {seed}"
        ),
        headers=headers,
    )

    # One flat cell list: per contention row, the single-node ceiling (the
    # same per-partition workload on one partition — multipartition draws
    # collapse to single-partition there, so one run covers every mp point
    # of that row) plus one cell per (mp fraction, engine). Every cell
    # builds its own cluster from the seed, so the sweep fans out freely.
    cells = []
    for label, hot_set_size in contention:
        cells.append(Cell(
            fn=_shootout_cell,
            args=("core", hot_set_size, None, 1, seed, scale, clients),
            label=f"contention={label} single-node reference",
        ))
        for mp_fraction in mp_fractions:
            for engine in engines:
                cells.append(Cell(
                    fn=_shootout_cell,
                    args=(engine, hot_set_size, mp_fraction, partitions,
                          seed, scale, clients),
                    label=f"contention={label} mp={mp_fraction:.0%} {engine}",
                ))
    rates = run_cells(cells, jobs=jobs)
    if progress is not None:
        for cell, rate in zip(cells, rates):
            progress(f"{cell.label}: {rate:,.0f} txn/s")

    cursor = 0
    for label, hot_set_size in contention:
        reference = rates[cursor]
        cursor += 1
        for mp_fraction in mp_fractions:
            throughputs = dict(zip(engines, rates[cursor:cursor + len(engines)]))
            cursor += len(engines)
            row = [label, hot_set_size, round(mp_fraction * 100, 1)]
            row += [round(throughputs[engine], 1) for engine in engines]
            row.append(round(reference, 1))
            if "core" in engines and "star" in engines:
                calvin = throughputs["core"]
                row.append(
                    round(throughputs["star"] / calvin, 2) if calvin else 0.0
                )
            result.add_row(*row)

    result.notes = (
        "star should beat core at low mp% and degrade toward "
        "single_node_tps as mp% -> 100"
    )
    return result


def summarize(result: ExperimentResult) -> str:
    """One-line verdict over a shoot-out table (used by tests and CLI)."""
    verdicts = []
    for row in result.as_dicts():
        if "star_tps" not in row or "core_tps" not in row:
            return "n/a (need both core and star columns)"
        ratio = row["star_tps"] / row["core_tps"] if row["core_tps"] else 0.0
        verdicts.append(
            f"{row['contention']}/mp={row['mp_%']}%: star/calvin={ratio:.2f}"
        )
    return "; ".join(verdicts)


__all__ = [
    "DEFAULT_CONTENTION",
    "DEFAULT_MP_FRACTIONS",
    "run",
    "summarize",
]

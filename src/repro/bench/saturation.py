"""Saturation sweep: ``repro bench saturation``.

Drives a Calvin cluster with *open-loop* clients at a ladder of offered
loads (fractions of the configured admission capacity) and reports the
throughput-vs-latency knee curve: committed throughput climbs with
offered load until the per-epoch admission budget saturates, then
plateaus while p99 latency and the intake queue blow up — the half of
the paper's methodology that closed-loop clients cannot produce.

Each rung of the ladder builds a *fresh* cluster from the same seed, so
the whole sweep is deterministic: the same invocation reproduces the
same table bit-for-bit, and committed throughput is monotone in offered
load up to the plateau.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.bench.harness import ScaleProfile
from repro.bench.parallel import sweep
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.core.cluster import CalvinCluster
from repro.core.traffic import ClientProfile
from repro.errors import ConfigError
from repro.workloads.microbenchmark import Microbenchmark

# Admission budget per sequencing epoch. With the default 10 ms epoch
# this caps intake at 2,000 txn/s per node — far below what the
# execution layer can absorb, so the sweep measures the admission
# front-end (the knee position is exact), not scheduler contention.
EPOCH_BUDGET = 20

# Offered load as fractions of aggregate admission capacity.
_FRACTIONS: Dict[str, Tuple[float, ...]] = {
    "smoke": (0.5, 1.0, 1.75),
    "quick": (0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0),
    "full": (0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0, 3.0),
}

_CLIENTS_PER_PARTITION = 8


def capacity_per_node(config: ClusterConfig) -> float:
    """Admission capacity of one input node, txns/sec."""
    return (config.admission_epoch_budget or 0) / config.epoch_duration


def _rung(
    fraction: float,
    scale: str,
    seed: int,
    policy: str,
    arrival: str,
    partitions: int,
) -> Tuple:
    """One offered-load rung: fresh cluster, one measured window."""
    profile = ScaleProfile.get(scale)
    config = ClusterConfig(
        num_partitions=partitions,
        seed=seed,
        admission_policy=policy,
        admission_epoch_budget=EPOCH_BUDGET,
        admission_queue_capacity=2 * EPOCH_BUDGET,
    )
    node_capacity = capacity_per_node(config)
    rate_per_client = fraction * node_capacity / _CLIENTS_PER_PARTITION
    workload = Microbenchmark(
        mp_fraction=0.1, hot_set_size=10_000, cold_set_size=10_000
    )
    cluster = CalvinCluster(config, workload=workload, record_history=False)
    cluster.load_workload_data()
    cluster.add_clients(
        ClientProfile(
            per_partition=_CLIENTS_PER_PARTITION,
            mode="open",
            arrival=arrival,
            rate=rate_per_client,
        )
    )
    cluster.start()
    for client in cluster.clients:
        client.start()
    sim = cluster.sim
    sim.run(until=sim.now + profile.warmup)
    before = cluster.admission_stats()
    cluster.metrics.begin_window(sim.now)
    window_start = sim.now
    sim.run(until=sim.now + profile.duration)
    duration = sim.now - window_start
    after = cluster.admission_stats()
    report = cluster.metrics.report(sim.now)

    offered_rate = (after["offered"] - before["offered"]) / duration
    admitted_rate = (after["admitted"] - before["admitted"]) / duration
    rejected = sum(
        after[key] - before[key]
        for key in ("shed", "dropped", "backpressured")
    )
    latency = cluster.metrics.latency
    return (
        fraction,
        offered_rate,
        admitted_rate,
        report.throughput,
        latency.percentile(50) * 1e3,
        latency.percentile(95) * 1e3,
        latency.percentile(99) * 1e3,
        after["peak_queue_depth"],
        rejected,
    )


def run(
    scale: str = "quick",
    seed: int = 2012,
    policy: str = "backpressure",
    arrival: str = "poisson",
    partitions: int = 2,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Sweep offered load across the admission knee; return the curve."""
    ScaleProfile.get(scale)  # validate before any rung runs
    try:
        fractions = _FRACTIONS[scale]
    except KeyError:  # pragma: no cover - ScaleProfile.get raised first
        raise ConfigError(f"unknown scale {scale!r}") from None

    result = ExperimentResult(
        experiment="saturation",
        title=(
            f"open-loop knee curve — {arrival} arrivals, "
            f"policy={policy}, {partitions} partitions"
        ),
        headers=(
            "offered_frac",
            "offered/s",
            "admitted/s",
            "committed/s",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "queue_peak",
            "rejected",
        ),
    )

    capacity = capacity_per_node(
        ClusterConfig(
            num_partitions=partitions,
            seed=seed,
            admission_policy=policy,
            admission_epoch_budget=EPOCH_BUDGET,
            admission_queue_capacity=2 * EPOCH_BUDGET,
        )
    ) * partitions
    params = [
        (fraction, scale, seed, policy, arrival, partitions)
        for fraction in fractions
    ]
    for row in sweep(_rung, params, jobs=jobs):
        result.add_row(*row)

    result.notes = (
        f"admission capacity {capacity:,.0f} txn/s "
        f"({EPOCH_BUDGET}/epoch x {partitions} nodes); committed throughput "
        "plateaus there while p99 and the intake queue grow — the knee"
    )
    return result

"""Wall-clock performance benchmark: ``repro bench perf``.

Unlike the experiments (which measure the *modelled* system's virtual
throughput), this harness measures the *simulator's* own speed: events
dispatched and transactions committed per wall-clock second on three
canned configurations. The output is written as ``BENCH_perf.json`` and
checked in; CI re-runs the quick profile and fails on a large
regression, so hot-path slowdowns are caught at review time.

Wall-clock numbers are machine-dependent and noisy, so every run also
records a *calibration* score — a fixed pure-Python dict workload timed
on the same interpreter immediately before and after the benchmark.
Comparisons divide events/sec by the calibration score, which cancels
most of the machine-speed and background-load variance between the
checked-in baseline and the CI runner.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.config import ClusterConfig
from repro.core.cluster import CalvinCluster
from repro.core.traffic import ClientProfile
from repro.workloads.base import Workload
from repro.workloads.microbenchmark import Microbenchmark
from repro.workloads.tpcc import TpccWorkload

SCHEMA_VERSION = 1

# A config regresses when its calibration-normalised events/sec falls
# more than this fraction below the checked-in baseline.
DEFAULT_THRESHOLD = 0.30

_CALIBRATION_OPS = 300_000


@dataclass(frozen=True)
class PerfConfig:
    """One canned benchmark configuration."""

    name: str
    description: str
    build: Callable[[], Tuple[Workload, ClusterConfig]] = field(repr=False)
    clients_per_partition: int = 100
    warmup: float = 0.05
    duration: float = 1.0       # virtual seconds measured (full mode)
    quick_duration: float = 0.25


def canned_configs() -> Tuple[PerfConfig, ...]:
    """The benchmark matrix. Fixed seeds: virtual results are exact."""
    return (
        PerfConfig(
            name="micro-low",
            description="microbenchmark, low contention, single-partition txns",
            build=lambda: (
                Microbenchmark(mp_fraction=0.0, hot_set_size=10000, cold_set_size=10000),
                ClusterConfig(num_partitions=2, seed=2012),
            ),
        ),
        PerfConfig(
            name="micro-high",
            description="microbenchmark, high contention, 50% multipartition",
            build=lambda: (
                Microbenchmark(mp_fraction=0.5, hot_set_size=10, cold_set_size=10000),
                ClusterConfig(num_partitions=2, seed=2012),
            ),
        ),
        PerfConfig(
            name="tpcc-4p",
            description="TPC-C New Order only, 4 partitions, 10% remote",
            build=lambda: (
                TpccWorkload(mix={"new_order": 1.0}, remote_fraction=0.10),
                ClusterConfig(num_partitions=4, seed=2012),
            ),
            clients_per_partition=50,
            duration=0.5,
            quick_duration=0.15,
        ),
    )


def calibration_ops_per_sec(n: int = _CALIBRATION_OPS) -> float:
    """Machine-speed yardstick: ops/sec of a fixed dict/tuple workload.

    Deliberately shaped like the simulator's hot loops (tuple keys,
    dict stores and lookups) so its sensitivity to interpreter and
    machine speed tracks the benchmark's.
    """
    store: Dict[Tuple[str, int], int] = {}
    start = time.perf_counter()
    for index in range(n):
        key = ("cal", index & 1023)
        store[key] = store.get(key, 0) + 1
    checksum = 0
    for value in store.values():
        checksum += value
    elapsed = time.perf_counter() - start
    assert checksum == n
    return n / elapsed


def run_config(config: PerfConfig, quick: bool = False) -> Dict[str, Any]:
    """Run one canned config; return its measurement record."""
    workload, cluster_config = config.build()
    cluster = CalvinCluster(cluster_config, workload=workload, record_history=False)
    cluster.load_workload_data()
    cluster.add_clients(ClientProfile(per_partition=config.clients_per_partition))
    cluster.start()
    for client in cluster.clients:
        client.start()
    sim = cluster.sim
    sim.run(until=sim.now + config.warmup)
    duration = config.quick_duration if quick else config.duration
    events_before = sim.events_executed
    committed_before = cluster.metrics.committed
    wall_start = time.perf_counter()
    sim.run(until=sim.now + duration)
    wall = time.perf_counter() - wall_start
    events = sim.events_executed - events_before
    committed = cluster.metrics.committed - committed_before
    return {
        "description": config.description,
        "virtual_duration": duration,
        "wall_seconds": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "committed": committed,
        "txns_per_sec": committed / wall if wall > 0 else 0.0,
    }


def _run_config_by_name(name: str, quick: bool) -> Dict[str, Any]:
    """Picklable worker: run one canned config looked up by name."""
    for config in canned_configs():
        if config.name == name:
            return run_config(config, quick=quick)
    raise KeyError(f"no canned perf config named {name!r}")


def run_perf(quick: bool = False, jobs: Optional[int] = None) -> Dict[str, Any]:
    """Run the full matrix; return the ``BENCH_perf.json`` payload.

    ``jobs > 1`` measures each config in its own process (fresh
    interpreter state, no cross-config heap pollution). Virtual results
    are identical at any job count; wall-clock numbers contend for cores
    when configs overlap, so regression *checks* should stay serial —
    the parallel mode is for quick comparative sweeps.
    """
    from repro.accel import accel_active
    from repro.bench.parallel import sweep

    # Calibrate before AND after: a background-load spike during the
    # window shows up as a dip in one of the samples; taking the max
    # records the machine's demonstrated speed.
    calibration_before = calibration_ops_per_sec()
    names = [config.name for config in canned_configs()]
    records = sweep(_run_config_by_name, [(name, quick) for name in names], jobs=jobs)
    configs = dict(zip(names, records))
    calibration_after = calibration_ops_per_sec()
    return {
        "schema": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "python": platform.python_version(),
        "accel": accel_active(),
        "calibration_ops_per_sec": max(calibration_before, calibration_after),
        "configs": configs,
    }


def append_history(
    payload: Dict[str, Any], path: str = "BENCH_history.jsonl"
) -> str:
    """Append a timestamped summary row of ``payload`` to the history log.

    ``BENCH_perf.json`` stays "latest"; the JSONL history accumulates
    one row per run so perf trends are greppable/plottable across PRs.
    Returns the path written.
    """
    import json

    # Wall-clock timestamp is the point of a history log; this metadata
    # write happens outside any simulated run (datetime.now is also not
    # a sanitizer trip wire, so --sanitize runs still record history).
    from datetime import datetime, timezone

    row = {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),  # det: allow[DET002] run metadata, written outside any simulated run
        "schema": payload["schema"],
        "mode": payload["mode"],
        "python": payload["python"],
        "accel": payload.get("accel", False),
        "calibration_ops_per_sec": payload["calibration_ops_per_sec"],
        "configs": {
            name: {
                "events_per_sec": record["events_per_sec"],
                "txns_per_sec": record["txns_per_sec"],
            }
            for name, record in payload["configs"].items()
        },
    }
    with open(path, "a") as handle:
        handle.write(json.dumps(row, sort_keys=True) + "\n")
    return path


def profile_config(
    name: str,
    quick: bool = False,
    out: Optional[str] = None,
    top_n: int = 25,
) -> Tuple[str, Optional[str]]:
    """cProfile one canned config's measured window; return a top-N table.

    Profiles only the measurement window (warmup and cluster build
    excluded), sorted by cumulative time — the starting point for any
    hot-path hunt (docs/performance.md documents the current tpcc-4p
    profile). When ``out`` is given the raw stats are dumped there for
    ``snakeviz``/``pstats`` digging. Returns ``(table_text, out)``.
    """
    import cProfile
    import io
    import pstats

    target = None
    for config in canned_configs():
        if config.name == name:
            target = config
    if target is None:
        raise KeyError(f"no canned perf config named {name!r}")
    workload, cluster_config = target.build()
    cluster = CalvinCluster(cluster_config, workload=workload, record_history=False)
    cluster.load_workload_data()
    cluster.add_clients(ClientProfile(per_partition=target.clients_per_partition))
    cluster.start()
    for client in cluster.clients:
        client.start()
    sim = cluster.sim
    sim.run(until=sim.now + target.warmup)
    duration = target.quick_duration if quick else target.duration
    profiler = cProfile.Profile()
    profiler.enable()
    sim.run(until=sim.now + duration)
    profiler.disable()
    if out:
        profiler.dump_stats(out)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top_n)
    return buffer.getvalue(), out


@dataclass
class PerfComparison:
    """Verdict of a baseline-vs-current comparison."""

    ok: bool
    lines: List[str]

    def __str__(self) -> str:  # pragma: no cover - presentation
        return "\n".join(self.lines)


def compare(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> PerfComparison:
    """Compare two benchmark payloads, calibration-normalised.

    A config fails when its normalised events/sec drops more than
    ``threshold`` below the baseline's. Configs missing from either
    side are reported but don't fail the comparison (the matrix may
    grow between PRs).
    """
    if baseline.get("schema") != current.get("schema"):
        return PerfComparison(
            ok=False,
            lines=[
                f"schema mismatch: baseline {baseline.get('schema')} "
                f"vs current {current.get('schema')} — regenerate the baseline"
            ],
        )
    base_cal = float(baseline.get("calibration_ops_per_sec") or 0.0)
    cur_cal = float(current.get("calibration_ops_per_sec") or 0.0)
    lines = [
        f"calibration: baseline {base_cal:,.0f} ops/s, current {cur_cal:,.0f} ops/s"
    ]
    ok = True
    base_configs = baseline.get("configs", {})
    cur_configs = current.get("configs", {})
    for name in sorted(set(base_configs) | set(cur_configs)):
        if name not in base_configs:
            lines.append(f"  {name}: new config (no baseline) — skipped")
            continue
        if name not in cur_configs:
            lines.append(f"  {name}: missing from current run — skipped")
            continue
        base_eps = float(base_configs[name]["events_per_sec"])
        cur_eps = float(cur_configs[name]["events_per_sec"])
        if base_cal > 0 and cur_cal > 0:
            ratio = (cur_eps / cur_cal) / (base_eps / base_cal)
            basis = "normalised"
        else:
            ratio = cur_eps / base_eps if base_eps > 0 else 1.0
            basis = "raw"
        verdict = "ok"
        if ratio < 1.0 - threshold:
            verdict = "REGRESSION"
            ok = False
        lines.append(
            f"  {name}: {cur_eps:,.0f} ev/s vs baseline {base_eps:,.0f} "
            f"({basis} ratio {ratio:.2f}) {verdict}"
        )
    lines.append("PASS" if ok else f"FAIL: regression beyond {threshold:.0%} threshold")
    return PerfComparison(ok=ok, lines=lines)

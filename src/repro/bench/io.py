"""Persistence for experiment results: JSON and CSV.

The benchmark CLI writes every experiment's table to disk so runs can
be archived, diffed and re-plotted without re-simulating.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.bench.reporting import ExperimentResult
from repro.errors import ConfigError

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def result_to_dict(result: ExperimentResult) -> dict:
    """A plain-data representation of an experiment result."""
    return {
        "format_version": _FORMAT_VERSION,
        "experiment": result.experiment,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "notes": result.notes,
    }


def result_from_dict(payload: dict) -> ExperimentResult:
    """Inverse of :func:`result_to_dict` (validates the envelope)."""
    try:
        if payload["format_version"] != _FORMAT_VERSION:
            raise ConfigError(
                f"unsupported result format version {payload['format_version']}"
            )
        result = ExperimentResult(
            experiment=payload["experiment"],
            title=payload["title"],
            headers=tuple(payload["headers"]),
            notes=payload.get("notes", ""),
        )
        for row in payload["rows"]:
            result.add_row(*row)
    except (KeyError, TypeError) as exc:
        raise ConfigError(f"malformed experiment result payload: {exc}") from exc
    return result


def save_json(result: ExperimentResult, path: PathLike) -> Path:
    """Write a result to ``path`` as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(result_to_dict(result), handle, indent=2, default=str)
        handle.write("\n")
    return path


def load_json(path: PathLike) -> ExperimentResult:
    """Read a result previously written by :func:`save_json`."""
    with open(path) as handle:
        return result_from_dict(json.load(handle))


def save_csv(result: ExperimentResult, path: PathLike) -> Path:
    """Write a result's table to ``path`` as CSV; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(result.headers)
        writer.writerows(result.rows)
    return path

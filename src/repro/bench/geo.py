"""Geo experiments: ``repro bench geo``.

Two deterministic curves over the geo topology subsystem:

1. **WAN contention collapse** — a chain of datacenters replicating the
   input through Paxos while multipartition commits cross the same
   links; as per-link bandwidth shrinks, the shared channels congest,
   queueing delay grows, and commit latency collapses from
   propagation-bound to bandwidth-bound.
2. **Replica-local reads vs freshness** — read-only clients spread
   across datacenters read from their closest replica; throughput
   scales with replica count while the measured staleness bound shows
   what that locality costs in freshness.

Every rung builds a fresh cluster from the same seed, so the whole
sweep is deterministic — ``digest()`` over the rounded rows is a
regression oracle (same seed ⇒ same digest).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from repro.bench.harness import ScaleProfile
from repro.bench.parallel import sweep
from repro.bench.reporting import ExperimentResult
from repro.config import ClusterConfig
from repro.core.cluster import CalvinCluster
from repro.core.traffic import ClientProfile
from repro.errors import ConfigError
from repro.geo.readonly import add_read_clients
from repro.workloads.microbenchmark import Microbenchmark

# Infinite-bandwidth rung: the propagation-only baseline.
_UNCONSTRAINED = float("inf")

# Per-link WAN bandwidth ladder, bytes/second. The low rungs are where
# per-hop transfer time rivals propagation latency for this workload's
# KB-scale batches — that is where the collapse lives.
_BANDWIDTHS: Dict[str, Tuple[float, ...]] = {
    "smoke": (_UNCONSTRAINED, 1.25e5),
    "quick": (_UNCONSTRAINED, 1.25e6, 2.5e5, 1.25e5),
    "full": (_UNCONSTRAINED, 1.25e6, 5e5, 2.5e5, 1.25e5, 6.25e4),
}

_REPLICA_LADDER: Dict[str, Tuple[int, ...]] = {
    "smoke": (2, 3),
    "quick": (2, 3, 4),
    "full": (2, 3, 4, 5),
}

_WRITE_CLIENTS_PER_PARTITION = 4
_READ_CLIENTS_TOTAL = 12


def _mbps(bandwidth: float) -> float:
    """Bytes/second -> megabits/second (the table unit)."""
    return bandwidth * 8 / 1e6


def _max_link_utilization(cluster: CalvinCluster) -> float:
    network = cluster.network
    now = cluster.sim.now
    if cluster.geo is None or now <= 0:
        return 0.0
    return max(
        (
            network._channel_stat((link.src, link.dst), "busy_time") / now
            for link in cluster.geo.links()
        ),
        default=0.0,
    )


def _collapse_rung(
    bandwidth: float,
    scale: str,
    seed: int,
    topology: str,
    replicas: int,
    partitions: int,
) -> Tuple:
    """One bandwidth rung of the contention-collapse ladder."""
    profile = ScaleProfile.get(scale)
    workload = Microbenchmark(
        mp_fraction=0.3, hot_set_size=10_000, cold_set_size=10_000
    )
    config = ClusterConfig(
        num_partitions=partitions,
        num_replicas=replicas,
        replication_mode="paxos",
        topology=topology,
        wan_latency=0.01,
        wan_bandwidth=bandwidth,
        seed=seed,
    )
    cluster = CalvinCluster(config, workload=workload, record_history=False)
    cluster.load_workload_data()
    cluster.add_clients(ClientProfile(per_partition=3))
    report = cluster.run(profile.duration, warmup=profile.warmup)
    latency = cluster.metrics.latency
    return (
        _mbps(bandwidth),
        report.throughput,
        latency.percentile(50) * 1e3,
        latency.percentile(99) * 1e3,
        _max_link_utilization(cluster),
        cluster.network.wan_bytes / 1e6,
    )


def contention_collapse(
    scale: str = "quick",
    seed: int = 2012,
    topology: str = "chain",
    replicas: int = 3,
    partitions: int = 2,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Commit latency vs per-link WAN bandwidth on a routed topology."""
    ScaleProfile.get(scale)  # validate before any rung runs
    try:
        bandwidths = _BANDWIDTHS[scale]
    except KeyError:  # pragma: no cover - ScaleProfile.get raised first
        raise ConfigError(f"unknown scale {scale!r}") from None

    result = ExperimentResult(
        experiment="geo-contention",
        title=(
            f"WAN contention collapse — {topology} of {replicas} DCs, "
            f"{partitions} partitions, paxos input replication"
        ),
        headers=(
            "bandwidth_mbps",
            "committed/s",
            "p50_ms",
            "p99_ms",
            "max_link_util",
            "wan_mb",
        ),
    )
    params = [
        (bandwidth, scale, seed, topology, replicas, partitions)
        for bandwidth in bandwidths
    ]
    for row in sweep(_collapse_rung, params, jobs=jobs):
        result.add_row(*row)
    result.notes = (
        "as per-link bandwidth shrinks the Paxos batches and writesets "
        "congest the chain: latency flips from propagation-bound to "
        "bandwidth-bound while the bottleneck link's utilization "
        "approaches 1.0"
    )
    return result


def read_scaling(
    scale: str = "quick",
    seed: int = 2012,
    topology: str = "ring",
    partitions: int = 2,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Replica-local read throughput and staleness vs replica count."""
    profile = ScaleProfile.get(scale)
    try:
        ladder = _REPLICA_LADDER[scale]
    except KeyError:  # pragma: no cover - ScaleProfile.get raised first
        raise ConfigError(f"unknown scale {scale!r}") from None

    result = ExperimentResult(
        experiment="geo-reads",
        title=(
            f"replica-local reads — {topology} topology, {partitions} "
            f"partitions, {_READ_CLIENTS_TOTAL} read clients spread across DCs"
        ),
        headers=(
            "replicas",
            "mode",
            "ro_qps",
            "ro_p50_ms",
            "staleness_p50",
            "staleness_p99",
            "writes/s",
            "remote_hit_frac",
        ),
    )
    params = [
        (seed, topology, partitions, replicas, mode, profile)
        for replicas in ladder
        for mode in ("input", "local")
    ]
    for row in sweep(_read_rung, params, jobs=jobs):
        result.add_row(*row)
    result.notes = (
        "mode=input sends every read across the WAN to replica 0; "
        "mode=local reads the nearest hosting replica — throughput "
        "multiplies and latency drops to LAN scale, at the price of the "
        "staleness column (epochs the serving replica's watermark lags "
        "the input site's clock)"
    )
    return result


def _read_rung(
    seed: int,
    topology: str,
    partitions: int,
    replicas: int,
    mode: str,
    profile: ScaleProfile,
) -> Tuple:
    workload = Microbenchmark(
        mp_fraction=0.1, hot_set_size=1_000, cold_set_size=1_000
    )
    config = ClusterConfig(
        num_partitions=partitions,
        num_replicas=replicas,
        replication_mode="paxos",
        topology=topology,
        wan_latency=0.01,
        seed=seed,
    )
    cluster = CalvinCluster(config, workload=workload, record_history=False)
    cluster.load_workload_data()
    cluster.add_clients(ClientProfile(per_partition=_WRITE_CLIENTS_PER_PARTITION))
    readers = add_read_clients(
        cluster,
        _READ_CLIENTS_TOTAL,
        max_txns=None,
        replica_local=(mode == "local"),
    )
    cluster.start()
    for client in cluster.clients:
        client.start()
    sim = cluster.sim
    sim.run(until=sim.now + profile.warmup)
    # Fresh measurement window for the read-side instruments.
    latency = cluster.metrics_registry.histogram("geo.ro.latency_ms")
    staleness = cluster.metrics_registry.histogram("geo.ro.staleness_epochs")
    latency.reset()
    staleness.reset()
    reads_before = sum(client.completed for client in readers)
    remote_before = sum(client.local_replica_hits for client in readers)
    cluster.metrics.begin_window(sim.now)
    window_start = sim.now
    sim.run(until=sim.now + profile.duration)
    duration = sim.now - window_start
    report = cluster.metrics.report(sim.now)
    reads = sum(client.completed for client in readers) - reads_before
    remote = sum(client.local_replica_hits for client in readers) - remote_before
    return (
        replicas,
        mode,
        reads / duration,
        latency.percentile(50),
        staleness.percentile(50),
        staleness.percentile(99),
        report.throughput,
        (remote / reads) if reads else 0.0,
    )


def digest(*results: ExperimentResult) -> str:
    """sha256 over the rounded rows: the determinism oracle."""
    hasher = hashlib.sha256()
    for result in results:
        hasher.update(result.experiment.encode())
        for row in result.rows:
            rounded = tuple(
                round(value, 6) if isinstance(value, float) else value
                for value in row
            )
            hasher.update(repr(rounded).encode())
    return hasher.hexdigest()


def run(
    scale: str = "quick",
    seed: int = 2012,
    topology: str = "chain",
    replicas: int = 3,
    partitions: int = 2,
    jobs: Optional[int] = None,
) -> Tuple[ExperimentResult, ExperimentResult, str]:
    """Both geo curves plus their combined determinism digest."""
    collapse = contention_collapse(
        scale, seed, topology=topology, replicas=replicas, partitions=partitions,
        jobs=jobs,
    )
    reads = read_scaling(scale, seed, partitions=partitions, jobs=jobs)
    return collapse, reads, digest(collapse, reads)

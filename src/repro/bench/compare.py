"""Compare two saved experiment results (regression tooling).

``python -m repro compare old.json new.json`` prints per-cell relative
deltas and flags regressions beyond a threshold — the workflow for
checking that a change to the engine did not silently shift a paper
figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.bench.io import load_json
from repro.bench.reporting import ExperimentResult
from repro.errors import ConfigError


@dataclass
class CellDelta:
    """One numeric cell's change between two runs."""

    row_label: str
    column: str
    old: float
    new: float

    @property
    def relative(self) -> float:
        if self.old == 0:
            return 0.0 if self.new == 0 else float("inf")
        return (self.new - self.old) / abs(self.old)


@dataclass
class Comparison:
    """All deltas between two results plus a regression verdict."""

    experiment: str
    deltas: List[CellDelta] = field(default_factory=list)
    threshold: float = 0.10

    @property
    def regressions(self) -> List[CellDelta]:
        return [d for d in self.deltas if abs(d.relative) > self.threshold]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def __str__(self) -> str:
        lines = [f"== compare: {self.experiment} (threshold ±{self.threshold:.0%}) =="]
        for delta in self.deltas:
            flag = "  REGRESSION" if abs(delta.relative) > self.threshold else ""
            lines.append(
                f"{delta.row_label:>12}  {delta.column:<24} "
                f"{delta.old:>12,.1f} -> {delta.new:>12,.1f} "
                f"({delta.relative:+.1%}){flag}"
            )
        lines.append("verdict: " + ("OK" if self.ok else
                                     f"{len(self.regressions)} cell(s) moved"))
        return "\n".join(lines)


def compare_results(
    old: ExperimentResult,
    new: ExperimentResult,
    threshold: float = 0.10,
) -> Comparison:
    """Cell-by-cell numeric comparison of two runs of one experiment."""
    if list(old.headers) != list(new.headers):
        raise ConfigError(
            f"results have different columns: {old.headers} vs {new.headers}"
        )
    if len(old.rows) != len(new.rows):
        raise ConfigError(
            f"results have different row counts: {len(old.rows)} vs {len(new.rows)}"
        )
    comparison = Comparison(experiment=new.experiment, threshold=threshold)
    headers = list(old.headers)
    for old_row, new_row in zip(old.rows, new.rows):
        label = str(old_row[0])
        for index, header in enumerate(headers[1:], start=1):
            old_value, new_value = old_row[index], new_row[index]
            if isinstance(old_value, bool) or not isinstance(old_value, (int, float)):
                continue
            if not isinstance(new_value, (int, float)):
                continue
            comparison.deltas.append(
                CellDelta(label, header, float(old_value), float(new_value))
            )
    return comparison


def compare_files(old_path: str, new_path: str, threshold: float = 0.10) -> Comparison:
    """Load two archived JSON results and compare them."""
    return compare_results(load_json(old_path), load_json(new_path), threshold)

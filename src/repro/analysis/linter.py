"""``repro lint`` driver: file walking, waivers, baseline, rendering.

Workflow (see ``docs/static_analysis.md``):

1. ``repro lint src/repro`` scans every ``.py`` file under the given
   paths with the DET rule set (:mod:`repro.analysis.rules`) and runs
   the FPT footprint rules (:mod:`repro.analysis.footprint`) over every
   registered house procedure.
2. A finding on a line carrying ``# det: allow[DETnnn] reason`` or
   ``# det: allow[FPTnnn] reason`` (or directly below a comment line of
   that form) is *waived* — visible with ``--show-waived``, never
   failing. A waiver must name the rule and give a reason; a bare
   ``det: allow`` is ignored and reported so waivers cannot rot into
   unexplained suppressions.
3. Findings matching the committed baseline file (grandfathered debt,
   matched by ``(rule, path, stripped source line)`` so line-number
   churn does not invalidate entries) are *baselined*: reported but not
   failing. ``--write-baseline`` regenerates the file from the current
   active findings; the goal state is an empty baseline.
4. Anything left is *active* and makes the exit code 1.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.footprint_rules import FPT_RULES
from repro.analysis.rules import Finding, RULES, scan_source
from repro.errors import ConfigError

#: Default committed-baseline filename, looked up in the current
#: directory by the CLI when ``--baseline`` is not given.
DEFAULT_BASELINE = "DETERMINISM_BASELINE.json"

#: Every rule ``repro lint`` knows, across families. Waivers, the
#: baseline and ``--rules`` selection all validate against this.
ALL_RULES: Dict[str, str] = {**RULES, **FPT_RULES}

_WAIVER_RE = re.compile(
    r"#\s*det:\s*allow\[(?P<rules>(?:DET|FPT)\d{3}"
    r"(?:\s*,\s*(?:DET|FPT)\d{3})*)\]\s*(?P<reason>.*)"
)
_BARE_WAIVER_RE = re.compile(r"#\s*det:\s*allow(?!\[)")


@dataclass(frozen=True)
class Waiver:
    """One parsed ``# det: allow[...]`` comment."""

    path: str
    line: int          # line the waiver comment sits on
    applies_to: int    # line whose findings it silences
    rules: Tuple[str, ...]
    reason: str


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    errors: List[str] = field(default_factory=list)         # unparsable files
    invalid_waivers: List[str] = field(default_factory=list)
    unused_waivers: List[Waiver] = field(default_factory=list)
    baseline_path: Optional[str] = None
    baseline_unmatched: List[Dict] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def waived(self) -> List[Finding]:
        return [f for f in self.findings if f.waived]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def ok(self) -> bool:
        return not self.active and not self.errors

    # -- rendering ---------------------------------------------------------

    def render_text(self, show_waived: bool = False) -> str:
        lines: List[str] = []
        for finding in self.active:
            lines.append(
                f"{finding.anchor()}: {finding.rule} {finding.message}"
            )
        if show_waived:
            for finding in self.waived:
                lines.append(
                    f"{finding.anchor()}: {finding.rule} [waived: "
                    f"{finding.waiver_reason}] {finding.message}"
                )
            for finding in self.baselined:
                lines.append(
                    f"{finding.anchor()}: {finding.rule} [baselined] "
                    f"{finding.message}"
                )
        for message in self.errors:
            lines.append(f"error: {message}")
        for message in self.invalid_waivers:
            lines.append(f"warning: {message}")
        for waiver in self.unused_waivers:
            lines.append(
                f"warning: {waiver.path}:{waiver.line}: waiver for "
                f"{','.join(waiver.rules)} matched no finding (stale?)"
            )
        for entry in self.baseline_unmatched:
            lines.append(
                "warning: baseline entry matched no finding (fixed? remove "
                f"it): {entry.get('rule')} {entry.get('path')} "
                f"{entry.get('snippet', '')!r}"
            )
        summary = (
            f"{self.files_scanned} files scanned: "
            f"{len(self.active)} active finding(s), "
            f"{len(self.waived)} waived, {len(self.baselined)} baselined"
        )
        lines.append(summary if lines else f"clean — {summary}")
        return "\n".join(lines)

    def to_json(self) -> Dict:
        def encode(finding: Finding) -> Dict:
            return {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "snippet": finding.snippet,
                "waived": finding.waived,
                "waiver_reason": finding.waiver_reason,
                "baselined": finding.baselined,
            }

        return {
            "files_scanned": self.files_scanned,
            "ok": self.ok,
            "active": [encode(f) for f in self.active],
            "waived": [encode(f) for f in self.waived],
            "baselined": [encode(f) for f in self.baselined],
            "errors": list(self.errors),
            "invalid_waivers": list(self.invalid_waivers),
            "unused_waivers": [
                {
                    "path": w.path,
                    "line": w.line,
                    "rules": list(w.rules),
                    "reason": w.reason,
                }
                for w in self.unused_waivers
            ],
        }


# -- waiver parsing ---------------------------------------------------------


def parse_waivers(source: str, path: str) -> Tuple[List[Waiver], List[str]]:
    """Extract ``# det: allow[...]`` waivers from one file's source.

    A waiver on a code line applies to that line; a waiver that is the
    whole line (a standalone comment) applies to the next line. Returns
    ``(waivers, problems)`` where problems are malformed waivers (no
    rule list, or no reason) — those never silence anything.
    """
    waivers: List[Waiver] = []
    problems: List[str] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _WAIVER_RE.search(text)
        if match is None:
            if _BARE_WAIVER_RE.search(text):
                problems.append(
                    f"{path}:{lineno}: malformed waiver — use "
                    "'# det: allow[DETnnn] reason'"
                )
            continue
        reason = match.group("reason").strip()
        if not reason:
            problems.append(
                f"{path}:{lineno}: waiver without a reason is ignored — "
                "say why the usage is safe"
            )
            continue
        rules = tuple(
            part.strip() for part in match.group("rules").split(",")
        )
        unknown = [rule for rule in rules if rule not in ALL_RULES]
        if unknown:
            problems.append(
                f"{path}:{lineno}: waiver names unknown rule(s) "
                f"{','.join(unknown)}"
            )
            continue
        standalone = text.strip().startswith("#")
        applies_to = lineno + 1 if standalone else lineno
        waivers.append(Waiver(path, lineno, applies_to, rules, reason))
    return waivers, problems


def apply_waivers(
    findings: List[Finding], waivers: Sequence[Waiver]
) -> Tuple[List[Finding], List[Waiver]]:
    """Mark findings covered by a waiver; return unused waivers too."""
    used: Set[int] = set()
    out: List[Finding] = []
    for finding in findings:
        waived = None
        for index, waiver in enumerate(waivers):
            if finding.line == waiver.applies_to and finding.rule in waiver.rules:
                waived = waiver
                used.add(index)
                break
        out.append(
            finding.with_waiver(waived.reason) if waived is not None else finding
        )
    unused = [w for i, w in enumerate(waivers) if i not in used]
    return out, unused


# -- baseline ---------------------------------------------------------------


def load_baseline(path: str) -> List[Dict]:
    with open(path) as handle:
        data = json.load(handle)
    entries = data.get("findings", data) if isinstance(data, dict) else data
    if not isinstance(entries, list):
        raise ConfigError(f"baseline {path}: expected a list of entries")
    for entry in entries:
        if not isinstance(entry, dict) or "rule" not in entry or "path" not in entry:
            raise ConfigError(
                f"baseline {path}: each entry needs 'rule' and 'path' keys"
            )
    return entries


def baseline_key(entry: Dict) -> Tuple[str, str, str]:
    return (
        entry["rule"],
        entry["path"].replace("\\", "/"),
        entry.get("snippet", "").strip(),
    )


def apply_baseline(
    findings: List[Finding], entries: List[Dict]
) -> Tuple[List[Finding], List[Dict]]:
    """Mark findings present in the baseline; report stale entries."""
    remaining: Dict[Tuple[str, str, str], List[Dict]] = {}
    for entry in entries:
        remaining.setdefault(baseline_key(entry), []).append(entry)
    out: List[Finding] = []
    for finding in findings:
        if finding.waived:
            out.append(finding)
            continue
        key = (finding.rule, finding.path, finding.snippet.strip())
        bucket = remaining.get(key)
        if bucket:
            bucket.pop()
            if not bucket:
                del remaining[key]
            out.append(finding.with_baseline())
        else:
            out.append(finding)
    stale = [entry for bucket in remaining.values() for entry in bucket]
    return out, stale


def write_baseline(report: LintReport, path: str) -> str:
    """Snapshot the report's active findings as the new baseline."""
    entries = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "snippet": finding.snippet.strip(),
            "justification": "TODO: justify or fix",
        }
        for finding in report.active
    ]
    with open(path, "w") as handle:
        json.dump({"findings": entries}, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


# -- driver -----------------------------------------------------------------


def iter_python_files(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs
                    if d not in ("__pycache__", ".git", ".ruff_cache")
                )
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            raise ConfigError(f"lint path not found: {path}")
    return sorted(dict.fromkeys(out))


def lint_sources(
    sources: Dict[str, str],
    rules: Optional[Set[str]] = None,
    baseline_entries: Optional[List[Dict]] = None,
    extra_findings: Optional[Sequence[Finding]] = None,
) -> LintReport:
    """Lint in-memory ``{path: source}`` pairs (the testable core).

    ``extra_findings`` carries findings produced outside the per-file
    scan (the FPT footprint pass works per *procedure*, not per file);
    they are merged per path so waivers and the baseline apply to them
    exactly like to DET findings. Extra findings on files absent from
    ``sources`` get their waivers from disk, best effort.
    """
    extras_by_path: Dict[str, List[Finding]] = {}
    for finding in extra_findings or ():
        extras_by_path.setdefault(finding.path, []).append(finding)
    report = LintReport()
    for path in sorted(sources):
        source = sources[path]
        findings, error = scan_source(source, path, rules)
        if error is not None:
            report.errors.append(error)
            continue
        findings = sorted(
            findings + extras_by_path.pop(path.replace("\\", "/"), []),
            key=lambda f: (f.line, f.col, f.rule),
        )
        waivers, problems = parse_waivers(source, path.replace("\\", "/"))
        report.invalid_waivers.extend(problems)
        findings, unused = apply_waivers(findings, waivers)
        report.findings.extend(findings)
        report.unused_waivers.extend(unused)
        report.files_scanned += 1
    for path in sorted(extras_by_path):
        findings = extras_by_path[path]
        try:
            with open(path, encoding="utf-8") as handle:
                waivers, problems = parse_waivers(handle.read(), path)
        except OSError:
            waivers, problems = [], []
        report.invalid_waivers.extend(problems)
        findings, unused = apply_waivers(findings, waivers)
        report.findings.extend(findings)
        report.unused_waivers.extend(unused)
    if baseline_entries:
        report.findings, report.baseline_unmatched = apply_baseline(
            report.findings, baseline_entries
        )
    return report


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Set[str]] = None,
    baseline: Optional[str] = None,
    footprints: bool = True,
) -> LintReport:
    """Lint files/directories; the public entry point (``repro.lint_paths``).

    ``baseline`` names a grandfathered-findings JSON file; when omitted,
    :data:`DEFAULT_BASELINE` is used if it exists in the current
    directory. Unless ``footprints`` is False, the FPT rules also run
    over every registered house procedure (their findings land on the
    workload sources regardless of the scanned paths).
    """
    if rules is not None:
        unknown = set(rules) - set(ALL_RULES)
        if unknown:
            raise ConfigError(
                f"unknown rule(s) {sorted(unknown)}; known: {sorted(ALL_RULES)}"
            )
    if baseline is None and os.path.exists(DEFAULT_BASELINE):
        baseline = DEFAULT_BASELINE
    entries = load_baseline(baseline) if baseline else None
    sources: Dict[str, str] = {}
    for path in iter_python_files(paths):
        with open(path, encoding="utf-8") as handle:
            sources[path] = handle.read()
    extra_findings: List[Finding] = []
    if footprints and (rules is None or rules & set(FPT_RULES)):
        from repro.analysis.footprint import analyze_repository

        extra_findings = analyze_repository(rules)
    report = lint_sources(sources, rules, entries, extra_findings)
    report.baseline_path = baseline
    return report

"""The FPT rule catalogue: static read/write-set (footprint) checks.

Calvin's execution contract (paper Section 3.2) is that a transaction's
read and write sets are declared *before* sequencing: an under-declared
footprint is a runtime :class:`~repro.errors.FootprintViolation` crash
deep inside a run, and an over-declared footprint is silently absorbed
as extra lock contention — the exact knob the paper's contention sweep
shows dominating throughput. The FPT rules lift both failure classes to
lint time by checking every registered stored procedure against its
*declared footprint model*:

- **FPT001** — ``ctx.read()`` on a key not derivable from the declared
  read set (or from a prior ``ctx.write`` of the same key family): the
  runtime-crash class, caught statically.
- **FPT002** — ``ctx.write()`` / ``ctx.delete()`` outside the declared
  write set.
- **FPT003** — a reconnaissance function that mutates state or calls
  anything but its snapshot ``read_fn`` (and key-constructor helpers):
  reconnaissance is unsequenced, so any side effect or ambient input
  breaks the determinism of the footprint it predicts.
- **FPT004** — a recheck function reading keys outside the
  reconnoitered footprint (the recheck runs under the locks the
  reconnaissance predicted — any other key is unprotected) or writing
  at all.
- **FPT005** — a ``Footprint.token`` built from non-plain data
  (lambdas, generators, function references): the token rides the
  replicated input log and must be picklable, comparable plain data.
- **FPT006** — statically-detectable over-declaration: a declared key
  family never reachable by any access path in the logic, i.e. locks
  taken that no execution can use.

Keys are abstracted to *templates*: ``(leading-string-tag, arity)``,
e.g. ``keys.district(w, d)`` and ``("district", w, d)`` are both the
template ``("district", 3)``. Inference handles the house idioms —
loops over ``ctx.txn.sorted_reads()`` / ``sorted_writes()`` /
``read_set`` / ``write_set``, key-constructor helper functions (one
level of interprocedural resolution, same module or an imported keys
module), tuple key literals, local-variable propagation, and
``TxnSpec`` construction via literal sets, ``.add`` / ``.append`` /
``.update`` accumulation and ``frozenset(...)`` conversion. Anything
the inference cannot resolve degrades the affected check to silence
(never to a false positive): an unknown model skips FPT001/002/006 for
that procedure, an unresolvable access skips FPT006.

Like the DET rules, findings support inline waivers
(``# det: allow[FPTnnn] reason``) and the committed baseline file; see
:mod:`repro.analysis.linter` and ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.rules import Finding

#: Rule id -> one-line summary (joined with the DET catalogue by
#: ``repro lint --rules`` / ``--list-rules``).
FPT_RULES: Dict[str, str] = {
    "FPT001": "ctx.read() on a key not derivable from the declared read "
              "set or a prior ctx.write (runtime FootprintViolation class)",
    "FPT002": "ctx.write()/ctx.delete() on a key outside the declared "
              "write set",
    "FPT003": "reconnoiter mutates state or calls something other than "
              "its snapshot read_fn / key helpers",
    "FPT004": "recheck reads keys outside the reconnoitered footprint "
              "(or writes at all)",
    "FPT005": "Footprint token built from non-plain data — it must ride "
              "the replicated input log",
    "FPT006": "statically-detectable over-declaration: declared key "
              "family never accessed by the logic",
}

#: A key template: (leading string tag, tuple arity).
Template = Tuple[str, int]

#: Builtins a reconnaissance function may call freely (pure, no ambient
#: state) — everything else outside the read_fn/key-helper whitelist is
#: an FPT003 finding.
PURE_BUILTINS = frozenset({
    "range", "len", "tuple", "list", "set", "frozenset", "sorted", "dict",
    "enumerate", "zip", "min", "max", "sum", "abs", "round", "str", "int",
    "float", "bool", "isinstance", "reversed", "any", "all", "map",
    "filter", "repr",
})

#: Mutator/reader methods allowed on *local* collections inside a
#: reconnaissance function (locals are private scratch state).
_LOCAL_METHODS = frozenset({
    "add", "append", "extend", "update", "discard", "remove", "pop",
    "insert", "get", "items", "keys", "values", "count", "index", "copy",
    "setdefault",
})

#: Calls allowed inside a Footprint token expression (FPT005): plain
#: data constructors only.
_TOKEN_CALLS = frozenset({
    "tuple", "frozenset", "list", "sorted", "dict", "set", "str", "int",
    "float", "bool", "len", "min", "max", "sum", "abs", "round",
})

# Access origins for loop variables derived from the declaration itself.
READ_DERIVED = "read-derived"
WRITE_DERIVED = "write-derived"


# ---------------------------------------------------------------------------
# Module index + resolver seam
# ---------------------------------------------------------------------------


class ModuleIndex:
    """Parsed view of one source module the analyses consult."""

    def __init__(self, path: str, source: str, tree: Optional[ast.Module] = None):
        self.path = path.replace("\\", "/")
        self.source_lines = source.splitlines()
        self.tree = tree if tree is not None else ast.parse(source, filename=path)
        # Every function/method in the module, by name. Name collisions
        # (two classes defining the same method) keep the first; the
        # house modules have none that matter.
        self.functions: Dict[str, ast.FunctionDef] = {}
        # Import aliases: local name -> dotted module name.
        self.module_aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions.setdefault(node.name, node)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    # `from pkg import keys` may bind a *module*; record
                    # the dotted path and let the resolver decide.
                    self.module_aliases.setdefault(
                        alias.asname or alias.name,
                        f"{node.module}.{alias.name}",
                    )

    def function_at(self, name: str, lineno: Optional[int] = None
                    ) -> Optional[ast.FunctionDef]:
        fdef = self.functions.get(name)
        if fdef is not None and lineno is not None and fdef.lineno != lineno:
            for node in ast.walk(self.tree):
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name == name
                    and node.lineno == lineno
                ):
                    return node
        return fdef

    def snippet(self, line: int) -> str:
        if 0 < line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""


#: resolver(dotted_module_name) -> ModuleIndex or None. Supplied by
#: :mod:`repro.analysis.footprint` (importlib-backed); tests may supply
#: an in-memory map.
ModuleResolver = Callable[[str], Optional[ModuleIndex]]


def _no_resolver(_name: str) -> Optional[ModuleIndex]:
    return None


# ---------------------------------------------------------------------------
# Key templates
# ---------------------------------------------------------------------------


@dataclass
class KeySet:
    """A symbolic set of key templates (a declared-set approximation)."""

    templates: Set[Template] = field(default_factory=set)
    #: False once anything unresolvable flowed in — checks that need a
    #: complete picture (FPT001/002/006) stand down on inexact sets.
    exact: bool = True

    def add(self, template: Optional[Template]) -> None:
        if template is None:
            self.exact = False
        else:
            self.templates.add(template)

    def merge(self, other: "KeySet") -> None:
        self.templates |= other.templates
        self.exact = self.exact and other.exact


class _Env:
    """One function's symbolic bindings: key templates, key sets, and
    bound collection methods (``append = keys.append``)."""

    def __init__(self) -> None:
        self.templates: Dict[str, Template] = {}
        self.keysets: Dict[str, KeySet] = {}
        self.bound_methods: Dict[str, Tuple[KeySet, str]] = {}
        self.origins: Dict[str, str] = {}  # loop var -> READ/WRITE_DERIVED

    def forget(self, name: str) -> None:
        self.templates.pop(name, None)
        self.keysets.pop(name, None)
        self.bound_methods.pop(name, None)
        self.origins.pop(name, None)


class _Analyzer:
    """Shared machinery: template resolution over one module."""

    def __init__(self, index: ModuleIndex, resolver: ModuleResolver = _no_resolver):
        self.index = index
        self.resolver = resolver
        self._helper_cache: Dict[Tuple[str, str], Optional[Template]] = {}

    # -- single-key template resolution -----------------------------------

    def key_template(self, expr: ast.expr, env: _Env) -> Optional[Template]:
        if isinstance(expr, ast.Tuple) and expr.elts:
            head = expr.elts[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                return (head.value, len(expr.elts))
            return None
        if isinstance(expr, ast.Name):
            return env.templates.get(expr.id)
        if isinstance(expr, ast.Call):
            fdef, findex = self._resolve_callable(expr.func, env)
            if fdef is not None:
                return self._helper_template(fdef, findex)
        return None

    def _resolve_callable(
        self, func: ast.expr, env: _Env
    ) -> Tuple[Optional[ast.FunctionDef], Optional[ModuleIndex]]:
        """Resolve a call target to a FunctionDef (one level deep)."""
        if isinstance(func, ast.Name):
            if func.id in env.keysets or func.id in env.templates:
                return None, None
            fdef = self.index.functions.get(func.id)
            if fdef is not None:
                return fdef, self.index
            return None, None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self":
                    fdef = self.index.functions.get(func.attr)
                    if fdef is not None:
                        return fdef, self.index
                    return None, None
                dotted = self.index.module_aliases.get(base.id)
                if dotted is not None:
                    other = self.resolver(dotted)
                    if other is not None:
                        fdef = other.functions.get(func.attr)
                        if fdef is not None:
                            return fdef, other
        return None, None

    def _helper_template(
        self, fdef: ast.FunctionDef, findex: Optional[ModuleIndex]
    ) -> Optional[Template]:
        """The template a key-constructor helper returns, if it plainly
        returns one tuple shape (``def district(w, d): return
        ("district", w, d)``)."""
        index = findex or self.index
        cache_key = (index.path, fdef.name)
        if cache_key in self._helper_cache:
            return self._helper_cache[cache_key]
        templates: Set[Template] = set()
        resolved = True
        empty_env = _Env()
        for node in ast.walk(fdef):
            if isinstance(node, ast.Return) and node.value is not None:
                template = self.key_template(node.value, empty_env)
                if template is None:
                    resolved = False
                else:
                    templates.add(template)
        result = templates.pop() if resolved and len(templates) == 1 else None
        self._helper_cache[cache_key] = result
        return result

    # -- key-collection closure (model extraction) -------------------------

    def collection_keyset(self, expr: ast.expr, env: _Env,
                          depth: int = 1) -> Optional[KeySet]:
        """Resolve an expression to a symbolic key set, or None."""
        if isinstance(expr, (ast.Set, ast.List, ast.Tuple)):
            out = KeySet()
            for elt in expr.elts:
                out.add(self.key_template(elt, env))
            return out
        if isinstance(expr, ast.Name):
            return env.keysets.get(expr.id)
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name) and func.id in (
                "set", "frozenset", "list", "tuple", "sorted",
            ):
                if not expr.args:
                    return KeySet()
                return self.collection_keyset(expr.args[0], env, depth)
            if depth > 0:
                fdef, findex = self._resolve_callable(func, env)
                if fdef is not None:
                    return self._function_keyset(fdef, findex, depth - 1)
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            left = self.collection_keyset(expr.left, env, depth)
            right = self.collection_keyset(expr.right, env, depth)
            if left is not None and right is not None:
                out = KeySet()
                out.merge(left)
                out.merge(right)
                return out
        template = self.key_template(expr, env)
        if template is not None:
            out = KeySet()
            out.add(template)
            return out
        return None

    def _function_keyset(self, fdef: ast.FunctionDef,
                         findex: Optional[ModuleIndex],
                         depth: int) -> Optional[KeySet]:
        """The key set a helper's return value accumulates (one level of
        interprocedural resolution, e.g. YCSB's ``_draw_keys``)."""
        sub = _Analyzer(findex or self.index, self.resolver)
        env = _Env()
        sub.run_statements(fdef.body, env, depth=depth)
        out: Optional[KeySet] = None
        for node in ast.walk(fdef):
            if isinstance(node, ast.Return) and node.value is not None:
                keyset = sub.collection_keyset(node.value, env, depth)
                if keyset is None:
                    return None
                if out is None:
                    out = KeySet()
                out.merge(keyset)
        return out

    # -- statement walking (flow-insensitive symbolic execution) -----------

    def run_statements(self, body: Sequence[ast.stmt], env: _Env,
                       depth: int = 1) -> None:
        for stmt in body:
            self._run_statement(stmt, env, depth)

    def _run_statement(self, stmt: ast.stmt, env: _Env, depth: int) -> None:
        if isinstance(stmt, ast.Assign):
            self._run_assign(stmt.targets, stmt.value, env, depth)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._run_assign([stmt.target], stmt.value, env, depth)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name) and isinstance(stmt.op, ast.Add):
                target = env.keysets.get(stmt.target.id)
                value = self.collection_keyset(stmt.value, env, depth)
                if target is not None:
                    if value is not None:
                        target.merge(value)
                    else:
                        target.exact = False
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            self._run_call_statement(stmt.value, env, depth)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_loop_target(stmt.target, stmt.iter, env)
            self.run_statements(stmt.body, env, depth)
            self.run_statements(stmt.orelse, env, depth)
        elif isinstance(stmt, ast.While):
            self.run_statements(stmt.body, env, depth)
            self.run_statements(stmt.orelse, env, depth)
        elif isinstance(stmt, ast.If):
            self.run_statements(stmt.body, env, depth)
            self.run_statements(stmt.orelse, env, depth)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.run_statements(stmt.body, env, depth)
        elif isinstance(stmt, ast.Try):
            self.run_statements(stmt.body, env, depth)
            for handler in stmt.handlers:
                self.run_statements(handler.body, env, depth)
            self.run_statements(stmt.orelse, env, depth)
            self.run_statements(stmt.finalbody, env, depth)

    def _run_assign(self, targets: Sequence[ast.expr], value: ast.expr,
                    env: _Env, depth: int) -> None:
        # Tuple-to-tuple unpacking: `reads, writes, heads = set(), set(), []`.
        if (
            len(targets) == 1
            and isinstance(targets[0], ast.Tuple)
            and isinstance(value, ast.Tuple)
            and len(targets[0].elts) == len(value.elts)
        ):
            for target, elt in zip(targets[0].elts, value.elts):
                self._run_assign([target], elt, env, depth)
            return
        for target in targets:
            if isinstance(target, ast.Subscript):
                # `keys[-1] = ("arch", ...)` mutates a tracked collection.
                base = target.value
                if isinstance(base, ast.Name) and base.id in env.keysets:
                    env.keysets[base.id].add(self.key_template(value, env))
                continue
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            env.forget(name)
            # Bound collection method: `append = keys.append`.
            if (
                isinstance(value, ast.Attribute)
                and value.attr in ("add", "append")
                and isinstance(value.value, ast.Name)
                and value.value.id in env.keysets
            ):
                env.bound_methods[name] = (env.keysets[value.value.id], value.attr)
                continue
            keyset = self.collection_keyset(value, env, depth)
            if keyset is not None and not (
                isinstance(value, ast.Name) and value.id in env.templates
            ):
                env.keysets[name] = keyset
                continue
            template = self.key_template(value, env)
            if template is not None:
                env.templates[name] = template

    def _run_call_statement(self, call: ast.Call, env: _Env, depth: int) -> None:
        func = call.func
        # `reads.add(expr)` / `heads.append(expr)` / `reads.update(...)`.
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            keyset = env.keysets.get(func.value.id)
            if keyset is not None and call.args:
                if func.attr in ("add", "append"):
                    keyset.add(self.key_template(call.args[0], env))
                elif func.attr in ("update", "extend"):
                    arg = call.args[0]
                    if isinstance(arg, (ast.GeneratorExp, ast.SetComp,
                                        ast.ListComp)):
                        keyset.add(self.key_template(arg.elt, env))
                    else:
                        other = self.collection_keyset(arg, env, depth)
                        if other is not None:
                            keyset.merge(other)
                        else:
                            keyset.exact = False
                return
        # Alias call: `append(("hot", p, i))`.
        if isinstance(func, ast.Name) and func.id in env.bound_methods:
            keyset, _method = env.bound_methods[func.id]
            if call.args:
                keyset.add(self.key_template(call.args[0], env))

    def _bind_loop_target(self, target: ast.expr, iter_expr: ast.expr,
                          env: _Env) -> None:
        if isinstance(target, ast.Name):
            origin = derived_origin(iter_expr, env)
            if origin is not None:
                env.origins[target.id] = origin
            else:
                env.forget(target.id)


def derived_origin(expr: ast.expr, env: Optional[_Env] = None) -> Optional[str]:
    """Classify an iterable as derived from the declared footprint:
    ``ctx.txn.sorted_reads()`` / ``.read_set`` → read-derived,
    ``sorted_writes()`` / ``.write_set`` → write-derived, optionally
    through ``sorted()`` / ``sorted_keys()`` / ``list()`` wrappers."""
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute):
            if func.attr in ("sorted_reads", "sorted_keys"):
                return READ_DERIVED
            if func.attr == "sorted_writes":
                return WRITE_DERIVED
        if (
            isinstance(func, ast.Name)
            and func.id in ("sorted", "sorted_keys", "list", "tuple", "frozenset")
            and expr.args
        ):
            return derived_origin(expr.args[0], env)
        return None
    if isinstance(expr, ast.Attribute):
        if expr.attr == "read_set":
            return READ_DERIVED
        if expr.attr == "write_set":
            return WRITE_DERIVED
    if env is not None and isinstance(expr, ast.Name):
        return env.origins.get(expr.id)
    return None


# ---------------------------------------------------------------------------
# Declared footprint models
# ---------------------------------------------------------------------------


@dataclass
class FootprintModel:
    """A procedure's declared read/write sets, as key templates."""

    reads: KeySet = field(default_factory=KeySet)
    writes: KeySet = field(default_factory=KeySet)
    #: "reconnoiter" (dependent), "spec" (client-side TxnSpec), or
    #: "unknown" (no statically visible declaration site).
    origin: str = "unknown"
    path: str = ""
    line: int = 0

    @property
    def known(self) -> bool:
        return self.origin != "unknown"

    @property
    def exact(self) -> bool:
        return self.known and self.reads.exact and self.writes.exact

    @staticmethod
    def unknown_model() -> "FootprintModel":
        return FootprintModel()

    @staticmethod
    def from_templates(reads, writes, origin: str = "spec",
                       path: str = "", line: int = 0) -> "FootprintModel":
        model = FootprintModel(origin=origin, path=path, line=line)
        model.reads.templates = set(reads)
        model.writes.templates = set(writes)
        return model


def _is_footprint_create(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "create":
        return isinstance(func.value, ast.Name) and func.value.id == "Footprint"
    return isinstance(func, ast.Name) and func.id == "Footprint"


def extract_reconnoiter_model(
    analyzer: _Analyzer, fdef: ast.FunctionDef
) -> Tuple[FootprintModel, List[ast.Call]]:
    """The footprint a reconnaissance function predicts, plus every
    ``Footprint.create`` call found (for the FPT005 token check)."""
    env = _Env()
    analyzer.run_statements(fdef.body, env)
    model = FootprintModel(origin="reconnoiter", path=analyzer.index.path,
                           line=fdef.lineno)
    creates: List[ast.Call] = []
    found = False
    for node in ast.walk(fdef):
        if not (isinstance(node, ast.Call) and _is_footprint_create(node)):
            continue
        creates.append(node)
        args = list(node.args)
        kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        read_expr = args[0] if args else kwargs.get("read_set")
        write_expr = args[1] if len(args) > 1 else kwargs.get("write_set")
        for expr, side in ((read_expr, model.reads), (write_expr, model.writes)):
            if expr is None:
                side.exact = False
                continue
            keyset = analyzer.collection_keyset(expr, env)
            if keyset is None:
                side.exact = False
            else:
                side.merge(keyset)
        found = True
    if not found:
        return FootprintModel.unknown_model(), creates
    return model, creates


def extract_spec_models(
    analyzer: _Analyzer,
) -> Dict[str, FootprintModel]:
    """Declared models from a workload module's ``TxnSpec`` call sites.

    Scans every function for ``TxnSpec(name, args, reads, writes)`` /
    ``TxnSpec.create(...)`` with a constant procedure name; multiple
    sites for one procedure merge (exactness degrades accordingly).
    """
    models: Dict[str, FootprintModel] = {}
    for fdef in set(analyzer.index.functions.values()):
        env = _Env()
        analyzer.run_statements(fdef.body, env)
        for node in ast.walk(fdef):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_spec = (
                isinstance(func, ast.Name) and func.id == "TxnSpec"
            ) or (
                isinstance(func, ast.Attribute)
                and func.attr == "create"
                and isinstance(func.value, ast.Name)
                and func.value.id == "TxnSpec"
            )
            if not is_spec or not node.args:
                continue
            name_arg = node.args[0]
            if not (isinstance(name_arg, ast.Constant)
                    and isinstance(name_arg.value, str)):
                continue
            name = name_arg.value
            kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            read_expr = (node.args[2] if len(node.args) > 2
                         else kwargs.get("read_set"))
            write_expr = (node.args[3] if len(node.args) > 3
                          else kwargs.get("write_set"))
            model = models.setdefault(
                name,
                FootprintModel(origin="spec", path=analyzer.index.path,
                               line=node.lineno),
            )
            for expr, side in ((read_expr, model.reads),
                               (write_expr, model.writes)):
                if expr is None:
                    side.exact = False
                    continue
                keyset = analyzer.collection_keyset(expr, env)
                if keyset is None:
                    side.exact = False
                else:
                    side.merge(keyset)
    return models


# ---------------------------------------------------------------------------
# Logic / recheck scanning
# ---------------------------------------------------------------------------


@dataclass
class Access:
    """One ``ctx.read`` / ``ctx.write`` / ``ctx.delete`` call site."""

    kind: str                      # "read" | "write" | "delete"
    node: ast.Call
    index: ModuleIndex
    template: Optional[Template]   # resolved key family, or None
    origin: Optional[str]          # READ_DERIVED / WRITE_DERIVED / None


class LogicScanner:
    """Collect every footprint access in a procedure function, following
    ctx-passing helper calls one level deep (``_apply_payment(ctx, ...)``)."""

    def __init__(self, analyzer: _Analyzer):
        self.analyzer = analyzer
        self.accesses: List[Access] = []

    def scan(self, fdef: ast.FunctionDef, ctx_param: Optional[str] = None,
             depth: int = 1) -> None:
        if ctx_param is None:
            if not fdef.args.args:
                return
            ctx_param = fdef.args.args[0].arg
        env = _Env()
        self.analyzer.run_statements(fdef.body, env)
        method_aliases = self._collect_aliases(fdef, ctx_param)
        for node in ast.walk(fdef):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                self.analyzer._bind_loop_target(node.target, node.iter, env)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    self.analyzer._bind_loop_target(gen.target, gen.iter, env)
        for node in ast.walk(fdef):
            if not isinstance(node, ast.Call):
                continue
            kind = self._access_kind(node.func, ctx_param, method_aliases)
            if kind is not None:
                key_expr = node.args[0] if node.args else None
                template = origin = None
                if key_expr is not None:
                    template = self.analyzer.key_template(key_expr, env)
                    origin = derived_origin(key_expr, env)
                    if origin is None and isinstance(key_expr, ast.Name):
                        origin = env.origins.get(key_expr.id)
                self.accesses.append(
                    Access(kind, node, self.analyzer.index, template, origin)
                )
                continue
            if depth > 0:
                self._follow_helper(node, ctx_param, depth)

    @staticmethod
    def _collect_aliases(fdef: ast.FunctionDef, ctx_param: str
                         ) -> Dict[str, str]:
        """``read, write = ctx.read, ctx.write`` style method aliases."""
        aliases: Dict[str, str] = {}

        def record(target: ast.expr, value: ast.expr) -> None:
            if (
                isinstance(target, ast.Name)
                and isinstance(value, ast.Attribute)
                and value.attr in ("read", "write", "delete")
                and isinstance(value.value, ast.Name)
                and value.value.id == ctx_param
            ):
                aliases[target.id] = value.attr

        for node in ast.walk(fdef):
            if not isinstance(node, ast.Assign):
                continue
            targets = node.targets
            if (
                len(targets) == 1
                and isinstance(targets[0], ast.Tuple)
                and isinstance(node.value, ast.Tuple)
                and len(targets[0].elts) == len(node.value.elts)
            ):
                for target, value in zip(targets[0].elts, node.value.elts):
                    record(target, value)
            else:
                for target in targets:
                    record(target, node.value)
        return aliases

    @staticmethod
    def _access_kind(func: ast.expr, ctx_param: str,
                     aliases: Dict[str, str]) -> Optional[str]:
        if (
            isinstance(func, ast.Attribute)
            and func.attr in ("read", "write", "delete")
            and isinstance(func.value, ast.Name)
            and func.value.id == ctx_param
        ):
            return func.attr
        if isinstance(func, ast.Name):
            return aliases.get(func.id)
        return None

    def _follow_helper(self, call: ast.Call, ctx_param: str, depth: int) -> None:
        """Inline one level of same-module helpers receiving the ctx."""
        ctx_pos = None
        for pos, arg in enumerate(call.args):
            if isinstance(arg, ast.Name) and arg.id == ctx_param:
                ctx_pos = pos
                break
        if ctx_pos is None:
            return
        fdef, findex = self.analyzer._resolve_callable(call.func, _Env())
        if fdef is None or findex is not self.analyzer.index:
            return
        params = [a.arg for a in fdef.args.args]
        if params and params[0] == "self":
            params = params[1:]
        if ctx_pos >= len(params):
            return
        self.scan(fdef, ctx_param=params[ctx_pos], depth=depth - 1)


# ---------------------------------------------------------------------------
# The checks
# ---------------------------------------------------------------------------


class _Emitter:
    def __init__(self, rules: Optional[Set[str]] = None):
        self.rules = rules
        self.findings: List[Finding] = []

    def emit(self, rule: str, index: ModuleIndex, node: ast.AST,
             message: str) -> None:
        if self.rules is not None and rule not in self.rules:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.findings.append(
            Finding(rule, index.path, line, col, message, index.snippet(line))
        )


def check_logic(
    procedure: str,
    accesses: Sequence[Access],
    model: FootprintModel,
    emitter: _Emitter,
) -> None:
    """FPT001/FPT002 over a scanned logic function."""
    if not model.known:
        return
    reads, writes = model.reads, model.writes
    written = {a.template for a in accesses
               if a.kind in ("write", "delete") and a.template is not None}
    for access in accesses:
        if access.kind == "read":
            if access.origin == READ_DERIVED:
                continue
            if access.origin == WRITE_DERIVED:
                # The RMW idiom: reading keys drawn from the write set is
                # a pre-image read, legal only when every write-set key is
                # also declared readable.
                if not reads.exact or writes.templates <= reads.templates:
                    continue
                emitter.emit(
                    "FPT001", access.index, access.node,
                    f"procedure {procedure!r} reads keys drawn from its "
                    "write set, but the declared write set is not contained "
                    "in the read set — pre-image reads of write-set keys "
                    "raise FootprintViolation at runtime",
                )
                continue
            if not reads.exact:
                continue
            if access.template is None:
                emitter.emit(
                    "FPT001", access.index, access.node,
                    f"procedure {procedure!r}: ctx.read() on a key not "
                    "derivable from the declared read set (unresolvable "
                    "key expression against an exactly-known footprint)",
                )
            elif (access.template not in reads.templates
                  and access.template not in written):
                tag, arity = access.template
                emitter.emit(
                    "FPT001", access.index, access.node,
                    f"procedure {procedure!r} reads key family "
                    f"({tag!r}, arity {arity}) absent from its declared "
                    "read set — this raises FootprintViolation at runtime",
                )
        else:  # write / delete
            if access.origin == WRITE_DERIVED:
                continue
            if access.origin == READ_DERIVED:
                if not writes.exact or reads.templates <= writes.templates:
                    continue
                emitter.emit(
                    "FPT002", access.index, access.node,
                    f"procedure {procedure!r} writes keys drawn from its "
                    "read set, but the declared read set is not contained "
                    "in the write set",
                )
                continue
            if not writes.exact:
                continue
            if access.template is None:
                emitter.emit(
                    "FPT002", access.index, access.node,
                    f"procedure {procedure!r}: ctx.{access.kind}() on a key "
                    "not derivable from the declared write set",
                )
            elif access.template not in writes.templates:
                tag, arity = access.template
                emitter.emit(
                    "FPT002", access.index, access.node,
                    f"procedure {procedure!r} {access.kind}s key family "
                    f"({tag!r}, arity {arity}) absent from its declared "
                    "write set — this raises FootprintViolation at runtime",
                )


def check_over_declaration(
    procedure: str,
    accesses: Sequence[Access],
    model: FootprintModel,
    emitter: _Emitter,
    index: ModuleIndex,
    anchor: ast.AST,
) -> None:
    """FPT006: declared key families no access path can reach."""
    if not model.exact:
        return
    if any(a.template is None and a.origin is None for a in accesses):
        return  # an unresolvable access could touch anything
    read_covered: Set[Template] = set()
    write_covered: Set[Template] = set()
    for access in accesses:
        if access.kind == "read":
            if access.origin == READ_DERIVED:
                read_covered |= model.reads.templates
            elif access.origin == WRITE_DERIVED:
                read_covered |= model.writes.templates
            elif access.template is not None:
                read_covered.add(access.template)
        else:
            if access.origin == WRITE_DERIVED:
                write_covered |= model.writes.templates
            elif access.origin == READ_DERIVED:
                write_covered |= model.reads.templates
            elif access.template is not None:
                write_covered.add(access.template)
    for tag, arity in sorted(model.reads.templates - read_covered):
        emitter.emit(
            "FPT006", index, anchor,
            f"procedure {procedure!r} declares read-set key family "
            f"({tag!r}, arity {arity}) that no access path in its logic "
            "can reach — over-declared locks are pure contention",
        )
    for tag, arity in sorted(model.writes.templates - write_covered):
        emitter.emit(
            "FPT006", index, anchor,
            f"procedure {procedure!r} declares write-set key family "
            f"({tag!r}, arity {arity}) that no write path in its logic "
            "can reach — over-declared locks are pure contention",
        )


def check_recheck(
    procedure: str,
    accesses: Sequence[Access],
    model: FootprintModel,
    emitter: _Emitter,
) -> None:
    """FPT004: recheck must stay inside the reconnoitered read set."""
    for access in accesses:
        if access.kind in ("write", "delete"):
            emitter.emit(
                "FPT004", access.index, access.node,
                f"procedure {procedure!r}: recheck calls "
                f"ctx.{access.kind}() — rechecks validate, they never "
                "mutate",
            )
            continue
        if access.origin is not None or not model.reads.exact:
            continue
        if access.template is None:
            emitter.emit(
                "FPT004", access.index, access.node,
                f"procedure {procedure!r}: recheck reads an unresolvable "
                "key against an exactly-reconnoitered footprint",
            )
        elif access.template not in model.reads.templates:
            tag, arity = access.template
            emitter.emit(
                "FPT004", access.index, access.node,
                f"procedure {procedure!r}: recheck reads key family "
                f"({tag!r}, arity {arity}) outside the reconnoitered "
                "footprint — that key is not locked at execution time",
            )


class ReconnoiterChecker(ast.NodeVisitor):
    """FPT003 (purity) + FPT005 (token plainness) over a reconnaissance
    function."""

    def __init__(self, procedure: str, analyzer: _Analyzer,
                 fdef: ast.FunctionDef, emitter: _Emitter):
        self.procedure = procedure
        self.analyzer = analyzer
        self.index = analyzer.index
        self.fdef = fdef
        self.emitter = emitter
        args = fdef.args.args
        self.read_fn = args[0].arg if args else "read_fn"
        self.locals: Set[str] = {a.arg for a in args}
        for node in ast.walk(fdef):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            self.locals.add(leaf.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for leaf in ast.walk(node.target):
                    if isinstance(leaf, ast.Name):
                        self.locals.add(leaf.id)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    for leaf in ast.walk(gen.target):
                        if isinstance(leaf, ast.Name):
                            self.locals.add(leaf.id)

    def run(self) -> None:
        for stmt in self.fdef.body:
            self.visit(stmt)

    # -- FPT003 ------------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self._flag003(node, "declares global state")

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._flag003(node, "declares nonlocal state")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Attribute):
                self._flag003(node, "assigns an attribute (shared state)")
            elif isinstance(target, ast.Subscript):
                base = target.value
                if not (isinstance(base, ast.Name) and base.id in self.locals):
                    self._flag003(
                        node, "assigns into a non-local container",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if _is_footprint_create(node):
            self._check_token(node)
            for arg in node.args:
                self.visit(arg)
            for kw in node.keywords:
                if kw.arg != "token":
                    self.visit(kw.value)
            return
        if not self._call_allowed(node.func):
            self._flag003(
                node,
                f"calls {ast.unparse(node.func)} — reconnaissance may only "
                "read through its snapshot read_fn (plus key helpers and "
                "local collection methods)",
            )
        self.generic_visit(node)

    def _call_allowed(self, func: ast.expr) -> bool:
        if isinstance(func, ast.Name):
            if func.id == self.read_fn:
                return True
            if func.id in PURE_BUILTINS:
                return True
            if func.id in self.index.functions:
                return True  # one level of same-module trust (key helpers)
            return False
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in self.locals:
                    return func.attr in _LOCAL_METHODS
                dotted = self.index.module_aliases.get(base.id)
                if dotted is not None:
                    # An imported module: allowed only when the attribute
                    # resolves to a key-constructor helper.
                    other = self.analyzer.resolver(dotted)
                    if other is not None:
                        fdef = other.functions.get(func.attr)
                        if fdef is not None and self.analyzer._helper_template(
                            fdef, other
                        ) is not None:
                            return True
                # A named non-local receiver (module global, class):
                # calling anything on it — .append included — is shared
                # state the reconnaissance must not touch.
                return False
            # Method on a call result or expression (e.g. chained reads):
            # allow plain container reads, flag anything else.
            return func.attr in _LOCAL_METHODS
        return False

    def _flag003(self, node: ast.AST, what: str) -> None:
        self.emitter.emit(
            "FPT003", self.index, node,
            f"procedure {self.procedure!r}: reconnoiter {what} — "
            "reconnaissance must be a pure function of read_fn",
        )

    # -- FPT005 ------------------------------------------------------------

    def _check_token(self, create: ast.Call) -> None:
        token: Optional[ast.expr] = None
        if len(create.args) > 2:
            token = create.args[2]
        for kw in create.keywords:
            if kw.arg == "token":
                token = kw.value
        if token is None:
            return
        for node in ast.walk(token):
            if isinstance(node, ast.Lambda):
                self._flag005(node, "a lambda")
                return
            if isinstance(node, ast.GeneratorExp):
                self._flag005(node, "a generator expression")
                return
            if isinstance(node, ast.Call):
                func = node.func
                ok = (
                    isinstance(func, ast.Name)
                    and (func.id in _TOKEN_CALLS
                         or func.id in self.index.functions)
                )
                if not ok:
                    self._flag005(node, f"a call to {ast.unparse(func)}")
                    return
            if isinstance(node, ast.Name) and node.id not in self.locals:
                if node.id == self.read_fn or node.id in self.index.functions:
                    self._flag005(node, f"a function reference ({node.id})")
                    return

    def _flag005(self, node: ast.AST, what: str) -> None:
        self.emitter.emit(
            "FPT005", self.index, node,
            f"procedure {self.procedure!r}: Footprint token contains "
            f"{what} — tokens ride the replicated input log and must be "
            "plain, picklable, comparable data",
        )


# ---------------------------------------------------------------------------
# One procedure, end to end
# ---------------------------------------------------------------------------


def check_procedure(
    name: str,
    *,
    logic: Optional[Tuple[_Analyzer, ast.FunctionDef]],
    reconnoiter: Optional[Tuple[_Analyzer, ast.FunctionDef]] = None,
    recheck: Optional[Tuple[_Analyzer, ast.FunctionDef]] = None,
    spec_model: Optional[FootprintModel] = None,
    rules: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run every applicable FPT rule over one procedure's functions.

    ``logic`` / ``reconnoiter`` / ``recheck`` pair each function's AST
    with the analyzer of its defining module; ``spec_model`` is the
    client-side declaration for independent procedures (dependent ones
    derive their model from the reconnaissance function).
    """
    emitter = _Emitter(rules)
    model = spec_model if spec_model is not None else FootprintModel.unknown_model()

    if reconnoiter is not None:
        analyzer, fdef = reconnoiter
        model, _creates = extract_reconnoiter_model(analyzer, fdef)
        ReconnoiterChecker(name, analyzer, fdef, emitter).run()

    if recheck is not None and model.known:
        analyzer, fdef = recheck
        scanner = LogicScanner(analyzer)
        scanner.scan(fdef)
        check_recheck(name, scanner.accesses, model, emitter)

    if logic is not None:
        analyzer, fdef = logic
        scanner = LogicScanner(analyzer)
        scanner.scan(fdef)
        check_logic(name, scanner.accesses, model, emitter)
        if model.known:
            check_over_declaration(
                name, scanner.accesses, model, emitter,
                analyzer.index, fdef,
            )

    return emitter.findings

"""Divergence bisector: locate *where* two same-seed runs split.

A golden-digest mismatch says "the runs differ" and nothing else; with
thousands of spans the offending event is a needle in a haystack. This
module turns the whole-run digest into per-epoch checkpoints: spans are
grouped by sequencing epoch (the unit of Calvin's global order), each
epoch's span list is hashed in record order, and two runs are compared
epoch by epoch. The first divergent epoch — and the first divergent
span within it — is where determinism actually broke, which is usually
within one event hop of the bug.

Two runs of the same build in the same process should *never* diverge;
if they do, something consumed ambient state (the exact class of bug
the DET lint rules and the runtime sanitizer exist to catch). The
bisector is the third layer: when the first two miss, it turns the
failure into a located one.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.spans import CAT_EPOCH, Span

#: Spans whose virtual start precedes epoch 0's close land in epoch 0.
_EPS = 1e-12


def span_epoch(span: Span, epoch_duration: float) -> int:
    """The sequencing epoch a span belongs to.

    Sequenced spans carry it exactly (``seq[0]``); epoch-category spans
    carry it as ``detail``; everything else (device, node background) is
    binned by virtual start time.
    """
    if span.seq is not None:
        return span.seq[0]
    if span.cat == CAT_EPOCH and isinstance(span.detail, int):
        return span.detail
    return int((span.start + _EPS) / epoch_duration)


def epoch_digests(
    spans: List[Span], epoch_duration: float
) -> Dict[int, Tuple[str, int]]:
    """Per-epoch ``(sha256, span_count)`` over canonical span tuples.

    Record order within an epoch is preserved — it is part of what must
    match (the whole-run digest in :meth:`TraceRecorder.digest` is
    order-sensitive too).
    """
    grouped: Dict[int, List] = {}
    for span in spans:
        grouped.setdefault(span_epoch(span, epoch_duration), []).append(
            span.canonical()
        )
    return {
        epoch: (
            hashlib.sha256(repr(entries).encode()).hexdigest(),
            len(entries),
        )
        for epoch, entries in grouped.items()
    }


@dataclass
class DivergenceReport:
    """Outcome of comparing two same-seed runs epoch by epoch."""

    equivalent: bool
    epochs_compared: int
    first_divergent_epoch: Optional[int] = None
    #: Index of the first differing span within the divergent epoch.
    first_divergent_span: Optional[int] = None
    #: Canonical tuples at that index (None = run has no span there).
    span_a: Optional[tuple] = None
    span_b: Optional[tuple] = None
    digest_a: str = ""
    digest_b: str = ""
    #: epoch -> ((digest, count) run A, (digest, count) run B)
    epoch_table: Dict[int, Tuple[Tuple[str, int], Tuple[str, int]]] = field(
        default_factory=dict
    )

    def describe(self) -> str:
        if self.equivalent:
            return (
                f"runs equivalent: {self.epochs_compared} epochs, "
                f"digest {self.digest_a}"
            )
        lines = [
            f"runs DIVERGED at epoch {self.first_divergent_epoch} "
            f"(of {self.epochs_compared} compared)",
            f"  run A digest {self.digest_a}",
            f"  run B digest {self.digest_b}",
        ]
        counts = self.epoch_table.get(self.first_divergent_epoch)
        if counts is not None:
            (_, count_a), (_, count_b) = counts
            lines.append(
                f"  epoch {self.first_divergent_epoch}: "
                f"{count_a} spans in A vs {count_b} in B"
            )
        if self.first_divergent_span is not None:
            lines.append(f"  first differing span: #{self.first_divergent_span}")
            lines.append(f"    A: {self.span_a}")
            lines.append(f"    B: {self.span_b}")
        return "\n".join(lines)

    def to_json(self) -> Dict:
        return {
            "equivalent": self.equivalent,
            "epochs_compared": self.epochs_compared,
            "first_divergent_epoch": self.first_divergent_epoch,
            "first_divergent_span": self.first_divergent_span,
            "span_a": repr(self.span_a) if self.span_a is not None else None,
            "span_b": repr(self.span_b) if self.span_b is not None else None,
            "digest_a": self.digest_a,
            "digest_b": self.digest_b,
        }


def diverge(
    spans_a: List[Span], spans_b: List[Span], epoch_duration: float
) -> DivergenceReport:
    """Compare two runs' span streams; locate the first divergence."""
    digests_a = epoch_digests(spans_a, epoch_duration)
    digests_b = epoch_digests(spans_b, epoch_duration)
    all_epochs = sorted(set(digests_a) | set(digests_b))
    empty = ("", 0)
    table = {
        epoch: (digests_a.get(epoch, empty), digests_b.get(epoch, empty))
        for epoch in all_epochs
    }
    whole_a = hashlib.sha256(
        repr([s.canonical() for s in spans_a]).encode()
    ).hexdigest()
    whole_b = hashlib.sha256(
        repr([s.canonical() for s in spans_b]).encode()
    ).hexdigest()
    report = DivergenceReport(
        equivalent=True,
        epochs_compared=len(all_epochs),
        digest_a=whole_a,
        digest_b=whole_b,
        epoch_table=table,
    )
    for epoch in all_epochs:
        if table[epoch][0] != table[epoch][1]:
            report.equivalent = False
            report.first_divergent_epoch = epoch
            _locate_span(report, spans_a, spans_b, epoch, epoch_duration)
            break
    if report.equivalent and whole_a != whole_b:
        # Same per-epoch digests but different whole-run digest can only
        # mean cross-epoch interleaving changed; treat as epoch-0 unknown.
        report.equivalent = False
        report.first_divergent_epoch = all_epochs[0] if all_epochs else 0
    return report


def _locate_span(
    report: DivergenceReport,
    spans_a: List[Span],
    spans_b: List[Span],
    epoch: int,
    epoch_duration: float,
) -> None:
    in_a = [s.canonical() for s in spans_a if span_epoch(s, epoch_duration) == epoch]
    in_b = [s.canonical() for s in spans_b if span_epoch(s, epoch_duration) == epoch]
    for index in range(max(len(in_a), len(in_b))):
        a = in_a[index] if index < len(in_a) else None
        b = in_b[index] if index < len(in_b) else None
        if a != b:
            report.first_divergent_span = index
            report.span_a = a
            report.span_b = b
            return


def bisect_runs(
    build_and_run: Callable[[int], List[Span]],
    epoch_duration: float,
    runs: int = 2,
) -> DivergenceReport:
    """Run a scenario ``runs`` times and bisect the first pair that splits.

    ``build_and_run(run_index)`` must construct a *fresh* cluster (same
    seed, same config), drive it, and return the recorded spans. With
    deterministic code every pair matches and the report says so; any
    ambient-state leak shows up as a located divergence.
    """
    baseline = build_and_run(0)
    report: Optional[DivergenceReport] = None
    for index in range(1, max(2, runs)):
        candidate = build_and_run(index)
        report = diverge(baseline, candidate, epoch_duration)
        if not report.equivalent:
            return report
    assert report is not None
    return report

"""Determinism static analysis: ``repro lint``, sanitizer, bisector.

Four layers of machine-checked determinism discipline (the invariant
every other subsystem in this reproduction stakes its tests on):

- :mod:`repro.analysis.rules` + :mod:`repro.analysis.linter` — the
  DET001–DET006 AST rules behind ``repro lint``, with inline
  ``# det: allow[...]`` waivers and a committed baseline file.
- :mod:`repro.analysis.footprint_rules` +
  :mod:`repro.analysis.footprint` — the FPT001–FPT006 footprint rules:
  static verification of every registered procedure's declared
  read/write sets (under-declaration = runtime crash class,
  over-declaration = silent lock contention), run by the same
  ``repro lint`` gate.
- :mod:`repro.analysis.sanitizer` — a runtime context manager that
  turns ambient randomness / wall-clock / entropy calls into
  :class:`~repro.errors.DeterminismViolation` for the duration of a
  simulated run (config flag ``sanitize=True`` or CLI ``--sanitize``).
  Its footprint sibling, :mod:`repro.analysis.auditor`, records actual
  per-procedure key accesses (``audit_footprints=True`` or CLI
  ``--audit-footprints``) and reports over/under-declaration.
- :mod:`repro.analysis.bisect` — per-epoch span-digest comparison of
  two same-seed runs that reports the first divergent epoch and span.

See ``docs/static_analysis.md`` for the rule catalogue and workflow.
"""

from repro.analysis.auditor import (
    AuditingTxnContext,
    FootprintAuditor,
    adopt_auditor,
    audit_armed,
    audit_scope,
)
from repro.analysis.bisect import (
    DivergenceReport,
    bisect_runs,
    diverge,
    epoch_digests,
    span_epoch,
)
from repro.analysis.footprint import (
    analyze_procedure,
    analyze_registry,
    analyze_repository,
)
from repro.analysis.footprint_rules import FPT_RULES, FootprintModel
from repro.analysis.linter import (
    ALL_RULES,
    DEFAULT_BASELINE,
    LintReport,
    lint_paths,
    lint_sources,
    parse_waivers,
    write_baseline,
)
from repro.analysis.rules import Finding, RULES, scan_source
from repro.analysis.sanitizer import DeterminismSanitizer, sanitizer_active

__all__ = [
    "ALL_RULES",
    "AuditingTxnContext",
    "DEFAULT_BASELINE",
    "DeterminismSanitizer",
    "DivergenceReport",
    "FPT_RULES",
    "Finding",
    "FootprintAuditor",
    "FootprintModel",
    "LintReport",
    "RULES",
    "adopt_auditor",
    "analyze_procedure",
    "analyze_registry",
    "analyze_repository",
    "audit_armed",
    "audit_scope",
    "bisect_runs",
    "diverge",
    "epoch_digests",
    "lint_paths",
    "lint_sources",
    "parse_waivers",
    "sanitizer_active",
    "scan_source",
    "span_epoch",
    "write_baseline",
]

"""Determinism static analysis: ``repro lint``, sanitizer, bisector.

Three layers of machine-checked determinism discipline (the invariant
every other subsystem in this reproduction stakes its tests on):

- :mod:`repro.analysis.rules` + :mod:`repro.analysis.linter` — the
  DET001–DET006 AST rules behind ``repro lint``, with inline
  ``# det: allow[...]`` waivers and a committed baseline file.
- :mod:`repro.analysis.sanitizer` — a runtime context manager that
  turns ambient randomness / wall-clock / entropy calls into
  :class:`~repro.errors.DeterminismViolation` for the duration of a
  simulated run (config flag ``sanitize=True`` or CLI ``--sanitize``).
- :mod:`repro.analysis.bisect` — per-epoch span-digest comparison of
  two same-seed runs that reports the first divergent epoch and span.

See ``docs/static_analysis.md`` for the rule catalogue and workflow.
"""

from repro.analysis.bisect import (
    DivergenceReport,
    bisect_runs,
    diverge,
    epoch_digests,
    span_epoch,
)
from repro.analysis.linter import (
    DEFAULT_BASELINE,
    LintReport,
    lint_paths,
    lint_sources,
    parse_waivers,
    write_baseline,
)
from repro.analysis.rules import Finding, RULES, scan_source
from repro.analysis.sanitizer import DeterminismSanitizer, sanitizer_active

__all__ = [
    "DEFAULT_BASELINE",
    "DeterminismSanitizer",
    "DivergenceReport",
    "Finding",
    "LintReport",
    "RULES",
    "bisect_runs",
    "diverge",
    "epoch_digests",
    "lint_paths",
    "lint_sources",
    "parse_waivers",
    "sanitizer_active",
    "scan_source",
    "span_epoch",
    "write_baseline",
]

"""Footprint analysis: run the FPT rules over registered procedures.

This is the bridge between live objects and the AST machinery in
:mod:`repro.analysis.footprint_rules`: it resolves every
:class:`~repro.txn.procedures.Procedure` in a
:class:`~repro.txn.procedures.ProcedureRegistry` back to the source of
its logic / reconnoiter / recheck functions (via :mod:`inspect`),
extracts the declared footprint model — from the reconnaissance
function for dependent procedures, from the workload's ``TxnSpec``
construction sites for independent ones — and emits
:class:`~repro.analysis.rules.Finding` objects in the same shape the
DET rules produce, so waivers, the baseline file and the CI gate all
apply unchanged.

``analyze_repository()`` is the entry point ``repro lint`` uses: it
builds the house registry (microbenchmark + YCSB + TPC-C + the
migration procedure) and checks it against the house workload modules.
"""

from __future__ import annotations

import ast
import importlib
import inspect
import os
import re
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.footprint_rules import (
    FPT_RULES,
    FootprintModel,
    ModuleIndex,
    _Analyzer,
    check_procedure,
    extract_spec_models,
)
from repro.analysis.rules import Finding
from repro.txn.procedures import Procedure, ProcedureRegistry

#: The workload modules whose ``TxnSpec`` sites declare the footprints
#: of the house procedures.
DEFAULT_SPEC_MODULES: Tuple[str, ...] = (
    "repro.workloads.microbenchmark",
    "repro.workloads.ycsb",
    "repro.workloads.tpcc.workload",
)

_index_cache: Dict[str, Optional[ModuleIndex]] = {}
_analyzer_cache: Dict[str, _Analyzer] = {}


def _display_path(path: str) -> str:
    """Repo-relative forward-slash path, matching ``lint_paths`` style."""
    try:
        rel = os.path.relpath(path)
    except ValueError:  # different drive on windows
        rel = path
    if not rel.startswith(".."):
        path = rel
    return path.replace("\\", "/")


def _index_for_file(path: Optional[str]) -> Optional[ModuleIndex]:
    if path is None:
        return None
    path = os.path.abspath(path)
    if path not in _index_cache:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            _index_cache[path] = ModuleIndex(_display_path(path), source)
        except (OSError, SyntaxError):
            _index_cache[path] = None
    return _index_cache[path]


def resolve_module(dotted: str) -> Optional[ModuleIndex]:
    """Importlib-backed :data:`ModuleResolver` for the analyzers."""
    try:
        module = importlib.import_module(dotted)
    except Exception:
        return None
    if not inspect.ismodule(module):
        return None
    try:
        path = inspect.getsourcefile(module)
    except TypeError:
        return None
    return _index_for_file(path)


def _analyzer_for(index: ModuleIndex) -> _Analyzer:
    analyzer = _analyzer_cache.get(index.path)
    if analyzer is None:
        analyzer = _Analyzer(index, resolve_module)
        _analyzer_cache[index.path] = analyzer
    return analyzer


def resolve_function(
    fn: Optional[Callable],
) -> Optional[Tuple[_Analyzer, ast.FunctionDef]]:
    """Map a live function object to (analyzer-of-its-module, its AST).

    Returns None for anything without recoverable source — lambdas,
    builtins, C extensions — which simply exempts that function from
    static checking (the runtime auditor still sees it).
    """
    if fn is None:
        return None
    fn = inspect.unwrap(fn)
    code = getattr(fn, "__code__", None)
    if code is None or fn.__name__ == "<lambda>":
        return None
    try:
        path = inspect.getsourcefile(fn)
    except TypeError:
        return None
    index = _index_for_file(path)
    if index is None:
        return None
    fdef = index.function_at(fn.__name__, code.co_firstlineno)
    if fdef is None:
        return None
    return _analyzer_for(index), fdef


def spec_models(module_names: Iterable[str]) -> Dict[str, FootprintModel]:
    """Declared models for independent procedures, extracted from the
    ``TxnSpec`` construction sites of the given workload modules."""
    models: Dict[str, FootprintModel] = {}
    for name in module_names:
        index = resolve_module(name)
        if index is None:
            continue
        for proc, model in extract_spec_models(_analyzer_for(index)).items():
            if proc in models:
                models[proc].reads.merge(model.reads)
                models[proc].writes.merge(model.writes)
            else:
                models[proc] = model
    return models


def analyze_procedure(
    procedure: Procedure,
    *,
    spec_model: Optional[FootprintModel] = None,
    rules: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run the FPT rules over one procedure."""
    return check_procedure(
        procedure.name,
        logic=resolve_function(procedure.logic),
        reconnoiter=resolve_function(procedure.reconnoiter),
        recheck=resolve_function(procedure.recheck),
        spec_model=None if procedure.is_dependent else spec_model,
        rules=rules,
    )


def analyze_registry(
    registry: ProcedureRegistry,
    *,
    spec_modules: Iterable[str] = (),
    models: Optional[Dict[str, FootprintModel]] = None,
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run FPT001–FPT006 over every procedure in a registry.

    ``spec_modules`` names workload modules to mine for ``TxnSpec``
    declaration sites; ``models`` supplies/overrides declared models per
    procedure name (used by tests and by callers with programmatic
    specs). Procedures with no discoverable model are checked only for
    the model-free rules (FPT003/FPT005 and recheck writes).
    """
    rule_set: Optional[Set[str]] = None
    if rules is not None:
        rule_set = {rule for rule in rules if rule in FPT_RULES}
        if not rule_set:
            return []
    declared = spec_models(spec_modules)
    if models:
        declared.update(models)
    findings: List[Finding] = []
    seen = set()
    for name in registry.names():
        procedure = registry.get(name)
        for finding in analyze_procedure(
            procedure, spec_model=declared.get(name), rules=rule_set
        ):
            key = (finding.rule, finding.path, finding.line, finding.col,
                   finding.message)
            if key not in seen:
                seen.add(key)
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def default_registry() -> ProcedureRegistry:
    """Every house procedure: microbenchmark, YCSB, TPC-C, migration."""
    from repro.reconfig.procedure import migration_procedure
    from repro.workloads.microbenchmark import Microbenchmark
    from repro.workloads.tpcc.workload import TpccWorkload
    from repro.workloads.ycsb import YcsbWorkload

    registry = ProcedureRegistry()
    Microbenchmark().register(registry)
    YcsbWorkload().register(registry)
    TpccWorkload().register(registry)
    registry.register(migration_procedure())
    return registry


def analyze_repository(
    rules: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """The ``repro lint`` entry point: FPT rules over the house registry."""
    return analyze_registry(
        default_registry(),
        spec_modules=DEFAULT_SPEC_MODULES,
        rules=rules,
    )


_PROC_RE = re.compile(r"procedure '([^']+)'")


def statically_over_declared(
    registry: ProcedureRegistry,
    *,
    spec_modules: Iterable[str] = DEFAULT_SPEC_MODULES,
) -> Set[str]:
    """Procedure names the static FPT006 pass flags as over-declared —
    used by the runtime auditor to cross-validate its observations."""
    names: Set[str] = set()
    for finding in analyze_registry(
        registry, spec_modules=spec_modules, rules={"FPT006"}
    ):
        match = _PROC_RE.search(finding.message)
        if match:
            names.add(match.group(1))
    return names

"""Runtime footprint auditing: measure declared vs. actually-used keys.

The static FPT rules (:mod:`repro.analysis.footprint_rules`) reason
about key *templates*; this module closes the loop at runtime. An
opt-in :class:`FootprintAuditor` — wired like the
``DeterminismSanitizer``, via ``--audit-footprints`` on run/bench/chaos
or programmatically via :class:`audit_scope` — swaps the executor's
:class:`~repro.txn.context.TxnContext` for a recording subclass and
tallies, per procedure:

- **under-declared accesses** — reads/writes rejected by the footprint
  check (the runtime face of FPT001/FPT002); recorded eagerly because
  the ``FootprintViolation`` keeps propagating,
- **over-declared keys** — declared read/write-set keys a committed
  transaction never touched: locks held for nothing, the contention
  the paper's Fig. 7 sweep shows dominating throughput
  (``audit.footprint.*`` metrics plus a per-procedure table),

and cross-validates the static FPT006 verdicts against what actually
ran. Auditing is pure bookkeeping on the Python side: it schedules no
events and perturbs no decision, so audited runs produce bit-identical
trace digests.

Only replica-0 schedulers audit (replicas re-execute the same
deterministic accesses), and only the reply partition's context is
observed (its snapshot spans every participant, so it sees the whole
transaction's access set exactly once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.errors import FootprintViolation
from repro.txn.context import TxnContext
from repro.txn.result import TxnStatus

_SAMPLE_CAP = 3


class AuditingTxnContext(TxnContext):
    """A ``TxnContext`` that records every footprint access."""

    __slots__ = ("_auditor", "audit_reads", "audit_writes")

    def __init__(self, txn, reads, auditor: "FootprintAuditor"):
        super().__init__(txn, reads)
        self._auditor = auditor
        self.audit_reads: Set[Any] = set()
        self.audit_writes: Set[Any] = set()

    def read(self, key):
        try:
            value = super().read(key)
        except FootprintViolation:
            self._auditor.record_under_declared(self.txn.procedure, "read", key)
            raise
        self.audit_reads.add(key)
        return value

    def write(self, key, value):
        try:
            super().write(key, value)
        except FootprintViolation:
            self._auditor.record_under_declared(self.txn.procedure, "write", key)
            raise
        self.audit_writes.add(key)

    def delete(self, key):
        try:
            super().delete(key)
        except FootprintViolation:
            self._auditor.record_under_declared(self.txn.procedure, "delete", key)
            raise
        self.audit_writes.add(key)


@dataclass
class ProcedureAudit:
    """Accumulated footprint accounting for one procedure."""

    name: str
    txns: int = 0
    declared_reads: int = 0
    used_reads: int = 0
    declared_writes: int = 0
    used_writes: int = 0
    under_declared: int = 0
    unused_read_samples: Set[Any] = field(default_factory=set)
    unused_write_samples: Set[Any] = field(default_factory=set)
    under_declared_samples: Set[Any] = field(default_factory=set)

    @property
    def over_reads(self) -> int:
        return self.declared_reads - self.used_reads

    @property
    def over_writes(self) -> int:
        return self.declared_writes - self.used_writes

    @property
    def over_declared(self) -> bool:
        return self.over_reads > 0 or self.over_writes > 0

    def merge(self, other: "ProcedureAudit") -> None:
        self.txns += other.txns
        self.declared_reads += other.declared_reads
        self.used_reads += other.used_reads
        self.declared_writes += other.declared_writes
        self.used_writes += other.used_writes
        self.under_declared += other.under_declared
        for mine, theirs in (
            (self.unused_read_samples, other.unused_read_samples),
            (self.unused_write_samples, other.unused_write_samples),
            (self.under_declared_samples, other.under_declared_samples),
        ):
            for key in theirs:
                if len(mine) >= _SAMPLE_CAP:
                    break
                mine.add(key)


class FootprintAuditor:
    """Per-cluster runtime footprint accounting (opt-in)."""

    def __init__(self) -> None:
        self.procedures: Dict[str, ProcedureAudit] = {}
        self._txns_observed = None
        self._over_reads = None
        self._over_writes = None
        self._under = None

    # -- wiring ------------------------------------------------------------

    def register_metrics(self, registry, prefix: str = "audit.footprint") -> None:
        self._txns_observed = registry.counter(f"{prefix}.txns_observed")
        self._over_reads = registry.counter(f"{prefix}.over_declared_reads")
        self._over_writes = registry.counter(f"{prefix}.over_declared_writes")
        self._under = registry.counter(f"{prefix}.under_declared")

    def make_context(self, txn, reads) -> AuditingTxnContext:
        return AuditingTxnContext(txn, reads, self)

    def _record(self, procedure: str) -> ProcedureAudit:
        record = self.procedures.get(procedure)
        if record is None:
            record = self.procedures[procedure] = ProcedureAudit(procedure)
        return record

    # -- recording ---------------------------------------------------------

    def record_under_declared(self, procedure: str, kind: str, key) -> None:
        record = self._record(procedure)
        record.under_declared += 1
        if len(record.under_declared_samples) < _SAMPLE_CAP:
            record.under_declared_samples.add((kind, key))
        if self._under is not None:
            self._under.increment()

    def observe(self, txn, context: AuditingTxnContext, status,
                is_reply: bool) -> None:
        """Tally one finished transaction (reply partition only, so each
        transaction is counted exactly once across the cluster)."""
        if not is_reply or status is not TxnStatus.COMMITTED:
            return
        record = self._record(txn.procedure)
        record.txns += 1
        unused_reads = txn.read_set - context.audit_reads
        unused_writes = txn.write_set - context.audit_writes
        record.declared_reads += len(txn.read_set)
        record.used_reads += len(txn.read_set) - len(unused_reads)
        record.declared_writes += len(txn.write_set)
        record.used_writes += len(txn.write_set) - len(unused_writes)
        for key in unused_reads:
            if len(record.unused_read_samples) >= _SAMPLE_CAP:
                break
            record.unused_read_samples.add(key)
        for key in unused_writes:
            if len(record.unused_write_samples) >= _SAMPLE_CAP:
                break
            record.unused_write_samples.add(key)
        if self._txns_observed is not None:
            self._txns_observed.increment()
            if unused_reads:
                self._over_reads.increment(len(unused_reads))
            if unused_writes:
                self._over_writes.increment(len(unused_writes))

    # -- reporting ---------------------------------------------------------

    @property
    def total_under_declared(self) -> int:
        return sum(r.under_declared for r in self.procedures.values())

    @property
    def over_declared_procedures(self) -> Set[str]:
        return {name for name, r in self.procedures.items() if r.over_declared}

    def merge(self, other: "FootprintAuditor") -> None:
        for name, record in other.procedures.items():
            self._record(name).merge(record)

    def render_table(self) -> str:
        """The per-procedure over-declaration table."""
        lines = ["footprint audit — declared vs used keys (committed txns)"]
        header = (
            f"  {'procedure':<22} {'txns':>6} {'reads decl/used':>16} "
            f"{'over':>6} {'writes decl/used':>17} {'over':>6}"
        )
        lines.append(header)
        for name in sorted(self.procedures):
            r = self.procedures[name]
            lines.append(
                f"  {name:<22} {r.txns:>6} "
                f"{f'{r.declared_reads}/{r.used_reads}':>16} {r.over_reads:>6} "
                f"{f'{r.declared_writes}/{r.used_writes}':>17} {r.over_writes:>6}"
            )
            for label, samples in (
                ("unused reads", r.unused_read_samples),
                ("unused writes", r.unused_write_samples),
            ):
                if samples:
                    shown = ", ".join(repr(k) for k in sorted(samples))
                    lines.append(f"      e.g. {label}: {shown}")
        if not self.procedures:
            lines.append("  (no committed transactions observed)")
        lines.append(f"  under-declared accesses: {self.total_under_declared}")
        return "\n".join(lines)

    def cross_validate(self, registry, *, spec_modules=None) -> Dict[str, Any]:
        """Compare runtime over-declaration against the static FPT006
        verdicts for the same registry."""
        from repro.analysis.footprint import (
            DEFAULT_SPEC_MODULES,
            statically_over_declared,
        )

        if spec_modules is None:
            spec_modules = DEFAULT_SPEC_MODULES
        static = statically_over_declared(registry, spec_modules=spec_modules)
        runtime = self.over_declared_procedures
        return {
            "agree": sorted(static & runtime),
            "static_only": sorted(static - runtime),
            "runtime_only": sorted(runtime - static),
        }


# ---------------------------------------------------------------------------
# Scoped arming (sanitizer-style): `with audit_scope() as scope:` makes
# every cluster built inside the block attach an auditor and report it
# back through the scope, without threading config through call sites.
# ---------------------------------------------------------------------------

_scopes: List["audit_scope"] = []


def audit_armed() -> bool:
    """True inside any active :class:`audit_scope`."""
    return bool(_scopes)


def adopt_auditor(auditor: FootprintAuditor) -> None:
    """Called by cluster construction to hand a new auditor to every
    active scope (no-op when none are active)."""
    for scope in _scopes:
        scope.auditors.append(auditor)


class audit_scope:
    """Context manager arming footprint auditing for everything built
    inside it (CLI commands, experiment sweeps, tests)."""

    def __init__(self) -> None:
        self.auditors: List[FootprintAuditor] = []

    def __enter__(self) -> "audit_scope":
        _scopes.append(self)
        return self

    def __exit__(self, *_exc) -> bool:
        _scopes.remove(self)
        return False

    def merged(self) -> FootprintAuditor:
        """All collected auditors folded into one (for one report over a
        sweep that built many clusters)."""
        merged = FootprintAuditor()
        for auditor in self.auditors:
            merged.merge(auditor)
        return merged

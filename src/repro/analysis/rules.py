"""The DET rule catalogue: AST checks for determinism hazards.

Calvin's correctness argument (paper Section 2) is that every replica
derives identical state from the identical input log. In this
reproduction the same property carries the entire test strategy: golden
trace digests, same-seed chaos equivalence, and replica-consistency
checkers all assume that a run is a pure function of ``(code, seed)``.
Each rule below names one way Python code silently breaks that purity:

- **DET001** — ambient randomness: module-level ``random.*`` calls share
  one process-global Mersenne Twister, so *any* consumer perturbs every
  other consumer's draws; ``random.Random(...)`` built outside the seeded
  stream factory (:mod:`repro.sim.rng`) or the whitelisted txn-seeded
  derivation site (``txn/context.py``) is a seed that does not descend
  from the run's master seed.
- **DET002** — wall-clock reads: ``time.time``/``time.monotonic`` and
  ``datetime.now``/``utcnow`` import host time into a virtual-time
  simulation; two replicas (or two runs) observe different values.
- **DET003** — unsorted set iteration in determinism-critical modules
  (sim, net, sequencer, scheduler, paxos, faults, obs): ``set`` /
  ``frozenset`` iteration order depends on ``PYTHONHASHSEED``, so an
  order that feeds event scheduling, message emission, or a digest
  differs across processes even at the same seed.
- **DET004** — ordering by ``id()`` or ``hash()``: CPython object ids
  are allocation addresses and object hashes default to ids, so a sort
  keyed on either is a per-process coin flip.
- **DET005** — entropy/environment leaks: ``os.urandom``, ``uuid.uuid4``
  / ``uuid1``, ``secrets.*`` are nondeterministic by design;
  ``os.environ`` reads outside the CLI/config boundary make behaviour
  depend on the host shell.
- **DET006** — NaN traps and order-sensitive float accumulation:
  comparisons against ``float('nan')`` are always-false; ``sum()`` over
  a set of floats commits to a hash-ordered, non-associative reduction.

The checks are deliberately *syntactic* heuristics — Python has no
types to consult — so each rule documents its reach, and safe usages
are silenced with an inline ``# det: allow[DETnnn] reason`` waiver
rather than by weakening the rule.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

#: Rule id -> one-line summary (the catalogue shown by ``repro lint --rules``).
RULES: Dict[str, str] = {
    "DET001": "ambient randomness: module-level random.* call or "
              "random.Random() outside the seeded-stream whitelist",
    "DET002": "wall-clock read (time.time/monotonic, datetime.now/utcnow/today)",
    "DET003": "unsorted set/frozenset iteration in a determinism-critical module",
    "DET004": "ordering keyed on id() or hash() (per-process addresses)",
    "DET005": "entropy/environment leak (os.urandom, uuid4, secrets, os.environ)",
    "DET006": "NaN-unsafe comparison or order-sensitive float sum over a set",
}

#: ``random`` module-level functions that share the hidden global instance.
_RANDOM_MODULE_FUNCS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "seed", "getrandbits", "randbytes", "gauss",
    "normalvariate", "lognormvariate", "expovariate", "vonmisesvariate",
    "gammavariate", "betavariate", "paretovariate", "weibullvariate",
    "triangular", "binomialvariate", "getstate", "setstate",
})

#: RNG constructors that mint a seed outside the master-seed derivation tree.
_RANDOM_CONSTRUCTORS = frozenset({"Random", "SystemRandom"})

#: Wall-clock attributes on the ``time`` module (``perf_counter`` is
#: deliberately absent: it is the sanctioned wall-clock for the perf
#: harness, which measures the simulator rather than running inside it).
_TIME_FUNCS = frozenset({"time", "monotonic", "time_ns", "monotonic_ns"})

#: Wall-clock constructors on ``datetime.datetime`` / ``datetime.date``.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

#: ``os.environ`` access spellings.
_ENV_NAMES = frozenset({"environ", "getenv"})

#: Path fragments whose modules may construct RNGs (DET001 whitelist):
#: the stream factory itself and the txn-id-seeded per-transaction RNG.
DET001_WHITELIST = ("sim/rng.py", "txn/context.py")

#: Path fragments whose modules may read the environment (DET005).
DET005_ENV_WHITELIST = ("cli.py", "config.py")

#: Subpackages whose iteration order feeds event scheduling, message
#: emission, or digests (DET003/DET006 set-sum scope).
CRITICAL_PACKAGES = (
    "sim/", "net/", "sequencer/", "scheduler/", "paxos/", "faults/", "obs/",
    "geo/", "reconfig/",
)

#: Calls through which a set's iteration order escapes into an ordered
#: or rendered form (flagged); order-insensitive reducers are exempt.
_ORDER_LEAKING_CALLS = frozenset({"list", "tuple", "enumerate", "iter", "join"})
_ORDER_INSENSITIVE_CALLS = frozenset({
    "sorted", "len", "min", "max", "any", "all", "set", "frozenset",
    "sum",  # flagged separately (DET006) when the operand is float-ish
})


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored to ``path:line:col``.

    ``snippet`` (the stripped source line) is what the baseline matches
    on — line numbers churn with unrelated edits, the offending text
    does not.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str
    waived: bool = False
    waiver_reason: str = ""
    baselined: bool = False

    @property
    def active(self) -> bool:
        """True when the finding should fail the lint run."""
        return not (self.waived or self.baselined)

    def anchor(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def with_waiver(self, reason: str) -> "Finding":
        return replace(self, waived=True, waiver_reason=reason)

    def with_baseline(self) -> "Finding":
        return replace(self, baselined=True)


@dataclass
class ModuleContext:
    """Per-file facts the rules consult."""

    path: str  # normalized with forward slashes
    source_lines: List[str] = field(default_factory=list)
    # import alias -> canonical module ("rnd" -> "random")
    module_aliases: Dict[str, str] = field(default_factory=dict)
    # local name -> "module.attr" for from-imports ("time" -> "time.time")
    from_imports: Dict[str, str] = field(default_factory=dict)

    @property
    def det001_whitelisted(self) -> bool:
        return self.path.endswith(DET001_WHITELIST)

    @property
    def env_whitelisted(self) -> bool:
        return self.path.endswith(DET005_ENV_WHITELIST)

    @property
    def critical(self) -> bool:
        return any(f"/{pkg}" in f"/{self.path}" for pkg in CRITICAL_PACKAGES)


def collect_imports(tree: ast.AST, ctx: ModuleContext) -> None:
    """Record import aliases so rules can resolve ``rnd.random()`` etc."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                ctx.module_aliases[alias.asname or alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                ctx.from_imports[local] = f"{node.module}.{alias.name}"


class RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor applying every DET rule to one module."""

    def __init__(self, ctx: ModuleContext, rules: Optional[Set[str]] = None):
        self.ctx = ctx
        self.rules = rules  # None = all
        self.findings: List[Finding] = []
        # Function-local names currently known to be set-valued
        # (a stack of scopes; module scope at index 0).
        self._set_names: List[Set[str]] = [set()]

    # -- plumbing ---------------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        if self.rules is not None and rule not in self.rules:
            return
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        lines = self.ctx.source_lines
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        self.findings.append(
            Finding(rule, self.ctx.path, line, col, message, snippet)
        )

    def _resolves_to_module(self, node: ast.expr, module: str) -> bool:
        """True when ``node`` is a name bound to ``module`` by an import."""
        return (
            isinstance(node, ast.Name)
            and self.ctx.module_aliases.get(node.id) == module
        )

    # -- scope tracking for DET003 ----------------------------------------

    def _enter_scope(self) -> None:
        self._set_names.append(set())

    def _exit_scope(self) -> None:
        self._set_names.pop()

    def _mark_set_name(self, name: str, is_set: bool) -> None:
        scope = self._set_names[-1]
        if is_set:
            scope.add(name)
        else:
            scope.discard(name)

    def _name_is_set(self, name: str) -> bool:
        return any(name in scope for scope in reversed(self._set_names))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope()
        self.generic_visit(node)
        self._exit_scope()

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_expr(node.value)
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._mark_set_name(target.id, is_set)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            self._mark_set_name(node.target.id, self._is_set_expr(node.value))
        self.generic_visit(node)

    # -- set-expression classification (DET003/DET006) ---------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        """Syntactic check: does ``node`` evaluate to a set/frozenset?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._name_is_set(node.id)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in (
                "union", "intersection", "difference", "symmetric_difference",
            ):
                # Set-method names; only trust them on known-set receivers
                # to avoid flagging e.g. sqlalchemy-style query builders.
                return self._is_set_expr(func.value)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _check_set_iteration(self, iter_node: ast.expr, where: ast.AST) -> None:
        if not self.ctx.critical:
            return
        if self._is_set_expr(iter_node):
            self._emit(
                "DET003",
                where,
                "iteration over a set/frozenset — order depends on "
                "PYTHONHASHSEED; wrap in sorted() (or a stable key order)",
            )

    # -- node handlers ----------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter, node)
        self.generic_visit(node)

    def visit_comprehension_node(self, node) -> None:
        for gen in node.generators:
            self._check_set_iteration(gen.iter, node)
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_node
    visit_DictComp = visit_comprehension_node
    visit_GeneratorExp = visit_comprehension_node

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set *from* a set is order-free; do not flag the
        # generators, but still walk the body for other rules.
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        if any(self._is_nan_literal(op) for op in operands):
            self._emit(
                "DET006",
                node,
                "comparison against float('nan') is always False — use "
                "math.isnan() (NaN poisons ordering and equality)",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_nan_literal(node: ast.expr) -> bool:
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
            and node.args[0].value.lower() in ("nan", "+nan", "-nan")
        ):
            return True
        return (
            isinstance(node, ast.Attribute)
            and node.attr == "nan"
            and isinstance(node.value, ast.Name)
            and node.value.id == "math"
        )

    def visit_Call(self, node: ast.Call) -> None:
        self._check_det001(node)
        self._check_det002(node)
        self._check_det003_calls(node)
        self._check_det004(node)
        self._check_det005(node)
        self._check_det006_sum(node)
        self.generic_visit(node)

    # DET001 ---------------------------------------------------------------

    def _check_det001(self, node: ast.Call) -> None:
        if self.ctx.det001_whitelisted:
            return
        func = node.func
        if isinstance(func, ast.Attribute) and self._resolves_to_module(
            func.value, "random"
        ):
            if func.attr in _RANDOM_MODULE_FUNCS:
                self._emit(
                    "DET001",
                    node,
                    f"module-level random.{func.attr}() shares process-global "
                    "state — draw from a named RngStreams stream instead",
                )
            elif func.attr in _RANDOM_CONSTRUCTORS:
                self._emit(
                    "DET001",
                    node,
                    f"random.{func.attr}(...) constructed outside "
                    "repro.sim.rng — seeds must derive from the master seed "
                    "via RngStreams (or the txn-id site in txn/context.py)",
                )
            return
        if isinstance(func, ast.Name):
            origin = self.ctx.from_imports.get(func.id)
            if origin and origin.startswith("random."):
                what = origin.split(".", 1)[1]
                if what in _RANDOM_MODULE_FUNCS or what in _RANDOM_CONSTRUCTORS:
                    self._emit(
                        "DET001",
                        node,
                        f"call of {origin} (imported as {func.id}) — use a "
                        "named RngStreams stream instead",
                    )

    # DET002 ---------------------------------------------------------------

    def _check_det002(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if (
                self._resolves_to_module(func.value, "time")
                and func.attr in _TIME_FUNCS
            ):
                self._emit(
                    "DET002",
                    node,
                    f"wall-clock read time.{func.attr}() — simulated code "
                    "must use sim.now (virtual time)",
                )
                return
            if func.attr in _DATETIME_FUNCS:
                base = func.value
                # datetime.datetime.now() / datetime.date.today()
                if isinstance(base, ast.Attribute) and self._resolves_to_module(
                    base.value, "datetime"
                ):
                    self._emit(
                        "DET002", node,
                        f"wall-clock read datetime.{base.attr}.{func.attr}()",
                    )
                    return
                # datetime.now() with `from datetime import datetime`
                if isinstance(base, ast.Name) and self.ctx.from_imports.get(
                    base.id, ""
                ).startswith("datetime."):
                    self._emit(
                        "DET002", node,
                        f"wall-clock read {base.id}.{func.attr}()",
                    )
                    return
        if isinstance(func, ast.Name):
            origin = self.ctx.from_imports.get(func.id)
            if origin in ("time.time", "time.monotonic", "time.time_ns",
                          "time.monotonic_ns"):
                self._emit(
                    "DET002",
                    node,
                    f"wall-clock read {origin}() (imported as {func.id})",
                )

    # DET003 (call forms) --------------------------------------------------

    def _check_det003_calls(self, node: ast.Call) -> None:
        if not self.ctx.critical:
            return
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            name = "join"
        if name in _ORDER_LEAKING_CALLS and node.args:
            if self._is_set_expr(node.args[0]):
                self._emit(
                    "DET003",
                    node,
                    f"{name}(...) over a set/frozenset materializes "
                    "hash order — wrap the set in sorted()",
                )
        # String interpolation of a set renders hash order.
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "format"
            and any(self._is_set_expr(arg) for arg in node.args)
        ):
            self._emit(
                "DET003", node,
                "str.format over a set renders hash order — sort it first",
            )

    def visit_FormattedValue(self, node: ast.FormattedValue) -> None:
        if self.ctx.critical and self._is_set_expr(node.value):
            self._emit(
                "DET003",
                node,
                "f-string interpolation of a set/frozenset renders hash "
                "order — wrap in sorted()",
            )
        self.generic_visit(node)

    # DET004 ---------------------------------------------------------------

    def _check_det004(self, node: ast.Call) -> None:
        func = node.func
        is_sorter = (
            isinstance(func, ast.Name) and func.id in ("sorted", "min", "max")
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if not is_sorter:
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            if self._key_uses_identity(kw.value):
                self._emit(
                    "DET004",
                    node,
                    "ordering keyed on id()/hash() — object addresses are "
                    "per-process; key on a stable field instead",
                )

    @staticmethod
    def _key_uses_identity(key: ast.expr) -> bool:
        if isinstance(key, ast.Name) and key.id in ("id", "hash"):
            return True
        if isinstance(key, ast.Lambda):
            body = key.body
            return (
                isinstance(body, ast.Call)
                and isinstance(body.func, ast.Name)
                and body.func.id in ("id", "hash")
            )
        return False

    # DET005 ---------------------------------------------------------------

    def _check_det005(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            value = func.value
            if self._resolves_to_module(value, "os") and func.attr == "urandom":
                self._emit("DET005", node, "os.urandom() is raw entropy")
                return
            if self._resolves_to_module(value, "uuid") and func.attr in (
                "uuid1", "uuid4",
            ):
                self._emit(
                    "DET005",
                    node,
                    f"uuid.{func.attr}() draws host entropy — derive ids "
                    "from the seed or a counter",
                )
                return
            if self._resolves_to_module(value, "secrets"):
                self._emit("DET005", node, f"secrets.{func.attr}() is entropy")
                return
            if (
                not self.ctx.env_whitelisted
                and self._resolves_to_module(value, "os")
                and func.attr == "getenv"
            ):
                self._emit(
                    "DET005",
                    node,
                    "os.getenv outside cli/config — environment reads make "
                    "runs host-dependent",
                )
                return
            # os.environ.get(...)
            if (
                not self.ctx.env_whitelisted
                and func.attr == "get"
                and isinstance(value, ast.Attribute)
                and value.attr == "environ"
                and self._resolves_to_module(value.value, "os")
            ):
                self._emit(
                    "DET005", node, "os.environ read outside cli/config",
                )
                return
        if isinstance(func, ast.Name):
            origin = self.ctx.from_imports.get(func.id, "")
            if origin == "os.urandom":
                self._emit("DET005", node, "os.urandom() is raw entropy")
            elif origin in ("uuid.uuid1", "uuid.uuid4"):
                self._emit("DET005", node, f"{origin}() draws host entropy")
            elif origin.startswith("secrets."):
                self._emit("DET005", node, f"{origin}() is entropy")
            elif origin == "os.getenv" and not self.ctx.env_whitelisted:
                self._emit("DET005", node, "os.getenv outside cli/config")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # os.environ["X"] outside the whitelist.
        value = node.value
        if (
            not self.ctx.env_whitelisted
            and isinstance(value, ast.Attribute)
            and value.attr == "environ"
            and self._resolves_to_module(value.value, "os")
        ):
            self._emit("DET005", node, "os.environ read outside cli/config")
        elif (
            not self.ctx.env_whitelisted
            and isinstance(value, ast.Name)
            and self.ctx.from_imports.get(value.id) == "os.environ"
        ):
            self._emit("DET005", node, "os.environ read outside cli/config")
        self.generic_visit(node)

    # DET006 (set sums) ----------------------------------------------------

    def _check_det006_sum(self, node: ast.Call) -> None:
        if not self.ctx.critical:
            return
        func = node.func
        is_sum = (isinstance(func, ast.Name) and func.id == "sum") or (
            isinstance(func, ast.Attribute)
            and func.attr == "fsum"
            and self._resolves_to_module(func.value, "math")
        )
        if is_sum and node.args and self._is_set_expr(node.args[0]):
            self._emit(
                "DET006",
                node,
                "sum() over a set commits to a hash-ordered float "
                "reduction (float addition is not associative) — "
                "sum(sorted(...)) for a stable result",
            )


def scan_source(source: str, path: str, rules: Optional[Set[str]] = None,
                ) -> Tuple[List[Finding], Optional[str]]:
    """Lint one module's source; returns (findings, syntax_error_or_None)."""
    normalized = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [], f"{path}:{exc.lineno}: syntax error: {exc.msg}"
    ctx = ModuleContext(path=normalized, source_lines=source.splitlines())
    collect_imports(tree, ctx)
    visitor = RuleVisitor(ctx, rules)
    visitor.visit(tree)
    visitor.findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return visitor.findings, None

"""Runtime determinism sanitizer: trap ambient nondeterminism in a run.

The AST linter (:mod:`repro.analysis.rules`) catches what it can see;
this module catches what it cannot — a dependency, an exec'd snippet,
or a dynamically dispatched call reaching for the process-global RNG or
the wall clock *while a simulated run is in flight*. Inside the context
manager, the module-level entry points of ``random``, the wall-clock
reads of ``time``, ``uuid.uuid1/uuid4`` and ``os.urandom`` are replaced
with trip wires that raise :class:`~repro.errors.DeterminismViolation`
naming the call site's offence.

What stays usable, deliberately:

- ``random.Random`` *instances* (every seeded stream from
  :class:`repro.sim.rng.RngStreams`, the txn-id RNG) — instance methods
  do not go through the patched module functions.
- ``time.perf_counter`` — the sanctioned wall-clock of the perf
  harness, which measures the simulator from outside.
- ``hashlib``/``hash`` — deterministic for bytes inputs.

``datetime.datetime.now`` cannot be patched (attribute of a C type);
the DET002 lint rule covers it statically.

Activation is reference-counted, so nesting (the cluster's quiesce loop
re-entering ``Simulator.run`` per step, or a sanitized CLI command over
a ``sanitize=True`` config) is safe, and the original functions are
restored when the outermost context exits — even on error.
"""

from __future__ import annotations

import os
import random
import time
import uuid
from contextlib import contextmanager
from typing import Any, Callable, Dict, List, Tuple

from repro.errors import DeterminismViolation

#: ``(module, attribute)`` pairs replaced while the sanitizer is active.
_PATCHED_SITES: List[Tuple[Any, str, str]] = (
    [
        (random, name,
         "module-level random.{0}() shares process-global state; draw from "
         "a named RngStreams stream (repro.sim.rng) instead")
        for name in (
            "random", "randint", "randrange", "uniform", "choice", "choices",
            "shuffle", "sample", "seed", "getrandbits", "gauss",
            "normalvariate", "lognormvariate", "expovariate", "betavariate",
            "gammavariate", "paretovariate", "weibullvariate",
            "vonmisesvariate", "triangular",
        )
        if hasattr(random, name)
    ]
    + [
        (time, name,
         "wall-clock read time.{0}() during a simulated run; use the "
         "kernel's virtual sim.now")
        for name in ("time", "monotonic", "time_ns", "monotonic_ns")
        if hasattr(time, name)
    ]
    + [
        (uuid, name,
         "uuid.{0}() draws host entropy; derive identifiers from the seed "
         "or a txn counter")
        for name in ("uuid1", "uuid4")
    ]
    + [
        (os, "urandom",
         "os.urandom() is raw entropy; determinism requires seeded streams"),
    ]
)

# Reference count + saved originals (module-global: the patches are).
_depth = 0
_saved: Dict[Tuple[int, str], Callable] = {}


def _trip_wire(qualname: str, template: str) -> Callable:
    message = template.format(qualname.split(".")[-1])

    def tripped(*_args: Any, **_kwargs: Any) -> Any:
        raise DeterminismViolation(f"{qualname}: {message}")

    tripped.__name__ = qualname.split(".")[-1]
    tripped.__qualname__ = f"sanitized:{qualname}"
    return tripped


def _activate() -> None:
    global _depth
    _depth += 1
    if _depth > 1:
        return
    for module, attr, template in _PATCHED_SITES:
        key = (id(module), attr)
        _saved[key] = getattr(module, attr)
        setattr(module, attr, _trip_wire(f"{module.__name__}.{attr}", template))


def _deactivate() -> None:
    global _depth
    if _depth == 0:
        return
    _depth -= 1
    if _depth > 0:
        return
    for module, attr, _template in _PATCHED_SITES:
        setattr(module, attr, _saved.pop((id(module), attr)))


def sanitizer_active() -> bool:
    """True while at least one :class:`DeterminismSanitizer` is entered."""
    return _depth > 0


@contextmanager
def sanitizer_suspended():
    """Temporarily restore the real clocks at any nesting depth.

    Process-pool fan-out (:mod:`repro.bench.parallel`) needs this: the
    multiprocessing plumbing legitimately reads ``time.monotonic`` for
    its queue timeouts, so a sanitized parent stands down around the
    pool while each worker re-arms the sanitizer around its own cell.
    Re-arms to the saved depth on exit, even on error. A no-op when the
    sanitizer is not active.
    """
    depth = _depth
    for _ in range(depth):
        _deactivate()
    try:
        yield
    finally:
        for _ in range(depth):
            _activate()


class DeterminismSanitizer:
    """Context manager arming the nondeterminism trip wires.

    Used three ways (all equivalent): the ``sanitize=True`` field of
    :class:`repro.ClusterConfig` (arms it around every
    ``Simulator.run``), the ``--sanitize`` flag of the ``run`` /
    ``chaos`` / ``trace`` / ``bench`` CLI commands (arms it around the
    whole command), or directly::

        with DeterminismSanitizer():
            cluster.run(duration=1.0)

    Reentrant: contexts may nest freely; the patches are installed by
    the first entry and removed by the matching last exit.
    """

    def __enter__(self) -> "DeterminismSanitizer":
        _activate()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        _deactivate()

"""Workloads: the paper's microbenchmark and a full TPC-C-style benchmark."""

from repro.workloads.base import TxnSpec, Workload
from repro.workloads.microbenchmark import Microbenchmark
from repro.workloads.tpcc import TpccWorkload
from repro.workloads.ycsb import YcsbWorkload, ZipfGenerator

__all__ = [
    "Microbenchmark",
    "TpccWorkload",
    "TxnSpec",
    "Workload",
    "YcsbWorkload",
    "ZipfGenerator",
]

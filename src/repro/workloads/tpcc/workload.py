"""The TPC-C workload driver: transaction mix and request generation."""

from __future__ import annotations

import itertools
import random
from typing import Dict, Optional

from repro.errors import ConfigError
from repro.partition.catalog import Catalog
from repro.partition.partitioner import FuncPartitioner, Partitioner
from repro.txn.procedures import ProcedureRegistry
from repro.workloads.base import TxnSpec, Workload
from repro.workloads.tpcc import keys
from repro.workloads.tpcc.loader import (
    TpccScale,
    build_initial_data,
    customer_last_name,
)
from repro.workloads.tpcc.procedures import register_procedures

# The standard TPC-C mix (weights sum to 1).
DEFAULT_MIX: Dict[str, float] = {
    "new_order": 0.45,
    "payment": 0.43,
    "order_status": 0.04,
    "delivery": 0.04,
    "stock_level": 0.04,
}


class TpccWorkload(Workload):
    """Generates the five TPC-C transaction types against a scaled schema."""

    name = "tpcc"

    def __init__(
        self,
        scale: Optional[TpccScale] = None,
        mix: Optional[Dict[str, float]] = None,
        remote_fraction: float = 0.10,
        remote_payment_fraction: float = 0.15,
        invalid_item_fraction: float = 0.01,
        min_order_lines: int = 5,
        max_order_lines: int = 15,
        by_name_fraction: float = 0.60,
    ):
        self.scale = scale or TpccScale()
        mix = dict(mix or DEFAULT_MIX)
        total = sum(mix.values())
        if total <= 0:
            raise ConfigError("TPC-C mix weights must sum to a positive value")
        unknown = set(mix) - set(DEFAULT_MIX)
        if unknown:
            raise ConfigError(f"unknown TPC-C transaction types in mix: {unknown}")
        self.mix = {name: weight / total for name, weight in mix.items()}
        if not 0 <= remote_fraction <= 1 or not 0 <= remote_payment_fraction <= 1:
            raise ConfigError("remote fractions must be in [0, 1]")
        if not 1 <= min_order_lines <= max_order_lines:
            raise ConfigError("order line bounds must satisfy 1 <= min <= max")
        if not 0 <= by_name_fraction <= 1:
            raise ConfigError("by_name_fraction must be in [0, 1]")
        self.remote_fraction = remote_fraction
        self.remote_payment_fraction = remote_payment_fraction
        self.invalid_item_fraction = invalid_item_fraction
        self.min_order_lines = min_order_lines
        self.max_order_lines = max_order_lines
        # TPC-C 2.5.2.2 / 2.6.2.2: 60% of Payment and Order-Status
        # select the customer by last name (via OLLP here).
        self.by_name_fraction = by_name_fraction
        # Client-side order-id assignment keeps New Order's write set
        # static (the trick that makes it an independent transaction).
        self._order_ids = itertools.count(1)

    # -- Workload interface ---------------------------------------------------

    def register(self, registry: ProcedureRegistry) -> None:
        register_procedures(registry)

    def build_partitioner(self, num_partitions: int) -> Partitioner:
        per = self.scale.warehouses_per_partition
        return FuncPartitioner(num_partitions, lambda key: keys.warehouse_of(key) // per)

    def initial_data(self, catalog: Catalog):
        return build_initial_data(self.scale, catalog.num_partitions)

    def generate(
        self, rng: random.Random, origin_partition: int, catalog: Catalog
    ) -> TxnSpec:
        scale = self.scale
        w = (
            origin_partition * scale.warehouses_per_partition
            + rng.randrange(scale.warehouses_per_partition)
        )
        total_warehouses = scale.total_warehouses(catalog.num_partitions)
        choice = self._pick_type(rng)
        if choice == "new_order":
            return self._new_order(rng, w, total_warehouses)
        if choice == "payment":
            return self._payment(rng, w, total_warehouses)
        if choice == "order_status":
            return self._order_status(rng, w)
        if choice == "delivery":
            return self._delivery(rng, w)
        return self._stock_level(rng, w)

    # -- per-type generators ------------------------------------------------------

    def _pick_type(self, rng: random.Random) -> str:
        roll = rng.random()
        cumulative = 0.0
        for name, weight in self.mix.items():
            cumulative += weight
            if roll < cumulative:
                return name
        return next(iter(self.mix))

    def _other_warehouse(self, rng: random.Random, w: int, total: int) -> int:
        other = rng.randrange(total - 1)
        return other + 1 if other >= w else other

    def _new_order(self, rng: random.Random, w: int, total_warehouses: int) -> TxnSpec:
        scale = self.scale
        d = rng.randrange(scale.districts_per_warehouse)
        c = rng.randrange(scale.customers_per_district)
        o_id = next(self._order_ids)
        n_lines = rng.randint(self.min_order_lines, self.max_order_lines)

        lines = []
        for _ in range(n_lines):
            item_id = rng.randrange(scale.items)
            supply_w = w
            if total_warehouses > 1 and rng.random() < self.remote_fraction:
                supply_w = self._other_warehouse(rng, w, total_warehouses)
            qty = rng.randint(1, 10)
            lines.append((item_id, supply_w, qty))
        if rng.random() < self.invalid_item_fraction:
            # TPC-C 2.4.1.5: the last line references an unused item.
            item_id, supply_w, qty = lines[-1]
            lines[-1] = (-1, supply_w, qty)
        lines = tuple(lines)

        reads = {keys.warehouse(w), keys.district(w, d), keys.customer(w, d, c)}
        writes = {keys.district(w, d), keys.order(w, d, o_id),
                  keys.customer_last_order(w, d, c)}
        for number, (item_id, supply_w, qty) in enumerate(lines):
            reads.add(keys.item(w, item_id))
            reads.add(keys.stock(supply_w, item_id))
            writes.add(keys.stock(supply_w, item_id))
            writes.add(keys.order_line(w, d, o_id, number))
        args = {"w": w, "d": d, "c": c, "o_id": o_id, "lines": lines}
        return TxnSpec.create("new_order", args, reads, writes)

    def _random_last_name(self, rng: random.Random) -> str:
        # Draw a name that is guaranteed to exist in the loaded data.
        return customer_last_name(rng.randrange(self.scale.customers_per_district))

    def _payment(self, rng: random.Random, w: int, total_warehouses: int) -> TxnSpec:
        scale = self.scale
        d = rng.randrange(scale.districts_per_warehouse)
        c_w, c_d = w, d
        if total_warehouses > 1 and rng.random() < self.remote_payment_fraction:
            c_w = self._other_warehouse(rng, w, total_warehouses)
            c_d = rng.randrange(scale.districts_per_warehouse)
        amount = round(rng.uniform(1.0, 5000.0), 2)
        if rng.random() < self.by_name_fraction:
            args = {
                "w": w, "d": d, "c_w": c_w, "c_d": c_d,
                "last": self._random_last_name(rng), "amount": amount,
            }
            return TxnSpec.create("payment_by_name", args, (), (), dependent=True)
        c = rng.randrange(scale.customers_per_district)
        args = {"w": w, "d": d, "c_w": c_w, "c_d": c_d, "c": c, "amount": amount}
        footprint = {keys.warehouse(w), keys.district(w, d), keys.customer(c_w, c_d, c)}
        return TxnSpec.create("payment", args, footprint, footprint)

    def _order_status(self, rng: random.Random, w: int) -> TxnSpec:
        scale = self.scale
        d = rng.randrange(scale.districts_per_warehouse)
        if rng.random() < self.by_name_fraction:
            args = {"w": w, "d": d, "last": self._random_last_name(rng)}
            return TxnSpec.create("order_status_by_name", args, (), (), dependent=True)
        args = {"w": w, "d": d, "c": rng.randrange(scale.customers_per_district)}
        return TxnSpec.create("order_status", args, (), (), dependent=True)

    def _delivery(self, rng: random.Random, w: int) -> TxnSpec:
        args = {
            "w": w,
            "districts": self.scale.districts_per_warehouse,
            "carrier": rng.randint(1, 10),
        }
        return TxnSpec.create("delivery", args, (), (), dependent=True)

    def _stock_level(self, rng: random.Random, w: int) -> TxnSpec:
        args = {
            "w": w,
            "d": rng.randrange(self.scale.districts_per_warehouse),
            "threshold": rng.randint(10, 20),
        }
        return TxnSpec.create("stock_level", args, (), (), dependent=True)

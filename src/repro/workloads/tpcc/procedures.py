"""TPC-C stored procedures: logic, reconnaissance, recheck.

Record values are treated as immutable — every write constructs a fresh
dict (``{**old, ...}``), never mutates one read from the store, because
stores hand out references and replicas compare raw contents.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Tuple

from repro.txn.context import TxnContext
from repro.txn.ollp import Footprint
from repro.txn.procedures import Procedure, ProcedureRegistry
from repro.workloads.tpcc import keys

ReadFn = Callable[[Any], Any]

# Recent-orders window kept per district for Stock Level.
RECENT_ORDERS = 20


# ---------------------------------------------------------------------------
# New Order (independent: footprint computed client-side, o_id pre-assigned)
# ---------------------------------------------------------------------------

def new_order_logic(ctx: TxnContext) -> float:
    args = ctx.args
    w, d, c = args["w"], args["d"], args["c"]
    o_id: int = args["o_id"]
    lines: Tuple[Tuple[int, int, int], ...] = args["lines"]

    warehouse = ctx.read(keys.warehouse(w))
    district = ctx.read(keys.district(w, d))
    customer = ctx.read(keys.customer(w, d, c))

    # TPC-C's 1% deterministic rollback: an unused item id was supplied.
    items = []
    for item_id, _supply_w, _qty in lines:
        item = ctx.read(keys.item(w, item_id))
        if item is None:
            ctx.abort("invalid item id")
        items.append(item)

    ol_cnt = len(lines)
    entry = (o_id, ol_cnt)
    ctx.write(
        keys.district(w, d),
        {
            **district,
            "next_o_id": district["next_o_id"] + 1,
            "undelivered": district["undelivered"] + (entry,),
            "recent": (district["recent"] + (entry,))[-RECENT_ORDERS:],
        },
    )

    total = 0.0
    for number, (item_id, supply_w, qty) in enumerate(lines):
        stock = ctx.read(keys.stock(supply_w, item_id))
        quantity = stock["quantity"] - qty
        if quantity < 10:
            quantity += 91
        ctx.write(
            keys.stock(supply_w, item_id),
            {
                **stock,
                "quantity": quantity,
                "ytd": stock["ytd"] + qty,
                "order_cnt": stock["order_cnt"] + 1,
                "remote_cnt": stock["remote_cnt"] + (1 if supply_w != w else 0),
            },
        )
        amount = qty * items[number]["price"]
        total += amount
        ctx.write(
            keys.order_line(w, d, o_id, number),
            {
                "i_id": item_id,
                "supply_w": supply_w,
                "qty": qty,
                "amount": amount,
                "delivery_d": None,
            },
        )

    ctx.write(
        keys.order(w, d, o_id),
        {"c_id": c, "carrier": None, "ol_cnt": ol_cnt},
    )
    ctx.write(keys.customer_last_order(w, d, c), entry)
    total *= (1.0 - customer["discount"]) * (1.0 + warehouse["tax"] + district["tax"])
    return round(total, 2)


# ---------------------------------------------------------------------------
# Payment (independent)
# ---------------------------------------------------------------------------

def _apply_payment(
    ctx: TxnContext, w: int, d: int, c_w: int, c_d: int, c: int, amount: float
) -> float:
    warehouse = ctx.read(keys.warehouse(w))
    ctx.write(keys.warehouse(w), {**warehouse, "ytd": warehouse["ytd"] + amount})
    district = ctx.read(keys.district(w, d))
    ctx.write(keys.district(w, d), {**district, "ytd": district["ytd"] + amount})
    customer = ctx.read(keys.customer(c_w, c_d, c))
    balance = customer["balance"] - amount
    ctx.write(
        keys.customer(c_w, c_d, c),
        {
            **customer,
            "balance": balance,
            "ytd_payment": customer["ytd_payment"] + amount,
            "payment_cnt": customer["payment_cnt"] + 1,
        },
    )
    return balance


def payment_logic(ctx: TxnContext) -> float:
    args = ctx.args
    return _apply_payment(
        ctx, args["w"], args["d"], args["c_w"], args["c_d"], args["c"],
        args["amount"],
    )


# ---------------------------------------------------------------------------
# Payment by last name (dependent: TPC-C 2.5.2.2, 60% of Payments)
# ---------------------------------------------------------------------------

def _chosen_customer(ids: Tuple[int, ...]) -> int:
    """TPC-C: the ceil(n/2)-th customer (0-indexed: position n//2)."""
    return ids[len(ids) // 2]


def payment_by_name_reconnoiter(read_fn: ReadFn, args: Dict) -> Footprint:
    index_key = keys.customer_name_index(args["c_w"], args["c_d"], args["last"])
    ids = read_fn(index_key) or ()
    reads = {keys.warehouse(args["w"]), keys.district(args["w"], args["d"]), index_key}
    writes = {keys.warehouse(args["w"]), keys.district(args["w"], args["d"])}
    if ids:
        customer_key = keys.customer(args["c_w"], args["c_d"], _chosen_customer(ids))
        reads.add(customer_key)
        writes.add(customer_key)
    return Footprint.create(reads, writes, token=tuple(ids))


def payment_by_name_recheck(ctx: TxnContext) -> bool:
    args = ctx.args
    index_key = keys.customer_name_index(args["c_w"], args["c_d"], args["last"])
    return tuple(ctx.read(index_key) or ()) == ctx.txn.footprint_token


def payment_by_name_logic(ctx: TxnContext) -> float:
    args = ctx.args
    index_key = keys.customer_name_index(args["c_w"], args["c_d"], args["last"])
    ids = ctx.read(index_key) or ()
    if not ids:
        ctx.abort("no customer with that last name")
    return _apply_payment(
        ctx, args["w"], args["d"], args["c_w"], args["c_d"],
        _chosen_customer(ids), args["amount"],
    )


# ---------------------------------------------------------------------------
# Order Status (dependent, read-only)
# ---------------------------------------------------------------------------

def order_status_reconnoiter(read_fn: ReadFn, args: Dict) -> Footprint:
    w, d, c = args["w"], args["d"], args["c"]
    pointer_key = keys.customer_last_order(w, d, c)
    pointer = read_fn(pointer_key)
    reads = {keys.customer(w, d, c), pointer_key}
    if pointer is not None:
        o_id, ol_cnt = pointer
        reads.add(keys.order(w, d, o_id))
        reads.update(keys.order_line(w, d, o_id, n) for n in range(ol_cnt))
    return Footprint.create(reads, (), token=pointer)


def order_status_recheck(ctx: TxnContext) -> bool:
    args = ctx.args
    pointer_key = keys.customer_last_order(args["w"], args["d"], args["c"])
    return ctx.read(pointer_key) == ctx.txn.footprint_token


def _order_status(ctx: TxnContext, w: int, d: int, c: int) -> Dict:
    customer = ctx.read(keys.customer(w, d, c))
    pointer = ctx.read(keys.customer_last_order(w, d, c))
    if pointer is None:
        return {"balance": customer["balance"], "order": None, "lines": ()}
    o_id, ol_cnt = pointer
    order = ctx.read(keys.order(w, d, o_id))
    lines = tuple(
        ctx.read(keys.order_line(w, d, o_id, n)) for n in range(ol_cnt)
    )
    return {
        "balance": customer["balance"],
        "order": {"o_id": o_id, "carrier": order["carrier"]},
        "lines": tuple(
            {"i_id": line["i_id"], "qty": line["qty"], "amount": line["amount"]}
            for line in lines
        ),
    }


def order_status_logic(ctx: TxnContext) -> Dict:
    args = ctx.args
    return _order_status(ctx, args["w"], args["d"], args["c"])


# ---------------------------------------------------------------------------
# Order Status by last name (dependent, read-only; TPC-C 2.6.2.2)
# ---------------------------------------------------------------------------

def order_status_by_name_reconnoiter(read_fn: ReadFn, args: Dict) -> Footprint:
    w, d = args["w"], args["d"]
    index_key = keys.customer_name_index(w, d, args["last"])
    ids = read_fn(index_key) or ()
    reads = {index_key}
    pointer = None
    if ids:
        c = _chosen_customer(ids)
        pointer_key = keys.customer_last_order(w, d, c)
        pointer = read_fn(pointer_key)
        reads.add(keys.customer(w, d, c))
        reads.add(pointer_key)
        if pointer is not None:
            o_id, ol_cnt = pointer
            reads.add(keys.order(w, d, o_id))
            reads.update(keys.order_line(w, d, o_id, n) for n in range(ol_cnt))
    return Footprint.create(reads, (), token=(tuple(ids), pointer))


def order_status_by_name_recheck(ctx: TxnContext) -> bool:
    args = ctx.args
    w, d = args["w"], args["d"]
    ids_token, pointer_token = ctx.txn.footprint_token
    index_key = keys.customer_name_index(w, d, args["last"])
    ids = tuple(ctx.read(index_key) or ())
    if ids != ids_token:
        return False
    if not ids:
        return pointer_token is None
    c = _chosen_customer(ids)
    return ctx.read(keys.customer_last_order(w, d, c)) == pointer_token


def order_status_by_name_logic(ctx: TxnContext) -> Dict:
    args = ctx.args
    w, d = args["w"], args["d"]
    ids = ctx.read(keys.customer_name_index(w, d, args["last"])) or ()
    if not ids:
        ctx.abort("no customer with that last name")
    return _order_status(ctx, w, d, _chosen_customer(ids))


# ---------------------------------------------------------------------------
# Delivery (dependent: footprint is the oldest undelivered order per district)
# ---------------------------------------------------------------------------

def delivery_reconnoiter(read_fn: ReadFn, args: Dict) -> Footprint:
    w, districts = args["w"], args["districts"]
    reads, writes, heads = set(), set(), []
    for d in range(districts):
        district_key = keys.district(w, d)
        reads.add(district_key)
        district = read_fn(district_key)
        queue = district["undelivered"] if district else ()
        if not queue:
            # Empty queue: the logic only reads the district and moves
            # on, so no write lock — declaring one anyway (as this used
            # to) showed up in the footprint audit as ~6% over-declared
            # delivery writes, pure contention on the hottest keys. If
            # the queue gains a head before execution, the token check
            # in delivery_recheck restarts the transaction.
            heads.append(None)
            continue
        writes.add(district_key)
        o_id, ol_cnt = queue[0]
        heads.append((o_id, ol_cnt))
        order_key = keys.order(w, d, o_id)
        reads.add(order_key)
        writes.add(order_key)
        order = read_fn(order_key)
        customer_key = keys.customer(w, d, order["c_id"] if order else 0)
        reads.add(customer_key)
        writes.add(customer_key)
        for n in range(ol_cnt):
            line_key = keys.order_line(w, d, o_id, n)
            reads.add(line_key)
            writes.add(line_key)
    return Footprint.create(reads, writes, token=tuple(heads))


def delivery_recheck(ctx: TxnContext) -> bool:
    args = ctx.args
    w, districts = args["w"], args["districts"]
    token = ctx.txn.footprint_token
    for d in range(districts):
        district = ctx.read(keys.district(w, d))
        queue = district["undelivered"] if district else ()
        head = queue[0] if queue else None
        if head != token[d]:
            return False
    return True


def delivery_logic(ctx: TxnContext) -> int:
    args = ctx.args
    w, districts, carrier = args["w"], args["districts"], args["carrier"]
    delivered = 0
    for d in range(districts):
        district_key = keys.district(w, d)
        district = ctx.read(district_key)
        queue = district["undelivered"]
        if not queue:
            continue
        o_id, ol_cnt = queue[0]
        ctx.write(district_key, {**district, "undelivered": queue[1:]})
        order_key = keys.order(w, d, o_id)
        order = ctx.read(order_key)
        ctx.write(order_key, {**order, "carrier": carrier})
        total = 0.0
        for n in range(ol_cnt):
            line_key = keys.order_line(w, d, o_id, n)
            line = ctx.read(line_key)
            total += line["amount"]
            ctx.write(line_key, {**line, "delivery_d": carrier})
        customer_key = keys.customer(w, d, order["c_id"])
        customer = ctx.read(customer_key)
        ctx.write(
            customer_key,
            {
                **customer,
                "balance": customer["balance"] + total,
                "delivery_cnt": customer["delivery_cnt"] + 1,
            },
        )
        delivered += 1
    return delivered


# ---------------------------------------------------------------------------
# Stock Level (dependent, read-only, two-hop reconnaissance)
# ---------------------------------------------------------------------------

def stock_level_reconnoiter(read_fn: ReadFn, args: Dict) -> Footprint:
    w, d = args["w"], args["d"]
    district_key = keys.district(w, d)
    district = read_fn(district_key)
    recent = district["recent"] if district else ()
    reads = {district_key}
    for o_id, ol_cnt in recent:
        for n in range(ol_cnt):
            line_key = keys.order_line(w, d, o_id, n)
            reads.add(line_key)
            line = read_fn(line_key)
            if line is not None:
                reads.add(keys.stock(line["supply_w"], line["i_id"]))
    return Footprint.create(reads, (), token=recent)


def stock_level_recheck(ctx: TxnContext) -> bool:
    args = ctx.args
    district = ctx.read(keys.district(args["w"], args["d"]))
    return district["recent"] == ctx.txn.footprint_token


def stock_level_logic(ctx: TxnContext) -> int:
    args = ctx.args
    w, d, threshold = args["w"], args["d"], args["threshold"]
    district = ctx.read(keys.district(w, d))
    low_items = set()
    for o_id, ol_cnt in district["recent"]:
        for n in range(ol_cnt):
            line = ctx.read(keys.order_line(w, d, o_id, n))
            if line is None:
                continue
            stock = ctx.read(keys.stock(line["supply_w"], line["i_id"]))
            if stock is not None and stock["quantity"] < threshold:
                low_items.add((line["supply_w"], line["i_id"]))
    return len(low_items)


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

def register_procedures(registry: ProcedureRegistry) -> None:
    """Install all five TPC-C procedures."""
    registry.register(Procedure("new_order", new_order_logic, logic_cpu=120e-6))
    registry.register(Procedure("payment", payment_logic, logic_cpu=40e-6))
    registry.register(
        Procedure(
            "payment_by_name",
            payment_by_name_logic,
            logic_cpu=45e-6,
            reconnoiter=payment_by_name_reconnoiter,
            recheck=payment_by_name_recheck,
        )
    )
    registry.register(
        Procedure(
            "order_status",
            order_status_logic,
            logic_cpu=30e-6,
            reconnoiter=order_status_reconnoiter,
            recheck=order_status_recheck,
        )
    )
    registry.register(
        Procedure(
            "order_status_by_name",
            order_status_by_name_logic,
            logic_cpu=35e-6,
            reconnoiter=order_status_by_name_reconnoiter,
            recheck=order_status_by_name_recheck,
        )
    )
    registry.register(
        Procedure(
            "delivery",
            delivery_logic,
            logic_cpu=150e-6,
            reconnoiter=delivery_reconnoiter,
            recheck=delivery_recheck,
        )
    )
    registry.register(
        Procedure(
            "stock_level",
            stock_level_logic,
            logic_cpu=100e-6,
            reconnoiter=stock_level_reconnoiter,
            recheck=stock_level_recheck,
        )
    )

"""TPC-C initial database population.

Deterministic (no RNG): two independently built clusters load
byte-identical data, which the replay/recovery checkers require.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro.errors import ConfigError
from repro.workloads.tpcc import keys


@dataclass(frozen=True)
class TpccScale:
    """Scale factors (defaults are laptop-sized, all knobs adjustable)."""

    warehouses_per_partition: int = 4
    districts_per_warehouse: int = 10
    customers_per_district: int = 100
    items: int = 1000

    def __post_init__(self) -> None:
        if min(
            self.warehouses_per_partition,
            self.districts_per_warehouse,
            self.customers_per_district,
            self.items,
        ) < 1:
            raise ConfigError("all TPC-C scale factors must be >= 1")

    def total_warehouses(self, num_partitions: int) -> int:
        return self.warehouses_per_partition * num_partitions


# TPC-C 4.3.2.3: last names are concatenations of three syllables.
NAME_SYLLABLES = (
    "BAR", "OUGHT", "ABLE", "PRI", "PRES",
    "ESE", "ANTI", "CALLY", "ATION", "EING",
)


def customer_last_name(number: int) -> str:
    """The TPC-C syllable name for ``number % 1000`` (e.g. 371 -> PRIANTIOUGHT)."""
    digits = f"{number % 1000:03d}"
    return "".join(NAME_SYLLABLES[int(d)] for d in digits)


def _item_price(i: int) -> float:
    """Deterministic stand-in for TPC-C's random item price (1.00-100.00)."""
    return 1.0 + (i * 37 % 9901) / 100.0


def _initial_stock(i: int) -> int:
    """Deterministic stand-in for TPC-C's random initial stock (10-100)."""
    return 10 + (i * 13) % 91


def build_initial_data(scale: TpccScale, num_partitions: int) -> Dict[Any, Any]:
    """The full initial key space for ``num_partitions`` partitions."""
    data: Dict[Any, Any] = {}
    total_warehouses = scale.total_warehouses(num_partitions)
    for w in range(total_warehouses):
        data[keys.warehouse(w)] = {"ytd": 0.0, "tax": 0.05 + (w % 10) / 200.0}
        for i in range(scale.items):
            data[keys.item(w, i)] = {"price": _item_price(i), "name": f"item-{i}"}
            data[keys.stock(w, i)] = {
                "quantity": _initial_stock(i),
                "ytd": 0,
                "order_cnt": 0,
                "remote_cnt": 0,
            }
        for d in range(scale.districts_per_warehouse):
            data[keys.district(w, d)] = {
                "next_o_id": 1,
                "ytd": 0.0,
                "tax": 0.05 + (d % 10) / 200.0,
                # FIFO of (o_id, ol_cnt) awaiting Delivery.
                "undelivered": (),
                # Last-20 (o_id, ol_cnt), Stock Level's working set.
                "recent": (),
            }
            names = {}
            for c in range(scale.customers_per_district):
                name = customer_last_name(c)
                names.setdefault(name, []).append(c)
                data[keys.customer(w, d, c)] = {
                    "balance": -10.0,
                    "ytd_payment": 10.0,
                    "payment_cnt": 1,
                    "delivery_cnt": 0,
                    "discount": (c % 50) / 100.0,
                    "credit": "GC" if c % 10 else "BC",
                    "last": name,
                }
            for name, ids in names.items():
                data[keys.customer_name_index(w, d, name)] = tuple(sorted(ids))
    return data

"""TPC-C key constructors.

Every key is a tuple whose second element is the owning warehouse id, so
warehouse-based partitioning is a lookup of ``key[1]``. Values are plain
dicts treated as immutable: procedures always write fresh dicts, never
mutate a read value (stores hand out references, not copies).
"""

from __future__ import annotations

from typing import Tuple

Key = Tuple


def warehouse(w: int) -> Key:
    return ("warehouse", w)


def district(w: int, d: int) -> Key:
    return ("district", w, d)


def customer(w: int, d: int, c: int) -> Key:
    return ("customer", w, d, c)


def item(w: int, i: int) -> Key:
    """The ITEM table is read-only and replicated per warehouse (w's copy)."""
    return ("item", w, i)


def stock(w: int, i: int) -> Key:
    return ("stock", w, i)


def order(w: int, d: int, o: int) -> Key:
    return ("order", w, d, o)


def order_line(w: int, d: int, o: int, number: int) -> Key:
    return ("order_line", w, d, o, number)


def customer_last_order(w: int, d: int, c: int) -> Key:
    """Pointer maintained by New Order; Order Status's reconnaissance target."""
    return ("customer_last_order", w, d, c)


def customer_name_index(w: int, d: int, name: str) -> Key:
    """Secondary index: last name -> sorted tuple of customer ids.

    Static after load (no customer churn), maintained by the loader;
    Payment/Order-Status by last name reconnoiter through it (TPC-C
    2.5.2.2: pick the ceil(n/2)-th customer by that name)."""
    return ("customer_name_idx", w, d, name)


def warehouse_of(key: Key) -> int:
    return key[1]

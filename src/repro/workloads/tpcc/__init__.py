"""TPC-C-style workload (the paper's Section 6.1 benchmark).

A faithful-in-structure adaptation of TPC-C to Calvin's key/value model:

- partitioned **by warehouse** (the paper's layout); the read-only ITEM
  table is replicated into every warehouse, again as in the paper;
- all five transaction types: New Order and Payment are *independent*
  (footprint known up front — order ids are assigned client-side so New
  Order's write set is static); Order Status, Delivery and Stock Level
  are *dependent* and go through OLLP reconnaissance;
- New Order includes TPC-C's 1% invalid-item deterministic rollback and
  the 10% remote-warehouse stock updates that make transactions
  multipartition (Figure 5's "10% multi-warehouse" workload is
  ``TpccWorkload(mix={"new_order": 1.0})``).

Simplifications (documented for reviewers): customer selection is always
by id (no last-name secondary index); history records are folded into
customer/warehouse ytd fields; scale factors default far below TPC-C's
(items, customers) to keep simulated stores small — all knobs are
constructor arguments.
"""

from repro.workloads.tpcc import keys
from repro.workloads.tpcc.loader import TpccScale, build_initial_data
from repro.workloads.tpcc.workload import TpccWorkload

__all__ = ["TpccScale", "TpccWorkload", "build_initial_data", "keys"]

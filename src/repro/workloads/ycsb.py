"""A YCSB-style key/value workload with Zipfian skew.

Not from the Calvin paper, but the de-facto standard for key/value
stores; it complements the microbenchmark by (a) mixing reads and
read-modify-writes in configurable proportions and (b) using a Zipfian
popularity distribution, which stresses the deterministic lock manager
with *naturally* skewed (rather than hot-set) contention. Used by the
skew ablation benchmark.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Any, Dict, List

from repro.errors import ConfigError
from repro.partition.catalog import Catalog
from repro.partition.partitioner import FuncPartitioner, Key, Partitioner, sort_token
from repro.txn.procedures import Procedure, ProcedureRegistry
from repro.workloads.base import TxnSpec, Workload


class ZipfGenerator:
    """Draws ranks in [0, n) with P(rank) ∝ 1/(rank+1)^theta.

    Exact inverse-CDF sampling over a precomputed table — O(log n) per
    draw, deterministic given the caller's RNG.
    """

    def __init__(self, n: int, theta: float):
        if n < 1:
            raise ConfigError("zipf universe must be >= 1")
        if theta < 0:
            raise ConfigError("zipf theta must be >= 0")
        self.n = n
        self.theta = theta
        weights = [1.0 / math.pow(rank + 1, theta) for rank in range(n)]
        total = sum(weights)
        cumulative = []
        running = 0.0
        for weight in weights:
            running += weight
            cumulative.append(running / total)
        self._cumulative = cumulative

    def sample(self, rng: random.Random) -> int:
        return bisect.bisect_left(self._cumulative, rng.random())


def _read_logic(ctx) -> Dict:
    return {key: ctx.read(key) for key in ctx.txn.sorted_reads()}


def _update_logic(ctx) -> int:
    updated = 0
    for key in ctx.txn.sorted_writes():
        value = ctx.read(key) or 0
        ctx.write(key, value + 1)
        updated += 1
    return updated


class YcsbWorkload(Workload):
    """Zipfian-skewed point reads and read-modify-writes.

    ``theta`` is the Zipf exponent (0 = uniform; YCSB's default is
    0.99). ``read_fraction`` of transactions are read-only; the rest
    read-modify-write every key they touch. ``keys_per_txn`` keys are
    drawn per transaction, ``mp_fraction`` of transactions spread them
    over two partitions.
    """

    name = "ycsb"

    def __init__(
        self,
        records_per_partition: int = 10000,
        keys_per_txn: int = 4,
        theta: float = 0.99,
        read_fraction: float = 0.5,
        mp_fraction: float = 0.1,
        logic_cpu: float = 30e-6,
    ):
        if records_per_partition < keys_per_txn:
            raise ConfigError("records_per_partition must cover keys_per_txn")
        if keys_per_txn < 1:
            raise ConfigError("keys_per_txn must be >= 1")
        if not 0.0 <= read_fraction <= 1.0:
            raise ConfigError("read_fraction must be in [0, 1]")
        if not 0.0 <= mp_fraction <= 1.0:
            raise ConfigError("mp_fraction must be in [0, 1]")
        self.records_per_partition = records_per_partition
        self.keys_per_txn = keys_per_txn
        self.theta = theta
        self.read_fraction = read_fraction
        self.mp_fraction = mp_fraction
        self.logic_cpu = logic_cpu
        self._zipf = ZipfGenerator(records_per_partition, theta)

    def register(self, registry: ProcedureRegistry) -> None:
        registry.register(Procedure("ycsb_read", _read_logic, logic_cpu=self.logic_cpu))
        registry.register(
            Procedure("ycsb_update", _update_logic, logic_cpu=self.logic_cpu)
        )

    def build_partitioner(self, num_partitions: int) -> Partitioner:
        return FuncPartitioner(num_partitions, lambda key: key[1])

    def initial_data(self, catalog: Catalog) -> Dict[Key, Any]:
        return {
            ("ycsb", partition, index): 0
            for partition in range(catalog.num_partitions)
            for index in range(self.records_per_partition)
        }

    def _draw_keys(self, rng: random.Random, partition: int, count: int) -> List[Key]:
        keys = set()
        while len(keys) < count:
            keys.add(("ycsb", partition, self._zipf.sample(rng)))
        return sorted(keys, key=sort_token)

    def generate(
        self, rng: random.Random, origin_partition: int, catalog: Catalog
    ) -> TxnSpec:
        multipartition = (
            catalog.num_partitions > 1 and rng.random() < self.mp_fraction
        )
        if multipartition and self.keys_per_txn > 1:
            partner = rng.randrange(catalog.num_partitions - 1)
            if partner >= origin_partition:
                partner += 1
            local = self.keys_per_txn - self.keys_per_txn // 2
            keys = self._draw_keys(rng, origin_partition, local)
            keys += self._draw_keys(rng, partner, self.keys_per_txn // 2)
        else:
            keys = self._draw_keys(rng, origin_partition, self.keys_per_txn)
        key_set = frozenset(keys)
        if rng.random() < self.read_fraction:
            return TxnSpec("ycsb_read", None, key_set, frozenset())
        return TxnSpec("ycsb_update", None, key_set, key_set)

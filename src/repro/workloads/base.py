"""Workload interface.

A workload bundles everything a benchmark needs: the stored procedures,
the initial database contents, and a generator of transaction requests.
Clients call :meth:`Workload.generate` to get the next request spec; the
cluster turns specs into sequenced transactions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Optional

from repro.partition.catalog import Catalog
from repro.partition.partitioner import Key, Partitioner
from repro.txn.procedures import ProcedureRegistry


@dataclass(frozen=True)
class TxnSpec:
    """A client-side transaction request before sequencing."""

    procedure: str
    args: Any
    read_set: FrozenSet[Key]
    write_set: FrozenSet[Key]
    dependent: bool = False

    @staticmethod
    def create(procedure: str, args: Any, read_set, write_set, dependent: bool = False):
        return TxnSpec(
            procedure=procedure,
            args=args,
            read_set=frozenset(read_set),
            write_set=frozenset(write_set),
            dependent=dependent,
        )


class Workload:
    """Base class for benchmark workloads."""

    name = "workload"

    def register(self, registry: ProcedureRegistry) -> None:
        """Register this workload's stored procedures."""
        raise NotImplementedError

    def build_partitioner(self, num_partitions: int) -> Partitioner:
        """The partitioner this workload is designed for."""
        raise NotImplementedError

    def initial_data(self, catalog: Catalog) -> Dict[Key, Any]:
        """The loaded database contents (whole key space)."""
        raise NotImplementedError

    def generate(
        self, rng: random.Random, origin_partition: int, catalog: Catalog
    ) -> TxnSpec:
        """The next transaction request from a client at ``origin_partition``."""
        raise NotImplementedError

    def cold_predicate(self) -> Optional[Callable[[Key], bool]]:
        """Which keys live on the cold (disk) tier; None = all memory."""
        return None

"""The paper's microbenchmark (Section 6.2).

Each transaction reads and updates 10 records. One record per involved
partition comes from that partition's small *hot* set — the knob that
sets contention: **contention index = 1 / hot_set_size** (paper
Section 6.3). The rest come from the large cold set. A multipartition
transaction involves two partitions: one hot record on each, with the
remaining cold accesses split evenly.

Knobs:

- ``mp_fraction`` — fraction of multipartition transactions (Fig. 6
  sweeps 0% / 10% / 100%).
- ``hot_set_size`` — per-partition hot set size (Fig. 7 sweeps the
  contention index 1/hot_set_size).
- ``archive_fraction`` — fraction of transactions that touch one record
  from the disk-resident archive tier (Section 4 experiments).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigError
from repro.partition.catalog import Catalog
from repro.partition.partitioner import FuncPartitioner, Key, Partitioner
from repro.txn.procedures import Procedure, ProcedureRegistry
from repro.workloads.base import TxnSpec, Workload

RECORDS_PER_TXN = 10


def _bump(ctx) -> int:
    """Microbenchmark logic: read all records, write each incremented."""
    total = 0
    read, write = ctx.read, ctx.write
    for key in ctx.txn.sorted_writes():
        value = read(key) or 0
        total += value
        write(key, value + 1)
    return total


class Microbenchmark(Workload):
    """Synthetic read-modify-write workload with tunable contention."""

    name = "microbenchmark"

    def __init__(
        self,
        hot_set_size: int = 1000,
        cold_set_size: int = 10000,
        archive_set_size: int = 50000,
        mp_fraction: float = 0.0,
        archive_fraction: float = 0.0,
        logic_cpu: float = 50e-6,
        partitions_per_txn: int = 2,
    ):
        if hot_set_size < 1:
            raise ConfigError("hot_set_size must be >= 1")
        if cold_set_size < RECORDS_PER_TXN:
            raise ConfigError(f"cold_set_size must be >= {RECORDS_PER_TXN}")
        if not 0.0 <= mp_fraction <= 1.0:
            raise ConfigError("mp_fraction must be in [0, 1]")
        if not 0.0 <= archive_fraction <= 1.0:
            raise ConfigError("archive_fraction must be in [0, 1]")
        if not 2 <= partitions_per_txn <= RECORDS_PER_TXN:
            raise ConfigError(
                f"partitions_per_txn must be in [2, {RECORDS_PER_TXN}]"
            )
        self.hot_set_size = hot_set_size
        self.cold_set_size = cold_set_size
        self.archive_set_size = archive_set_size
        self.mp_fraction = mp_fraction
        self.archive_fraction = archive_fraction
        self.logic_cpu = logic_cpu
        # Participants of a multipartition transaction (the paper uses
        # 2; the fan-out ablation sweeps it).
        self.partitions_per_txn = partitions_per_txn
        # Reused sample population (identical draws, no range per call).
        self._cold_range = range(cold_set_size)

    @property
    def contention_index(self) -> float:
        """The paper's contention measure: 1 / hot set size."""
        return 1.0 / self.hot_set_size

    # -- Workload interface ---------------------------------------------------

    def register(self, registry: ProcedureRegistry) -> None:
        registry.register(
            Procedure(name="micro", logic=_bump, logic_cpu=self.logic_cpu)
        )

    def build_partitioner(self, num_partitions: int) -> Partitioner:
        # Keys embed their partition explicitly: ("hot"|"cold"|"arch", p, i).
        return FuncPartitioner(num_partitions, lambda key: key[1])

    def initial_data(self, catalog: Catalog) -> Dict[Key, Any]:
        data: Dict[Key, Any] = {}
        for partition in range(catalog.num_partitions):
            for index in range(self.hot_set_size):
                data[("hot", partition, index)] = 0
            for index in range(self.cold_set_size):
                data[("cold", partition, index)] = 0
            if self.archive_fraction > 0:
                for index in range(self.archive_set_size):
                    data[("arch", partition, index)] = 0
        return data

    def cold_predicate(self) -> Optional[Callable[[Key], bool]]:
        if self.archive_fraction <= 0:
            return None
        return lambda key: key[0] == "arch"

    def generate(
        self, rng: random.Random, origin_partition: int, catalog: Catalog
    ) -> TxnSpec:
        num_partitions = catalog.num_partitions
        multipartition = (
            num_partitions > 1 and rng.random() < self.mp_fraction
        )
        keys: List[Key] = []
        append = keys.append
        sample = rng.sample
        cold_range = self._cold_range
        if multipartition:
            fanout = min(self.partitions_per_txn, num_partitions)
            others = [p for p in range(num_partitions) if p != origin_partition]
            partitions = [origin_partition] + sample(others, fanout - 1)
            cold_each = (RECORDS_PER_TXN - fanout) // fanout
            for partition in partitions:
                append(("hot", partition, rng.randrange(self.hot_set_size)))
                for index in sample(cold_range, cold_each):
                    append(("cold", partition, index))
        else:
            append(("hot", origin_partition, rng.randrange(self.hot_set_size)))
            for index in sample(cold_range, RECORDS_PER_TXN - 1):
                append(("cold", origin_partition, index))

        if self.archive_fraction > 0 and rng.random() < self.archive_fraction:
            # Swap the last cold access for an archive (disk-tier) record.
            keys[-1] = ("arch", origin_partition, rng.randrange(self.archive_set_size))

        key_set = frozenset(keys)
        return TxnSpec("micro", None, read_set=key_set, write_set=key_set)

"""Build the accelerated kernel in place.

Two tiers, both optional, both leaving the pure-Python reference
implementation untouched:

* **Tier 0 — C dispatch core** (``python -m repro.accel.build``):
  compiles ``_accelcore.c`` with the local C compiler via setuptools.
  No dependencies beyond a working compiler and CPython headers.

* **Tier 1 — mypyc batch build** (``python -m repro.accel.build
  --mypyc``): whole-module compilation of the lock manager and the
  network hot path. Requires mypy (``pip install -e .[accel]``); when
  mypy is absent this tier reports itself unavailable and exits 0 so
  automation can always run the default tier.

``pip install -e .[accel]`` pulls in the mypyc toolchain; set
``REPRO_BUILD_ACCEL=1`` during install to build tier 0 as part of the
wheel (see setup.py — the build is failure-tolerant so a missing
compiler never breaks a pure install).
"""

from __future__ import annotations

import argparse
import os
import shutil
import sys
import tempfile
from pathlib import Path

PACKAGE_DIR = Path(__file__).resolve().parent
C_SOURCE = PACKAGE_DIR / "_accelcore.c"

# Tier-1 targets: modules mypyc compiles wholesale. The dispatch loop
# itself is excluded — tier 0 covers it with a hand-written core that
# the digest tests exercise directly.
MYPYC_TARGETS = (
    "src/repro/scheduler/lockmanager.py",
    "src/repro/sim/network.py",
)


def build_c_core(verbose: bool = True) -> Path:
    """Compile ``_accelcore`` in place; returns the built extension path."""
    from setuptools import Distribution, Extension

    extension = Extension(
        "repro.accel._accelcore",
        sources=[str(C_SOURCE)],
        optional=False,
    )
    build_temp = tempfile.mkdtemp(prefix="repro-accel-build-")
    try:
        dist = Distribution({"name": "repro-accel", "ext_modules": [extension]})
        cmd = dist.get_command_obj("build_ext")
        cmd.inplace = False
        cmd.build_temp = build_temp
        cmd.build_lib = build_temp
        cmd.ensure_finalized()
        cmd.run()
        built = Path(cmd.get_ext_fullpath("repro.accel._accelcore"))
        target = PACKAGE_DIR / built.name
        shutil.copy2(built, target)
    finally:
        shutil.rmtree(build_temp, ignore_errors=True)
    if verbose:
        print(f"built {target}")
    return target


def clean() -> int:
    """Remove built extensions (restores the pure-Python-only tree)."""
    removed = 0
    for pattern in ("_accelcore*.so", "_accelcore*.pyd"):
        for path in PACKAGE_DIR.glob(pattern):
            path.unlink()
            print(f"removed {path}")
            removed += 1
    return removed


def mypyc_available() -> bool:
    try:
        import mypyc  # noqa: F401
    except ImportError:
        return False
    return True


def build_mypyc(verbose: bool = True) -> bool:
    """Tier 1: compile MYPYC_TARGETS with mypyc. Returns False when
    mypyc is not installed (not an error — the tier is optional)."""
    if not mypyc_available():
        if verbose:
            print(
                "mypyc not installed; skipping tier-1 build "
                "(pip install -e .[accel] to enable)"
            )
        return False
    import subprocess

    repo_root = PACKAGE_DIR.parents[2]
    targets = [str(repo_root / t) for t in MYPYC_TARGETS if (repo_root / t).exists()]
    if verbose:
        print(f"mypyc: compiling {len(targets)} modules")
    env = dict(os.environ, MYPYPATH=str(repo_root / "src"))
    result = subprocess.run(
        [sys.executable, "-m", "mypyc", *targets], cwd=str(repo_root), env=env
    )
    return result.returncode == 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.accel.build",
        description="Build the optional accelerated kernel in place.",
    )
    parser.add_argument(
        "--mypyc",
        action="store_true",
        help="also attempt the tier-1 mypyc batch build (needs mypy)",
    )
    parser.add_argument(
        "--clean", action="store_true", help="remove built extensions and exit"
    )
    args = parser.parse_args(argv)
    if args.clean:
        clean()
        return 0
    build_c_core()
    if args.mypyc:
        build_mypyc()
    from repro.accel import accel_status

    print(f"accel status after build (this process): {accel_status()}")
    print("new processes auto-detect the extension; REPRO_ACCEL=0 disables it")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Optional accelerated kernel path.

``repro.accel`` holds the compiled fast path for the simulator's
hottest code. Tier 0 is ``_accelcore``, a small C extension
re-implementing the two dispatch loops of
:class:`repro.sim.kernel.Simulator` (``run`` and
``run_until_triggered``) with the heap sift inlined; tier 1 is an
optional mypyc batch-build of the lock manager and network modules
(see :mod:`repro.accel.build`). The pure-Python implementations are
always present and remain the reference: golden trace digests must be
bit-identical between the two paths (tests/test_accel.py).

Runtime selection is via the ``REPRO_ACCEL`` environment variable:

* ``REPRO_ACCEL=0`` — never use the compiled path, even if built.
* ``REPRO_ACCEL=1`` — require it; raise at first use if not built.
* unset (or anything else) — auto: use the compiled path when the
  extension imports, fall back to pure Python otherwise.

Build it in place with ``python -m repro.accel.build`` or via the
packaging extra (``pip install -e .[accel]`` + ``REPRO_BUILD_ACCEL=1``);
see docs/performance.md ("Building the accelerated kernel").
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

# Selection knob, not simulation input: which *implementation* of the
# identical-output kernel runs. Digest tests prove the two paths agree.
_MODE = os.environ.get("REPRO_ACCEL", "auto").strip()  # det: allow[DET005] implementation-selection knob, output is digest-identical either way
if _MODE not in ("0", "1"):
    _MODE = "auto"

_core = None
_import_error: Optional[str] = None
try:
    from repro.accel import _accelcore as _core  # type: ignore[no-redef]
except ImportError as exc:  # extension not built — the common case
    _import_error = str(exc)

# Test hook: force-enable/disable regardless of mode (set via force()).
_forced: Optional[bool] = None


def dispatch_core():
    """The compiled core module to dispatch through, or ``None``.

    Called once per ``Simulator.run``/``run_until_triggered`` invocation
    (not per event), so selection can change between runs — the
    equivalence tests run both paths in one process via :func:`force`.
    """
    if _forced is not None:
        return _core if _forced else None
    if _MODE == "0":
        return None
    if _core is None and _MODE == "1":
        raise RuntimeError(
            "REPRO_ACCEL=1 but the accelerated kernel is not built "
            f"(import failed: {_import_error}); build it with "
            "`python -m repro.accel.build` or unset REPRO_ACCEL"
        )
    return _core


def force(enabled: Optional[bool]) -> None:
    """Test hook: ``True``/``False`` overrides REPRO_ACCEL; ``None`` restores it."""
    global _forced
    if enabled and _core is None:
        raise RuntimeError(
            f"cannot force the accelerated kernel: extension not built ({_import_error})"
        )
    _forced = enabled


def accel_available() -> bool:
    """True when the compiled extension imported successfully."""
    return _core is not None


def accel_active() -> bool:
    """True when new simulator runs will dispatch through the compiled core."""
    try:
        return dispatch_core() is not None
    except RuntimeError:
        return False


def accel_status() -> Dict[str, Any]:
    """Diagnostic snapshot (surfaced by ``repro bench perf`` and tests)."""
    return {
        "mode": _MODE,
        "available": accel_available(),
        "active": accel_active(),
        "forced": _forced,
        "import_error": _import_error,
    }

/* The compiled dispatch core: the Simulator's two drain loops in C.
 *
 * This module is the tier-0 accelerated kernel path (see
 * docs/performance.md).  It re-implements `Simulator.run` and
 * `Simulator.run_until_triggered` — the hottest loops in the repository
 * — with the heap sift inlined, eliminating the interpreter overhead of
 * the loop itself (peek, pop, time bookkeeping, suspend check, budget
 * guard).  Event handlers remain ordinary Python callables.
 *
 * The contract is *bit-identical* behaviour: every branch below mirrors
 * the pure-Python loop in repro/sim/kernel.py line for line, the heap
 * pop copies CPython heapq's exact sift algorithm (so the heap's
 * internal layout — and therefore every subsequent pop — matches what
 * heapq.heappop would have produced), and `sim.now` is assigned the
 * *same objects* the Python loop assigns.  The golden trace digests in
 * tests/test_accel.py assert the equivalence for every golden row.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* Cached attribute/interned names (created once at module init). */
static PyObject *str_now;
static PyObject *str_heap;
static PyObject *str_suspended;
static PyObject *str_parked;
static PyObject *str_events_executed;
static PyObject *str_triggered;
static PyObject *str_callbacks;

/* repro.errors.SimulationError, resolved lazily on first use. */
static PyObject *simulation_error = NULL;

static PyObject *
get_simulation_error(void)
{
    if (simulation_error == NULL) {
        PyObject *module = PyImport_ImportModule("repro.errors");
        if (module == NULL)
            return NULL;
        simulation_error = PyObject_GetAttrString(module, "SimulationError");
        Py_DECREF(module);
    }
    return simulation_error;
}

/* entry_lt(a, b): `a < b` for two heap entries.
 *
 * Entries are `(time, seq, fn, args, owner)` tuples with unique integer
 * seq, so lexicographic comparison always resolves within the first two
 * items — the fast path compares a pair of C doubles and a pair of
 * longs.  Anything unexpected falls back to PyObject_RichCompareBool on
 * the full tuples, which is exactly what heapq does.
 * Returns 1 / 0, or -1 on error. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b) &&
        PyTuple_GET_SIZE(a) >= 2 && PyTuple_GET_SIZE(b) >= 2) {
        PyObject *ta = PyTuple_GET_ITEM(a, 0);
        PyObject *tb = PyTuple_GET_ITEM(b, 0);
        if (PyFloat_CheckExact(ta) && PyFloat_CheckExact(tb)) {
            double da = PyFloat_AS_DOUBLE(ta);
            double db = PyFloat_AS_DOUBLE(tb);
            /* Scheduled times are never NaN (delay >= 0 is enforced), so
             * trichotomy holds and this matches float.__lt__. */
            if (da < db)
                return 1;
            if (da > db)
                return 0;
            PyObject *sa = PyTuple_GET_ITEM(a, 1);
            PyObject *sb = PyTuple_GET_ITEM(b, 1);
            if (PyLong_CheckExact(sa) && PyLong_CheckExact(sb)) {
                int overflow_a, overflow_b;
                long la = PyLong_AsLongAndOverflow(sa, &overflow_a);
                long lb = PyLong_AsLongAndOverflow(sb, &overflow_b);
                if (!overflow_a && !overflow_b && (la != -1 || !PyErr_Occurred()))
                    return la < lb;
                PyErr_Clear();
            }
        }
    }
    return PyObject_RichCompareBool(a, b, Py_LT);
}

/* _siftup / _siftdown: verbatim ports of CPython heapq's C algorithm.
 * The layout the heap is left in (not just the popped item) must match
 * the reference implementation, because later pushes interleave. */
static int
siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int cmp = entry_lt(newitem, parent);
        if (cmp < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!cmp)
            break;
        Py_INCREF(parent);
        PyObject *old = PyList_GET_ITEM(heap, pos);
        PyList_SET_ITEM(heap, pos, parent);
        Py_DECREF(old);
        pos = parentpos;
    }
    PyObject *old = PyList_GET_ITEM(heap, pos);
    PyList_SET_ITEM(heap, pos, newitem);
    Py_DECREF(old);
    return 0;
}

static int
siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t startpos = pos;
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    /* Bubble the smaller child up until hitting a leaf. */
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int cmp = entry_lt(PyList_GET_ITEM(heap, childpos),
                               PyList_GET_ITEM(heap, rightpos));
            if (cmp < 0) {
                Py_DECREF(newitem);
                return -1;
            }
            if (!cmp)
                childpos = rightpos;
            /* The list must not have shrunk under the comparison. */
            if (endpos != PyList_GET_SIZE(heap)) {
                Py_DECREF(newitem);
                PyErr_SetString(PyExc_RuntimeError,
                                "list changed size during iteration");
                return -1;
            }
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        PyObject *old = PyList_GET_ITEM(heap, pos);
        PyList_SET_ITEM(heap, pos, child);
        Py_DECREF(old);
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    /* The leaf at pos is empty now.  Put newitem there and bubble it up
     * to its final resting place (by sifting its parents down). */
    PyObject *old = PyList_GET_ITEM(heap, pos);
    PyList_SET_ITEM(heap, pos, newitem);
    Py_DECREF(old);
    return siftdown(heap, startpos, pos);
}

/* heappop(heap) — identical to heapq.heappop.  Returns a new reference,
 * NULL on error.  The heap is known non-empty. */
static PyObject *
heappop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap) - 1;
    PyObject *lastelt = PyList_GET_ITEM(heap, n);
    Py_INCREF(lastelt);
    if (PyList_SetSlice(heap, n, n + 1, NULL) < 0) {
        Py_DECREF(lastelt);
        return NULL;
    }
    if (n == 0)
        return lastelt;
    PyObject *returnitem = PyList_GET_ITEM(heap, 0);
    PyList_SET_ITEM(heap, 0, lastelt);  /* steals our lastelt ref */
    if (siftup(heap, 0) < 0) {
        /* heap is in a valid (if partially sifted) state; propagate. */
        return NULL;
    }
    return returnitem;  /* we own the ref PyList_SET_ITEM displaced */
}

/* Park `(fn, args)` under `owner` in sim._parked (dict of lists),
 * mirroring `self._parked.setdefault(owner, []).append((fn, args))`. */
static int
park_entry(PyObject *sim, PyObject *owner, PyObject *fn, PyObject *args)
{
    int status = -1;
    PyObject *parked = PyObject_GetAttr(sim, str_parked);
    if (parked == NULL)
        return -1;
    PyObject *bucket = PyDict_GetItemWithError(parked, owner);  /* borrowed */
    if (bucket == NULL) {
        if (PyErr_Occurred())
            goto done;
        PyObject *fresh = PyList_New(0);
        if (fresh == NULL)
            goto done;
        if (PyDict_SetItem(parked, owner, fresh) < 0) {
            Py_DECREF(fresh);
            goto done;
        }
        Py_DECREF(fresh);
        bucket = PyDict_GetItemWithError(parked, owner);
        if (bucket == NULL)
            goto done;
    }
    PyObject *pair = PyTuple_Pack(2, fn, args);
    if (pair == NULL)
        goto done;
    status = PyList_Append(bucket, pair);
    Py_DECREF(pair);
done:
    Py_DECREF(parked);
    return status;
}

/* Add `executed` to sim.events_executed (plain int attribute). */
static int
flush_executed(PyObject *sim, long long executed)
{
    PyObject *current = PyObject_GetAttr(sim, str_events_executed);
    if (current == NULL)
        return -1;
    PyObject *delta = PyLong_FromLongLong(executed);
    if (delta == NULL) {
        Py_DECREF(current);
        return -1;
    }
    PyObject *total = PyNumber_Add(current, delta);
    Py_DECREF(current);
    Py_DECREF(delta);
    if (total == NULL)
        return -1;
    int status = PyObject_SetAttr(sim, str_events_executed, total);
    Py_DECREF(total);
    return status;
}

static int
raise_budget_exceeded(PyObject *max_events)
{
    PyObject *error = get_simulation_error();
    if (error == NULL)
        return -1;
    PyObject *message = PyUnicode_FromFormat(
        "simulation exceeded max_events=%S; likely a livelock in the model",
        max_events);
    if (message == NULL)
        return -1;
    PyErr_SetObject(error, message);
    Py_DECREF(message);
    return -1;
}

/* Dispatch one popped entry.  Returns 1 when the handler ran, 0 when
 * the entry was parked (suspended owner), -1 on error.  Consumes
 * nothing; `entry` stays owned by the caller. */
static int
dispatch(PyObject *sim, PyObject *suspended, PyObject *entry)
{
    /* self.now = entry[0] — the same float object Python would assign. */
    if (PyObject_SetAttr(sim, str_now, PyTuple_GET_ITEM(entry, 0)) < 0)
        return -1;
    if (PySet_GET_SIZE(suspended) > 0) {
        PyObject *owner = PyTuple_GET_ITEM(entry, 4);
        if (owner != Py_None) {
            int contains = PySet_Contains(suspended, owner);
            if (contains < 0)
                return -1;
            if (contains) {
                if (park_entry(sim, owner, PyTuple_GET_ITEM(entry, 2),
                               PyTuple_GET_ITEM(entry, 3)) < 0)
                    return -1;
                return 0;
            }
        }
    }
    PyObject *result = PyObject_Call(PyTuple_GET_ITEM(entry, 2),
                                     PyTuple_GET_ITEM(entry, 3), NULL);
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 1;
}

/* run_loop(sim, until, max_events)
 *
 * The body of Simulator.run between the sanitizer arm/disarm: drains
 * the heap honouring `until` (None = run to empty) and `max_events`
 * (None = unbounded).  Updates sim.now and sim.events_executed exactly
 * like the pure loop; returns None. */
static PyObject *
run_loop(PyObject *self, PyObject *args)
{
    PyObject *sim, *until, *max_events;
    if (!PyArg_ParseTuple(args, "OOO", &sim, &until, &max_events))
        return NULL;

    double horizon;
    if (until == Py_None) {
        horizon = Py_HUGE_VAL;
    } else {
        horizon = PyFloat_AsDouble(until);
        if (horizon == -1.0 && PyErr_Occurred())
            return NULL;
    }
    long long budget = -1;
    if (max_events != Py_None) {
        budget = PyLong_AsLongLong(max_events);
        if (budget == -1 && PyErr_Occurred())
            return NULL;
    }

    PyObject *heap = PyObject_GetAttr(sim, str_heap);
    if (heap == NULL)
        return NULL;
    PyObject *suspended = PyObject_GetAttr(sim, str_suspended);
    if (suspended == NULL) {
        Py_DECREF(heap);
        return NULL;
    }
    if (!PyList_CheckExact(heap) || !PyAnySet_Check(suspended)) {
        Py_DECREF(heap);
        Py_DECREF(suspended);
        PyErr_SetString(PyExc_TypeError,
                        "accel core needs a list heap and a set of owners");
        return NULL;
    }

    long long executed = 0;
    int failed = 0;
    int hit_horizon = 0;
    while (PyList_GET_SIZE(heap) > 0) {
        PyObject *peek = PyList_GET_ITEM(heap, 0);
        PyObject *when = PyTuple_GET_ITEM(peek, 0);
        double when_d = PyFloat_AsDouble(when);
        if (when_d == -1.0 && PyErr_Occurred()) {
            failed = 1;
            break;
        }
        if (when_d > horizon) {
            /* self.now = until (the caller's object, as in Python). */
            if (PyObject_SetAttr(sim, str_now, until) < 0)
                failed = 1;
            hit_horizon = 1;
            break;
        }
        PyObject *entry = heappop(heap);
        if (entry == NULL) {
            failed = 1;
            break;
        }
        int ran = dispatch(sim, suspended, entry);
        Py_DECREF(entry);
        if (ran < 0) {
            failed = 1;
            break;
        }
        if (ran == 0)
            continue;
        executed++;
        if (budget >= 0 && executed >= budget) {
            raise_budget_exceeded(max_events);
            failed = 1;
            break;
        }
    }
    if (!failed && !hit_horizon && until != Py_None) {
        /* Heap drained before the horizon: advance the clock to it
         * (`if until is not None and until > self.now: self.now = until`). */
        PyObject *now = PyObject_GetAttr(sim, str_now);
        if (now == NULL) {
            failed = 1;
        } else {
            int ahead = PyObject_RichCompareBool(until, now, Py_GT);
            Py_DECREF(now);
            if (ahead < 0)
                failed = 1;
            else if (ahead && PyObject_SetAttr(sim, str_now, until) < 0)
                failed = 1;
        }
    }
    Py_DECREF(heap);
    Py_DECREF(suspended);
    /* The pure loop's `finally:` — executed dispatches count even when
     * a handler raised.  The pending exception must be stashed first:
     * flush_executed allocates, and API calls with a live exception set
     * can clobber it (observed as SystemError: returned NULL without
     * setting an exception, under GC pressure). */
    if (failed) {
        PyObject *exc_type, *exc_value, *exc_tb;
        PyErr_Fetch(&exc_type, &exc_value, &exc_tb);
        if (flush_executed(sim, executed) < 0)
            PyErr_Clear();  /* the handler's error wins */
        PyErr_Restore(exc_type, exc_value, exc_tb);
        return NULL;
    }
    if (flush_executed(sim, executed) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* run_until_loop(sim, event, limit, max_events)
 *
 * The body of Simulator.run_until_triggered between sanitizer arm and
 * the final ok/value unpacking (which stays in Python). */
static PyObject *
run_until_loop(PyObject *self, PyObject *args)
{
    PyObject *sim, *event, *limit, *max_events;
    if (!PyArg_ParseTuple(args, "OOOO", &sim, &event, &limit, &max_events))
        return NULL;

    double horizon;
    if (limit == Py_None) {
        horizon = Py_HUGE_VAL;
    } else {
        horizon = PyFloat_AsDouble(limit);
        if (horizon == -1.0 && PyErr_Occurred())
            return NULL;
    }
    long long budget = -1;
    if (max_events != Py_None) {
        budget = PyLong_AsLongLong(max_events);
        if (budget == -1 && PyErr_Occurred())
            return NULL;
    }

    PyObject *heap = PyObject_GetAttr(sim, str_heap);
    if (heap == NULL)
        return NULL;
    PyObject *suspended = PyObject_GetAttr(sim, str_suspended);
    if (suspended == NULL) {
        Py_DECREF(heap);
        return NULL;
    }
    if (!PyList_CheckExact(heap) || !PyAnySet_Check(suspended)) {
        Py_DECREF(heap);
        Py_DECREF(suspended);
        PyErr_SetString(PyExc_TypeError,
                        "accel core needs a list heap and a set of owners");
        return NULL;
    }

    long long executed = 0;
    int failed = 0;
    for (;;) {
        /* while not event.triggered or event._callbacks is not None: */
        PyObject *triggered = PyObject_GetAttr(event, str_triggered);
        if (triggered == NULL) {
            failed = 1;
            break;
        }
        int is_triggered = PyObject_IsTrue(triggered);
        Py_DECREF(triggered);
        if (is_triggered < 0) {
            failed = 1;
            break;
        }
        if (is_triggered) {
            PyObject *callbacks = PyObject_GetAttr(event, str_callbacks);
            if (callbacks == NULL) {
                failed = 1;
                break;
            }
            int pending = (callbacks != Py_None);
            Py_DECREF(callbacks);
            if (!pending)
                break;  /* triggered and processed: done */
        }
        if (PyList_GET_SIZE(heap) == 0) {
            PyObject *error = get_simulation_error();
            if (error != NULL)
                PyErr_SetString(error,
                                "event queue drained before event triggered");
            failed = 1;
            break;
        }
        PyObject *peek = PyList_GET_ITEM(heap, 0);
        double when_d = PyFloat_AsDouble(PyTuple_GET_ITEM(peek, 0));
        if (when_d == -1.0 && PyErr_Occurred()) {
            failed = 1;
            break;
        }
        if (when_d > horizon) {
            PyObject *error = get_simulation_error();
            if (error != NULL) {
                PyObject *message = PyUnicode_FromFormat(
                    "event not triggered before t=%S", limit);
                if (message != NULL) {
                    PyErr_SetObject(error, message);
                    Py_DECREF(message);
                }
            }
            failed = 1;
            break;
        }
        PyObject *entry = heappop(heap);
        if (entry == NULL) {
            failed = 1;
            break;
        }
        int ran = dispatch(sim, suspended, entry);
        Py_DECREF(entry);
        if (ran < 0) {
            failed = 1;
            break;
        }
        if (ran == 0)
            continue;
        executed++;
        if (budget >= 0 && executed >= budget) {
            raise_budget_exceeded(max_events);
            failed = 1;
            break;
        }
    }
    Py_DECREF(heap);
    Py_DECREF(suspended);
    /* Same exception-safe `finally:` as run_loop. */
    if (failed) {
        PyObject *exc_type, *exc_value, *exc_tb;
        PyErr_Fetch(&exc_type, &exc_value, &exc_tb);
        if (flush_executed(sim, executed) < 0)
            PyErr_Clear();
        PyErr_Restore(exc_type, exc_value, exc_tb);
        return NULL;
    }
    if (flush_executed(sim, executed) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef accelcore_methods[] = {
    {"run_loop", run_loop, METH_VARARGS,
     "run_loop(sim, until, max_events) -- drain the event heap (Simulator.run body)"},
    {"run_until_loop", run_until_loop, METH_VARARGS,
     "run_until_loop(sim, event, limit, max_events) -- drain until event is processed"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef accelcore_module = {
    PyModuleDef_HEAD_INIT,
    "repro.accel._accelcore",
    "Compiled dispatch loops for repro.sim.kernel.Simulator.",
    -1,
    accelcore_methods,
};

PyMODINIT_FUNC
PyInit__accelcore(void)
{
    str_now = PyUnicode_InternFromString("now");
    str_heap = PyUnicode_InternFromString("_heap");
    str_suspended = PyUnicode_InternFromString("_suspended");
    str_parked = PyUnicode_InternFromString("_parked");
    str_events_executed = PyUnicode_InternFromString("events_executed");
    str_triggered = PyUnicode_InternFromString("_triggered");
    str_callbacks = PyUnicode_InternFromString("_callbacks");
    if (!str_now || !str_heap || !str_suspended || !str_parked ||
        !str_events_executed || !str_triggered || !str_callbacks)
        return NULL;
    return PyModule_Create(&accelcore_module);
}

"""Per-node storage facade: memory store + optional cold (disk) tier.

Which keys live on the cold tier is workload policy, supplied as a
predicate at cluster build time; which of those are currently *warm*
(memory resident) is tracked here. The sequencer consults
``cold_keys_of`` to decide whether a transaction must be deferred and
prefetched (paper Section 4).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, TYPE_CHECKING

from repro.obs import NULL_RECORDER, TraceRecorder
from repro.partition.partitioner import Key
from repro.sim.events import Event
from repro.storage.disk import SimulatedDisk, WarmCache
from repro.storage.kvstore import KVStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from repro.config import CostModel
    from repro.sim.kernel import Simulator

ColdPredicate = Callable[[Key], bool]


class StorageEngine:
    """Storage stack of one node."""

    def __init__(
        self,
        sim: "Simulator",
        partition: int,
        costs: "CostModel",
        rng: "random.Random",
        disk_enabled: bool = False,
        cold_predicate: Optional[ColdPredicate] = None,
        warm_capacity: Optional[int] = None,
        tracer: TraceRecorder = NULL_RECORDER,
        replica: Optional[int] = None,
    ):
        self.sim = sim
        self.partition = partition
        self.store = KVStore(partition)
        self.disk_enabled = disk_enabled
        self._cold_predicate = cold_predicate or (lambda key: False)
        self.disk: Optional[SimulatedDisk] = (
            SimulatedDisk(sim, rng, costs, tracer=tracer, replica=replica, partition=partition)
            if disk_enabled
            else None
        )
        self.warm = WarmCache(warm_capacity)
        self.prefetches = 0

    # -- temperature ------------------------------------------------------

    def is_cold(self, key: Key) -> bool:
        """True when reading ``key`` would require a disk access right now."""
        if not self.disk_enabled:
            return False
        return self._cold_predicate(key) and key not in self.warm

    def cold_keys_of(self, keys: Iterable[Key]) -> List[Key]:
        """The subset of ``keys`` that is currently disk resident."""
        if not self.disk_enabled:
            return []
        predicate, warm = self._cold_predicate, self.warm
        return [key for key in keys if predicate(key) and key not in warm]

    # -- access -------------------------------------------------------------

    def fetch(self, key: Key) -> Event:
        """Bring a cold ``key`` into memory; event triggers when resident."""
        assert self.disk is not None, "fetch on a memory-only engine"
        self.prefetches += 1
        done = self.disk.fetch(key)
        done.add_callback(lambda _event: self.warm.admit(key))
        return done

    def read(self, key: Key, default: Any = None) -> Any:
        """Read a (memory-resident) record."""
        return self.store.get(key, default)

    def read_many(self, keys: Iterable[Key]) -> Any:
        """Read several memory-resident records as a dict."""
        return self.store.get_many(keys)

    def expected_fetch_latency(self, estimate_error: float = 0.0) -> float:
        """The sequencer's estimate of one fetch, with optional relative error.

        A positive ``estimate_error`` makes the sequencer *underestimate*
        (the harmful direction in the paper's discussion: transactions
        get scheduled before their data is resident and stall holding
        locks).
        """
        assert self.disk is not None
        return self.disk.expected_latency() * (1.0 - estimate_error)

"""The per-partition key/value record store.

Plain CRUD with two extras the rest of the system needs:

- **write watchers** — checkpointers subscribe to observe the
  pre-image of every update (copy-on-write capture during an
  asynchronous checkpoint);
- **stable fingerprints** — replica-consistency checks compare stores
  produced by independent runs, so the fingerprint must not depend on
  process-specific hashing or insertion order.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, Iterable, Iterator, List, Tuple

from repro.partition.partitioner import Key
from repro.txn.context import DELETED

# watcher(key, had_value, old_value) is invoked *before* a mutation.
WriteWatcher = Callable[[Key, bool, Any], None]

_ABSENT = object()


class KVStore:
    """In-memory record store for one partition."""

    def __init__(self, partition: int = 0):
        self.partition = partition
        self._data: Dict[Key, Any] = {}
        self._watchers: List[WriteWatcher] = []
        self.reads = 0
        self.writes = 0

    # -- CRUD -----------------------------------------------------------

    def get(self, key: Key, default: Any = None) -> Any:
        self.reads += 1
        return self._data.get(key, default)

    def get_many(self, keys: Iterable[Key], default: Any = None) -> Dict[Key, Any]:
        """Read several records in one call (counted like per-key gets)."""
        data_get = self._data.get
        values = {key: data_get(key, default) for key in keys}
        self.reads += len(values)
        return values

    def put(self, key: Key, value: Any) -> None:
        self._notify(key)
        self.writes += 1
        self._data[key] = value

    def delete(self, key: Key) -> bool:
        """Remove ``key``; returns whether it existed."""
        self._notify(key)
        self.writes += 1
        return self._data.pop(key, _ABSENT) is not _ABSENT

    def __contains__(self, key: Key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[Key]:
        return iter(self._data.keys())

    def items(self) -> Iterator[Tuple[Key, Any]]:
        return iter(self._data.items())

    # -- bulk operations --------------------------------------------------

    def apply_writes(self, writes: Dict[Key, Any], may_delete: bool = True) -> None:
        """Apply a transaction's buffered writes atomically.

        ``DELETED`` sentinel values remove the key. Per-key updates are
        independent and the buffer's insertion order is the write order
        of a deterministic procedure, so replicas agree without a
        re-sort; the fingerprint is order-independent regardless.

        ``may_delete=False`` asserts the buffer holds no ``DELETED``
        sentinels (the caller tracked deletions), enabling a plain
        C-speed ``dict.update``.
        """
        if self._watchers:
            for key, value in writes.items():
                if value is DELETED:
                    self.delete(key)
                else:
                    self.put(key, value)
            return
        data = self._data
        self.writes += len(writes)
        if not may_delete:
            data.update(writes)
            return
        for key, value in writes.items():
            if value is DELETED:
                data.pop(key, None)
            else:
                data[key] = value

    def load_bulk(self, data: Dict[Key, Any]) -> None:
        """Populate directly (loader path: bypasses watchers and counters)."""
        self._data.update(data)

    def snapshot(self) -> Dict[Key, Any]:
        """A shallow copy of all records."""
        return dict(self._data)

    def clear(self) -> None:
        self._data.clear()

    # -- consistency checking --------------------------------------------

    def fingerprint(self) -> int:
        """Order-independent, process-stable digest of the full contents."""
        digest = 0
        crc = zlib.crc32
        for key, value in self._data.items():
            digest ^= crc(repr((key, value)).encode("utf-8"))
        return digest

    # -- watchers ---------------------------------------------------------

    def add_watcher(self, watcher: WriteWatcher) -> None:
        self._watchers.append(watcher)

    def remove_watcher(self, watcher: WriteWatcher) -> None:
        self._watchers.remove(watcher)

    def _notify(self, key: Key) -> None:
        if not self._watchers:
            return
        old = self._data.get(key, _ABSENT)
        had = old is not _ABSENT
        for watcher in self._watchers:
            watcher(key, had, old if had else None)

"""The replicated input log.

Calvin's durability story (paper Section 2/3): log the *transaction
inputs* in sequence order — never the effects. Recovery replays the log
deterministically from the latest checkpoint. One entry is one
sequencer batch: ``(epoch, origin_partition, transactions...)``.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import StorageError
from repro.txn.transaction import Transaction


@dataclass(frozen=True, order=True)
class LogEntry:
    """One sequencer batch in the global input log."""

    epoch: int
    origin_partition: int
    txns: Tuple[Transaction, ...] = ()

    def __post_init__(self) -> None:
        if self.epoch < 0 or self.origin_partition < 0:
            raise StorageError("log entry epoch/origin must be non-negative")


class InputLog:
    """Append-only, ordered log of sequencer batches."""

    def __init__(self) -> None:
        self._entries: List[LogEntry] = []

    def append(self, entry: LogEntry) -> None:
        if self._entries and entry < self._entries[-1]:
            raise StorageError(
                f"out-of-order log append: {entry.epoch}/{entry.origin_partition} "
                f"after {self._entries[-1].epoch}/{self._entries[-1].origin_partition}"
            )
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LogEntry]:
        return iter(self._entries)

    @property
    def last_epoch(self) -> int:
        """Highest epoch logged (-1 when empty)."""
        return self._entries[-1].epoch if self._entries else -1

    def entries_from(self, epoch: int) -> List[LogEntry]:
        """All entries with ``entry.epoch >= epoch``."""
        index = bisect_left(self._entries, LogEntry(epoch, 0))
        return self._entries[index:]

    def truncate_before(self, epoch: int) -> int:
        """Drop entries older than ``epoch`` (after a checkpoint); returns count dropped."""
        index = bisect_left(self._entries, LogEntry(epoch, 0))
        dropped = index
        self._entries = self._entries[index:]
        return dropped

    def total_transactions(self) -> int:
        return sum(len(entry.txns) for entry in self._entries)

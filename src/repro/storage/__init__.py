"""Storage substrate: per-partition stores, simulated disk, logs, checkpoints.

Calvin's storage layer is deliberately simple — a CRUD key/value
interface (paper Section 2) — because all isolation comes from the
deterministic locking layer above it. This package provides:

- :class:`~repro.storage.kvstore.KVStore` — the in-memory record store,
- :class:`~repro.storage.engine.StorageEngine` — per-node facade adding
  the simulated disk tier and warm-cache tracking (Section 4),
- :class:`~repro.storage.inputlog.InputLog` — the replicated input log
  (Calvin logs *inputs*, not effects),
- :mod:`~repro.storage.checkpoint` — naive synchronous and asynchronous
  Zig-Zag-style checkpointing (Section 5),
- :mod:`~repro.storage.recovery` — snapshot + deterministic-replay
  reconstruction helpers.
"""

from repro.storage.checkpoint import (
    CheckpointSnapshot,
    NaiveCheckpointer,
    ZigZagCheckpointer,
)
from repro.storage.disk import SimulatedDisk, WarmCache
from repro.storage.engine import StorageEngine
from repro.storage.inputlog import InputLog, LogEntry
from repro.storage.kvstore import KVStore

__all__ = [
    "CheckpointSnapshot",
    "InputLog",
    "KVStore",
    "LogEntry",
    "NaiveCheckpointer",
    "SimulatedDisk",
    "StorageEngine",
    "WarmCache",
    "ZigZagCheckpointer",
]

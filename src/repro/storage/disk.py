"""Simulated disk tier for cold records (paper Section 4).

The paper's key point: a deterministic system must not let a disk stall
be discovered *after* sequencing, or every later conflicting transaction
stalls too. Calvin's sequencer therefore predicts which transactions
touch cold data, sends prefetch requests immediately, and defers the
transaction by the expected fetch time. This module provides the device
model (bounded parallelism + seek-latency distribution) and the warm
cache that tracks which records are memory-resident.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, TYPE_CHECKING

from repro.errors import StorageError
from repro.obs import CAT_DEVICE, NULL_RECORDER, SpanKind, TraceRecorder
from repro.partition.partitioner import Key
from repro.sim.events import Event
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from repro.config import CostModel
    from repro.sim.kernel import Simulator


class WarmCache:
    """Tracks which cold-tier keys are currently memory resident (FIFO evict)."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise StorageError("warm cache capacity must be >= 1 or None")
        self.capacity = capacity
        self._warm: "OrderedDict[Key, None]" = OrderedDict()
        self.evictions = 0

    def __contains__(self, key: Key) -> bool:
        return key in self._warm

    def __len__(self) -> int:
        return len(self._warm)

    def admit(self, key: Key) -> None:
        if key in self._warm:
            return
        self._warm[key] = None
        if self.capacity is not None and len(self._warm) > self.capacity:
            self._warm.popitem(last=False)
            self.evictions += 1


class DiskFaultMode:
    """An active degradation of the device (installed by the fault injector).

    ``latency_multiplier``/``extra_latency`` model a latency spike (a
    contended or failing spindle); ``torn_io_prob`` is the chance that an
    access comes back corrupt (a torn read/write detected by checksum)
    and must be retried, each retry paying a fresh access latency.
    """

    def __init__(
        self,
        latency_multiplier: float = 1.0,
        extra_latency: float = 0.0,
        torn_io_prob: float = 0.0,
        max_retries: int = 8,
    ):
        if latency_multiplier <= 0:
            raise StorageError("latency_multiplier must be > 0")
        if extra_latency < 0:
            raise StorageError("extra_latency must be >= 0")
        if not 0.0 <= torn_io_prob < 1.0:
            raise StorageError("torn_io_prob must be in [0, 1)")
        self.latency_multiplier = latency_multiplier
        self.extra_latency = extra_latency
        self.torn_io_prob = torn_io_prob
        self.max_retries = max_retries


class SimulatedDisk:
    """A disk device: limited parallelism, randomized access latency."""

    def __init__(
        self,
        sim: "Simulator",
        rng: "random.Random",
        costs: "CostModel",
        tracer: TraceRecorder = NULL_RECORDER,
        replica: Optional[int] = None,
        partition: Optional[int] = None,
    ):
        self.sim = sim
        self._rng = rng
        self._costs = costs
        self.tracer = tracer
        self.replica = replica
        self.partition = partition
        self._slots = Resource(sim, costs.disk_parallelism, name="disk")
        self.fetches = 0
        self.total_latency = 0.0
        self.fault_mode: Optional[DiskFaultMode] = None
        self.torn_accesses = 0

    def set_fault_mode(self, mode: Optional[DiskFaultMode]) -> None:
        """Install (or, with ``None``, clear) a fault mode on the device."""
        self.fault_mode = mode

    def access_latency(self) -> float:
        """Draw one access latency from the device's distribution."""
        jitter = self._costs.disk_latency_jitter
        latency = self._costs.disk_latency_mean
        if jitter > 0:
            latency += self._rng.uniform(-jitter, jitter)
        fault = self.fault_mode
        if fault is not None:
            latency = latency * fault.latency_multiplier + fault.extra_latency
        return max(1e-4, latency)

    def expected_latency(self) -> float:
        """Mean access latency (what a perfect estimator would predict)."""
        return self._costs.disk_latency_mean

    def fetch(self, key: Key) -> Event:
        """An event that triggers when ``key`` has been read off the device."""
        self.fetches += 1
        done = Event(self.sim)
        self.sim.process(self._fetch_process(done))
        return done

    def _fetch_process(self, done: Event):
        queued_at = self.sim.now
        yield self._slots.request()
        attempts = 0
        while True:
            latency = self.access_latency()
            self.total_latency += latency
            yield self.sim.timeout(latency)
            fault = self.fault_mode
            if (
                fault is not None
                and fault.torn_io_prob > 0
                and attempts < fault.max_retries
                and self._rng.random() < fault.torn_io_prob
            ):
                # Torn I/O: checksum mismatch, re-read the sector.
                self.torn_accesses += 1
                attempts += 1
                continue
            break
        self._slots.release()
        if self.tracer.enabled:
            # Device-level span (queue wait + access, incl. torn retries):
            # distinct from the txn-attributed cold-stall span, which only
            # appears when a fetch lands on the execution critical path.
            self.tracer.record(
                SpanKind.DISK, queued_at, self.sim.now,
                cat=CAT_DEVICE, replica=self.replica, partition=self.partition,
                detail="fetch",
            )
        done.succeed()

    @property
    def queue_length(self) -> int:
        return self._slots.queue_length

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose device tallies as gauges in ``registry``."""
        registry.gauge(f"{prefix}.fetches", lambda: self.fetches)
        registry.gauge(f"{prefix}.total_latency", lambda: self.total_latency)
        registry.gauge(f"{prefix}.torn_accesses", lambda: self.torn_accesses)

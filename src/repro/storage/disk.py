"""Simulated disk tier for cold records (paper Section 4).

The paper's key point: a deterministic system must not let a disk stall
be discovered *after* sequencing, or every later conflicting transaction
stalls too. Calvin's sequencer therefore predicts which transactions
touch cold data, sends prefetch requests immediately, and defers the
transaction by the expected fetch time. This module provides the device
model (bounded parallelism + seek-latency distribution) and the warm
cache that tracks which records are memory-resident.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, TYPE_CHECKING

from repro.errors import StorageError
from repro.partition.partitioner import Key
from repro.sim.events import Event
from repro.sim.resources import Resource

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from repro.config import CostModel
    from repro.sim.kernel import Simulator


class WarmCache:
    """Tracks which cold-tier keys are currently memory resident (FIFO evict)."""

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise StorageError("warm cache capacity must be >= 1 or None")
        self.capacity = capacity
        self._warm: "OrderedDict[Key, None]" = OrderedDict()
        self.evictions = 0

    def __contains__(self, key: Key) -> bool:
        return key in self._warm

    def __len__(self) -> int:
        return len(self._warm)

    def admit(self, key: Key) -> None:
        if key in self._warm:
            return
        self._warm[key] = None
        if self.capacity is not None and len(self._warm) > self.capacity:
            self._warm.popitem(last=False)
            self.evictions += 1


class SimulatedDisk:
    """A disk device: limited parallelism, randomized access latency."""

    def __init__(self, sim: "Simulator", rng: "random.Random", costs: "CostModel"):
        self.sim = sim
        self._rng = rng
        self._costs = costs
        self._slots = Resource(sim, costs.disk_parallelism, name="disk")
        self.fetches = 0
        self.total_latency = 0.0

    def access_latency(self) -> float:
        """Draw one access latency from the device's distribution."""
        jitter = self._costs.disk_latency_jitter
        latency = self._costs.disk_latency_mean
        if jitter > 0:
            latency += self._rng.uniform(-jitter, jitter)
        return max(1e-4, latency)

    def expected_latency(self) -> float:
        """Mean access latency (what a perfect estimator would predict)."""
        return self._costs.disk_latency_mean

    def fetch(self, key: Key) -> Event:
        """An event that triggers when ``key`` has been read off the device."""
        self.fetches += 1
        done = Event(self.sim)
        self.sim.process(self._fetch_process(done))
        return done

    def _fetch_process(self, done: Event):
        yield self._slots.request()
        latency = self.access_latency()
        self.total_latency += latency
        yield self.sim.timeout(latency)
        self._slots.release()
        done.succeed()

    @property
    def queue_length(self) -> int:
        return self._slots.queue_length

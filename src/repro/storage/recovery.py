"""Recovery helpers: restore a store from a snapshot, verify replays.

Calvin recovery = latest checkpoint + deterministic replay of the input
log from the checkpoint's epoch. The cluster-level replay driver lives
in :mod:`repro.core.cluster`; this module holds the storage-side pieces
so they can be tested in isolation.
"""

from __future__ import annotations

import zlib
from typing import Any, Dict

from repro.errors import RecoveryError
from repro.partition.partitioner import Key
from repro.storage.checkpoint import CheckpointSnapshot
from repro.storage.kvstore import KVStore


def restore_store(store: KVStore, snapshot: CheckpointSnapshot) -> None:
    """Reset ``store`` to exactly the snapshot contents."""
    if snapshot.partition != store.partition:
        raise RecoveryError(
            f"snapshot is for partition {snapshot.partition}, "
            f"store is partition {store.partition}"
        )
    store.clear()
    store.load_bulk(dict(snapshot.data))


def fingerprint_data(data: Dict[Key, Any]) -> int:
    """Order-independent digest of a plain snapshot dict (matches
    :meth:`repro.storage.kvstore.KVStore.fingerprint` semantics)."""
    digest = 0
    for key, value in data.items():
        digest ^= zlib.crc32(repr((key, value)).encode("utf-8"))
    return digest


def stores_equal(a: KVStore, b: KVStore) -> bool:
    """Exact content equality between two stores."""
    return a.snapshot() == b.snapshot()

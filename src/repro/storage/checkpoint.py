"""Checkpointing modes (paper Section 5).

Because Calvin replicates inputs, a checkpoint only needs to capture a
*transactionally consistent* store snapshot at some point of the global
sequence; the input log replays everything after it.

Two modes are implemented:

- **naive**: stop processing, dump every record, resume. Trivially
  consistent, but the node is unavailable for the whole dump.
- **zigzag**: an asynchronous variant in the spirit of Cao et al.'s
  Zig-Zag scheme — when the checkpoint begins, the store keeps (at most)
  two versions per record: the *stable* version as of the checkpoint
  point, preserved copy-on-write for records mutated before the dumper
  reaches them, and the live version. Normal processing continues; a
  background dumper walks the key space and emits stable versions,
  paying CPU that would otherwise execute transactions (the Figure 8
  throughput dip).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import StorageError
from repro.partition.partitioner import Key, sort_token
from repro.storage.kvstore import KVStore

_TOMBSTONE = object()


@dataclass
class CheckpointSnapshot:
    """A completed, transactionally consistent partition snapshot."""

    partition: int
    # The snapshot reflects exactly the transactions sequenced strictly
    # before this epoch (replay resumes from `epoch`).
    epoch: int
    mode: str
    data: Dict[Key, Any] = field(default_factory=dict)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def record_count(self) -> int:
        return len(self.data)


class NaiveCheckpointer:
    """Stop-the-world dump: consistent because nothing runs meanwhile."""

    mode = "naive"

    def __init__(self, store: KVStore, partition: int):
        self.store = store
        self.partition = partition

    def dump_duration(self, record_cpu: float) -> float:
        """Virtual time the node is frozen while dumping."""
        return len(self.store) * record_cpu

    def capture(self, epoch: int, now: float) -> CheckpointSnapshot:
        """Take the snapshot (call while the node is paused)."""
        return CheckpointSnapshot(
            partition=self.partition,
            epoch=epoch,
            mode=self.mode,
            data=self.store.snapshot(),
            started_at=now,
            finished_at=now,
        )


class ZigZagCheckpointer:
    """Asynchronous two-version checkpointing.

    Usage: ``begin(epoch)`` at a quiescent point between two epochs
    (the scheduler arranges this), then repeatedly ``dump_slice(n)``
    from a paced background process until ``pending == 0``, then
    ``finish(now)``.
    """

    mode = "zigzag"

    def __init__(self, store: KVStore, partition: int):
        self.store = store
        self.partition = partition
        self._active = False
        self._stable: Dict[Key, Any] = {}
        self._pending: List[Key] = []
        self._cursor = 0
        self._snapshot: Optional[CheckpointSnapshot] = None

    @property
    def active(self) -> bool:
        return self._active

    @property
    def pending(self) -> int:
        return len(self._pending) - self._cursor

    def begin(self, epoch: int, now: float) -> None:
        if self._active:
            raise StorageError("checkpoint already in progress")
        self._active = True
        self._stable = {}
        # Sorted walk order: deterministic and replica-identical.
        self._pending = sorted(self.store.keys(), key=sort_token)
        self._cursor = 0
        self._snapshot = CheckpointSnapshot(
            partition=self.partition, epoch=epoch, mode=self.mode, started_at=now
        )
        self.store.add_watcher(self._on_write)

    def _on_write(self, key: Key, had_value: bool, old_value: Any) -> None:
        # Preserve the stable (checkpoint-time) version of a record the
        # dumper has not reached yet. Records created after `begin` are
        # not part of the snapshot (had_value False -> tombstone).
        if key in self._stable:
            return
        self._stable[key] = old_value if had_value else _TOMBSTONE

    def dump_slice(self, max_records: int) -> int:
        """Emit up to ``max_records`` stable versions; returns how many."""
        if not self._active:
            raise StorageError("dump_slice without an active checkpoint")
        assert self._snapshot is not None
        emitted = 0
        data = self._snapshot.data
        while emitted < max_records and self._cursor < len(self._pending):
            key = self._pending[self._cursor]
            self._cursor += 1
            if key in self._stable:
                value = self._stable.pop(key)
            else:
                # Key untouched since begin(): live version is stable.
                # (It must still exist; deletion would have COW'd it.)
                value = self.store.get(key)
            if value is not _TOMBSTONE:
                data[key] = value
            emitted += 1
        return emitted

    def finish(self, now: float) -> CheckpointSnapshot:
        if not self._active:
            raise StorageError("finish without an active checkpoint")
        if self.pending:
            raise StorageError(f"finish with {self.pending} records still pending")
        self.store.remove_watcher(self._on_write)
        self._active = False
        snapshot = self._snapshot
        assert snapshot is not None
        snapshot.finished_at = now
        self._snapshot = None
        self._stable = {}
        self._pending = []
        return snapshot

"""The scheduling layer (paper Section 3, Figure 1 right column).

Each node's scheduler reconstructs the global serial order from the
sub-batches of all sequencers, requests locks strictly in that order
(deterministic locking — the whole point of Calvin), and executes
transactions through the paper's five phases:

1. read/write set analysis,
2. perform local reads,
3. serve remote reads (push local values to active participants),
4. collect remote read results,
5. execute logic and apply local writes.

Because lock acquisition order equals the agreed serial order at every
node, distributed deadlock is impossible and no commit protocol is
needed: every active participant deterministically reaches the same
commit/abort decision from the same full read snapshot.
"""

from repro.scheduler.lockmanager import DeterministicLockManager, LockMode
from repro.scheduler.scheduler import Scheduler

__all__ = ["DeterministicLockManager", "LockMode", "Scheduler"]

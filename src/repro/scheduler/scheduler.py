"""The per-node scheduler: epoch barrier, in-order admission, execution.

Admission models Calvin's single lock-manager thread: sub-batches from
all sequencers are interleaved into the global order, then a single
admission loop charges the lock-request CPU cost and queues lock
requests strictly in that order. Granted transactions execute on the
node's worker pool via :mod:`repro.scheduler.executor`.

The scheduler also implements the epoch-aligned pause used by
checkpointing: ``pause_before_epoch(E)`` stops admission just before
epoch ``E`` and triggers a quiesce event once every transaction of
epochs ``< E`` has finished locally, giving a transactionally consistent
cut of the global sequence.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Set, TYPE_CHECKING, Tuple

from repro.config import ClusterConfig
from repro.errors import SchedulerError
from repro.net.messages import RemoteRead, SubBatch, WriteSetApply
from repro.obs import CAT_EPOCH, NULL_RECORDER, SpanKind, TraceRecorder
from repro.partition.catalog import Catalog, NodeId, is_migration_txn, node_address
from repro.partition.partitioner import stable_hash
from repro.scheduler.executor import run_transaction
from repro.scheduler.lockmanager import DeterministicLockManager
from repro.sim.events import Event
from repro.sim.resources import Resource
from repro.txn.procedures import ProcedureRegistry
from repro.txn.transaction import GlobalSeq, SequencedTxn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator
    from repro.storage.engine import StorageEngine

SendFn = Callable[[Any, Any, int], None]
CompletionHook = Callable[[SequencedTxn, Any], None]


# Shared shard-index tuple for the dominant single-shard fast path —
# avoids a fresh one-element list per admitted transaction.
_SOLE_SHARD = (0,)


class Scheduler:
    """One node's scheduler component."""

    def __init__(
        self,
        sim: "Simulator",
        node_id: NodeId,
        catalog: Catalog,
        config: ClusterConfig,
        registry: ProcedureRegistry,
        engine: "StorageEngine",
        send: SendFn,
        on_complete: Optional[CompletionHook] = None,
        record_trace: bool = False,
        tracer: TraceRecorder = NULL_RECORDER,
    ):
        self.sim = sim
        self.tracer = tracer
        # Hoisted is-enabled flag: hot paths branch on a plain bool
        # instead of an attribute chain (the NullRecorder case pays one
        # local truth test and nothing else).
        self._tracing = tracer.enabled
        self.node_id = node_id
        self.catalog = catalog
        self.config = config
        self.registry = registry
        self.engine = engine
        self.send = send
        self.on_complete = on_complete
        # Opt-in footprint auditor (repro.analysis.auditor); the cluster
        # attaches one to replica-0 schedulers when auditing is armed.
        self.auditor = None

        self.workers = Resource(sim, config.workers_per_node, name=f"workers{node_id}")
        # Lock-manager shards: keys hash onto shards, each shard is one
        # "lock manager thread" granting strictly in sequence order over
        # its keys. One shard (the default) is the paper's design.
        self._lock_shards = [
            DeterministicLockManager(self._on_shard_ready)
            for _ in range(config.lock_manager_shards)
        ]
        # Canonical alias for single-shard deployments (tests, stats).
        self.locks = self._lock_shards[0]
        # seq -> number of shards still holding ungranted locks.
        self._lock_pending: Dict[GlobalSeq, int] = {}
        # seq -> shard indexes involved (for release).
        self._txn_shards: Dict[GlobalSeq, List[int]] = {}

        # Epoch reassembly: epoch -> origin -> SubBatch.
        self._arrived: Dict[int, Dict[int, SubBatch]] = {}
        self._next_epoch = 0

        # In-order admission queue; distributed to per-shard admission
        # loops (each modeling one lock-manager thread's CPU).
        self._admission: Deque[SequencedTxn] = deque()
        self._shard_queues: List[Deque] = [
            deque() for _ in range(config.lock_manager_shards)
        ]
        self._shard_active = [False] * config.lock_manager_shards

        # Remote-read mailbox: seq -> {from_partition: values}.
        self._mailbox: Dict[GlobalSeq, Dict[int, Dict]] = {}
        self._mailbox_waiters: Dict[GlobalSeq, List[Event]] = {}
        # Writeset mailbox (partial replication): deterministic outcomes
        # shipped by replica 0 for transactions this replica cannot
        # re-execute because it does not host every participant (see
        # executor.apply_replicated). Arrivals may precede admission.
        self._writesets: Dict[GlobalSeq, WriteSetApply] = {}
        self._writeset_waiters: Dict[GlobalSeq, List[Event]] = {}
        # Fault-tolerance aid (enabled by the fault injector): remember
        # every served remote read and every finished seq, so a restarted
        # peer can be re-served reads that were lost while it was down.
        self.retain_remote_reads = False
        self._served_reads: Dict[GlobalSeq, Tuple[RemoteRead, Set[int]]] = {}
        self._finished_seqs: Set[GlobalSeq] = set()

        # Checkpoint pause machinery.
        self._pause_epoch: Optional[int] = None
        self._quiesce_event: Optional[Event] = None
        self.outstanding = 0

        # Statistics.
        self.admitted = 0
        self.completed = 0
        self.passive_completions = 0
        # Optional per-partition finish-order trace (seq per completion),
        # consumed by the conflict-order checker.
        self.execution_trace: Optional[List[GlobalSeq]] = [] if record_trace else None

    # -- sub-batch intake and epoch barrier --------------------------------

    def receive_subbatch(self, batch: SubBatch) -> None:
        if batch.epoch < self._next_epoch:
            # Already admitted this epoch: a retransmission from a
            # recovery resync (or a duplicating network). Ignore.
            return
        per_epoch = self._arrived.setdefault(batch.epoch, {})
        existing = per_epoch.get(batch.origin_partition)
        if existing is not None:
            if existing == batch:
                # Identical duplicate (lossy network or resync): idempotent.
                return
            raise SchedulerError(
                f"conflicting duplicate sub-batch epoch={batch.epoch} "
                f"origin={batch.origin_partition} at {self.node_id}"
            )
        per_epoch[batch.origin_partition] = batch
        if self._tracing:
            dispatched = self.tracer.peek_mark(
                ("dispatch", self.node_id.replica, batch.origin_partition, batch.epoch)
            )
            if dispatched is not None:
                # Sequencer dispatch -> arrival at this scheduler:
                # serialization delay plus the network hop.
                self.tracer.record(
                    SpanKind.DISPATCH,
                    dispatched,
                    self.sim.now,
                    cat=CAT_EPOCH,
                    replica=self.node_id.replica,
                    partition=self.node_id.partition,
                    detail=(batch.epoch, batch.origin_partition),
                )
        self._advance_epochs()

    def _advance_epochs(self) -> None:
        num_origins = self.catalog.num_partitions
        has_reconfig = self.catalog.has_reconfig
        while True:
            if self._pause_epoch is not None and self._next_epoch >= self._pause_epoch:
                return
            per_epoch = self._arrived.get(self._next_epoch)
            if has_reconfig:
                # Elastic membership: the barrier waits for exactly the
                # origins active at this epoch (a joining spare starts
                # publishing at its join epoch, a retiring origin's last
                # batch is retire_epoch - 1).
                origins = self.catalog.origins_at(self._next_epoch)
                if per_epoch is None or any(o not in per_epoch for o in origins):
                    return
            else:
                origins = range(num_origins)
                if per_epoch is None or len(per_epoch) < num_origins:
                    return
            del self._arrived[self._next_epoch]
            for origin in origins:
                self._admission.extend(per_epoch[origin].txns)
            self._next_epoch += 1
            self._kick_admission()

    # -- admission (the lock-manager thread(s)) --------------------------

    def _kick_admission(self) -> None:
        # Distribute the in-order queue across shard admission loops.
        # Distribution itself is free; each shard loop charges the lock
        # CPU for its own keys, so shards lift the admission ceiling.
        admission = self._admission
        tracing = self._tracing
        catalog = self.catalog
        has_reconfig = catalog.has_reconfig
        mine = self.node_id.partition
        single_shard = len(self._lock_shards) == 1
        while admission:
            stxn = admission.popleft()
            if tracing:
                self.tracer.mark(("admit", self.node_id, stxn.seq), self.sim.now)
            txn = stxn.txn
            if has_reconfig:
                participants = catalog.participants_at(txn, stxn.seq[0])
            else:
                participants = txn.participants(catalog)
            if single_shard and len(participants) == 1:
                # Fast path for the dominant case: sole participant on
                # the single (paper-design) lock shard. The local
                # footprint is the full footprint, so the per-key
                # partition filter is skipped and the lock-request plan
                # is built once per transaction and cached on it.
                if mine not in participants:
                    raise SchedulerError(
                        f"{stxn.seq} dispatched to non-participant partition {mine}"
                    )
                plan = txn._lock_plan
                if plan is None:
                    plan = self._build_lock_plan(txn)
                    object.__setattr__(txn, "_lock_plan", plan)
                self.admitted += 1
                self.outstanding += 1
                self._lock_pending[stxn.seq] = 1
                self._txn_shards[stxn.seq] = _SOLE_SHARD
                # Admission CPU is charged per requested key of the raw
                # footprint, exactly like the generic path.
                units = len(txn.read_set) + len(txn.write_set)
                self._shard_queues[0].append((stxn, units, None, None, plan))
                if not self._shard_active[0]:
                    self._shard_active[0] = True
                    self.sim.process(self._shard_admission_loop(0))
                continue
            read_keys, write_keys = self.local_footprint(stxn)
            if single_shard:
                shards: Dict[int, List] = {0: [read_keys, write_keys]}
            else:
                shards = {}
                for key in read_keys:
                    shards.setdefault(self._shard_of(key), [[], []])[0].append(key)
                for key in write_keys:
                    shards.setdefault(self._shard_of(key), [[], []])[1].append(key)
            self.admitted += 1
            self.outstanding += 1
            self._lock_pending[stxn.seq] = len(shards)
            self._txn_shards[stxn.seq] = sorted(shards)
            for index in sorted(shards):
                shard_reads, shard_writes = shards[index]
                units = len(shard_reads) + len(shard_writes)
                self._shard_queues[index].append(
                    (stxn, units, shard_reads, shard_writes, None)
                )
                if not self._shard_active[index]:
                    self._shard_active[index] = True
                    self.sim.process(self._shard_admission_loop(index))

    @staticmethod
    def _build_lock_plan(txn) -> Tuple[Tuple[Any, ...], Tuple[Any, ...]]:
        """The ``(write_keys, read_only_keys)`` halves, in acquire's order."""
        writes = txn.sorted_writes()
        reads = txn.sorted_reads()
        if reads is writes:
            # read_set == write_set: every key takes a WRITE lock.
            return (writes, ())
        write_set = txn.write_set
        return (writes, tuple(key for key in reads if key not in write_set))

    def _shard_of(self, key) -> int:
        if len(self._lock_shards) == 1:
            return 0
        return stable_hash(key) % len(self._lock_shards)

    def _shard_admission_loop(self, index: int):
        queue = self._shard_queues[index]
        shard = self._lock_shards[index]
        per_key_cpu = self.config.costs.lock_request_cpu
        while queue:
            stxn, units, read_keys, write_keys, plan = queue.popleft()
            cost = per_key_cpu * units
            if cost > 0:
                yield self.sim.timeout(cost)
            if plan is not None:
                shard.acquire_plan(stxn, plan)
            else:
                shard.acquire(stxn, read_keys, write_keys)
        self._shard_active[index] = False

    def _on_shard_ready(self, stxn: SequencedTxn) -> None:
        pending = self._lock_pending[stxn.seq] - 1
        self._lock_pending[stxn.seq] = pending
        if pending == 0:
            del self._lock_pending[stxn.seq]
            self._on_locks_ready(stxn)

    @property
    def next_epoch(self) -> int:
        """The first epoch not yet fully admitted (recovery watermark)."""
        return self._next_epoch

    @property
    def admission_backlog(self) -> int:
        """Transactions queued for lock admission (all shards)."""
        return len(self._admission) + sum(len(q) for q in self._shard_queues)

    def lock_occupancy(self) -> tuple:
        """``(active transactions, queued lock requests)`` over all shards.

        Walks every shard's lock table, so callers sampling it should do
        so on a fixed timer (e.g. per epoch), never per grant.
        """
        active = queued = 0
        for shard in self._lock_shards:
            active += shard.active_txns
            queued += shard.queued_requests
        return active, queued

    def local_footprint(self, stxn: SequencedTxn):
        """This partition's slice of the transaction's read/write sets."""
        txn = stxn.txn
        if self.catalog.has_reconfig:
            return self._local_footprint_at(stxn)
        if self.catalog.num_partitions == 1:
            # Single-partition cluster: every key is local.
            read_keys, write_keys = list(txn.read_set), list(txn.write_set)
        else:
            mine = self.node_id.partition
            partition_of = self.catalog.partition_of
            read_keys = [k for k in txn.read_set if partition_of(k) == mine]
            write_keys = [k for k in txn.write_set if partition_of(k) == mine]
        if not read_keys and not write_keys:
            raise SchedulerError(
                f"{stxn.seq} dispatched to non-participant partition {mine}"
            )
        return read_keys, write_keys

    def _local_footprint_at(self, stxn: SequencedTxn):
        """Epoch-aware local footprint under live reconfiguration.

        A migration transaction locks its full moving range on *both*
        sides: the source serializes the copy-out behind earlier local
        writers, the destination serializes every epoch >= flip
        transaction behind the copy-in.
        """
        txn = stxn.txn
        if is_migration_txn(txn):
            return [], list(txn.sorted_writes())
        epoch = stxn.seq[0]
        mine = self.node_id.partition
        partition_of_at = self.catalog.partition_of_at
        read_keys = [k for k in txn.read_set if partition_of_at(k, epoch) == mine]
        write_keys = [k for k in txn.write_set if partition_of_at(k, epoch) == mine]
        if not read_keys and not write_keys:
            raise SchedulerError(
                f"{stxn.seq} dispatched to non-participant partition {mine}"
            )
        return read_keys, write_keys

    # -- execution -----------------------------------------------------------

    def _on_locks_ready(self, stxn: SequencedTxn) -> None:
        if self._tracing:
            admitted = self.tracer.take_mark(("admit", self.node_id, stxn.seq))
            if admitted is not None:
                # Admission -> last local lock granted: lock-manager CPU
                # plus queueing behind conflicting earlier transactions.
                self.tracer.record(
                    SpanKind.LOCK_WAIT,
                    admitted,
                    self.sim.now,
                    replica=self.node_id.replica,
                    partition=self.node_id.partition,
                    txn_id=stxn.txn.txn_id,
                    seq=stxn.seq,
                )
        self._start_execution(stxn)

    def _start_execution(self, stxn: SequencedTxn) -> None:
        """Run a fully-granted transaction. The seam engines override:
        the core engine executes locally; STAR routes multipartition
        transactions to its master node instead."""
        process = self.sim.process(run_transaction(self, stxn))
        process.add_callback(self._executor_finished)

    def _executor_finished(self, event) -> None:
        if not event.ok:
            # An executor crash is a bug in the engine or a procedure
            # (FootprintViolation etc.) — surface it, never swallow it.
            raise event.value

    def finish_txn(self, stxn: SequencedTxn, result: Any, passive: bool) -> None:
        """Called by the executor once this node's work for ``stxn`` is done."""
        for index in self._txn_shards.pop(stxn.seq):
            self._lock_shards[index].release(stxn)
        self._mailbox.pop(stxn.seq, None)
        self._mailbox_waiters.pop(stxn.seq, None)
        self._writesets.pop(stxn.seq, None)
        self._writeset_waiters.pop(stxn.seq, None)
        if self.retain_remote_reads:
            self._finished_seqs.add(stxn.seq)
        self.completed += 1
        if self.execution_trace is not None:
            self.execution_trace.append(stxn.seq)
        if passive:
            self.passive_completions += 1
        self.outstanding -= 1
        # The hook fires only on the reply partition (result is None on
        # other active participants), so each transaction counts once
        # per replica.
        if result is not None and self.on_complete is not None:
            self.on_complete(stxn, result)
        self._maybe_quiesced()

    # -- remote reads -----------------------------------------------------------

    def receive_remote_read(self, message: RemoteRead) -> None:
        if message.seq in self._finished_seqs:
            # Re-served read for a transaction this node already finished
            # (recovery retransmission); ignore.
            return
        entry = self._mailbox.setdefault(message.seq, {})
        entry[message.from_partition] = message.values
        waiters = self._mailbox_waiters.pop(message.seq, None)
        if waiters:
            for event in waiters:
                event.succeed()

    def record_served_read(self, message: RemoteRead, targets: Set[int]) -> None:
        """Executor hook: remember a served remote read for re-serving to
        a restarted peer (active only under fault injection)."""
        if self.retain_remote_reads:
            self._served_reads[message.seq] = (message, set(targets))

    def reserve_reads_to(self, peer_scheduler: "Scheduler") -> int:
        """Re-send retained remote reads a restarted peer may have lost.

        Skips transactions the peer has already finished; everything else
        is idempotent on the receiving side. Returns the re-send count.
        """
        resent = 0
        peer_partition = peer_scheduler.node_id.partition
        for seq in sorted(self._served_reads):
            message, targets = self._served_reads[seq]
            if peer_partition not in targets:
                continue
            if seq in peer_scheduler._finished_seqs:
                continue
            self.send(
                node_address(NodeId(self.node_id.replica, peer_partition)),
                message,
                message.size_estimate(),
            )
            resent += 1
        return resent

    def remote_reads_for(self, seq: GlobalSeq) -> Dict[int, Dict]:
        return self._mailbox.get(seq, {})

    def remote_read_arrival(self, seq: GlobalSeq) -> Event:
        """An event that triggers on the next remote-read arrival for ``seq``."""
        event = Event(self.sim)
        self._mailbox_waiters.setdefault(seq, []).append(event)
        return event

    # -- writesets (partial replication) -----------------------------------

    def receive_writeset(self, message: WriteSetApply) -> None:
        """Stash a shipped writeset; may arrive before the transaction is
        admitted locally (the mailbox bridges the gap)."""
        self._writesets[message.seq] = message
        waiters = self._writeset_waiters.pop(message.seq, None)
        if waiters:
            for event in waiters:
                event.succeed()

    def writeset_for(self, seq: GlobalSeq) -> Optional[WriteSetApply]:
        return self._writesets.get(seq)

    def writeset_arrival(self, seq: GlobalSeq) -> Event:
        """An event that triggers when the writeset for ``seq`` arrives."""
        event = Event(self.sim)
        self._writeset_waiters.setdefault(seq, []).append(event)
        return event

    def fast_forward(self, epoch: int) -> None:
        """Start the epoch barrier at ``epoch`` (recovery replay resumes
        mid-log). Only valid on a scheduler that has done no work yet."""
        if self.admitted or self._arrived or self._next_epoch:
            raise SchedulerError("fast_forward on a scheduler that already ran")
        self._next_epoch = epoch

    # -- checkpoint pause ---------------------------------------------------------

    def pause_before_epoch(self, epoch: int) -> Event:
        """Stop admitting epochs >= ``epoch``; returns a quiesce event that
        triggers once all locally admitted work has drained."""
        if self._pause_epoch is not None:
            raise SchedulerError("scheduler already paused")
        if epoch < self._next_epoch:
            raise SchedulerError(
                f"cannot pause before epoch {epoch}: already admitted "
                f"up to {self._next_epoch}"
            )
        self._pause_epoch = epoch
        self._quiesce_event = Event(self.sim)
        # Already quiesced? (empty queues, nothing running, epoch reached)
        self.sim.schedule(0.0, self._maybe_quiesced)
        return self._quiesce_event

    def resume(self) -> None:
        if self._pause_epoch is None:
            raise SchedulerError("resume of a scheduler that is not paused")
        self._pause_epoch = None
        self._quiesce_event = None
        self._advance_epochs()

    def _maybe_quiesced(self) -> None:
        if self._quiesce_event is None or self._quiesce_event.triggered:
            return
        barrier_reached = self._next_epoch >= (self._pause_epoch or 0)
        drained = self.admission_backlog == 0 and self.outstanding == 0
        # All sub-batches for pre-barrier epochs must also have arrived
        # and been admitted (none can be sitting in _arrived).
        no_stragglers = all(
            epoch >= (self._pause_epoch or 0) for epoch in self._arrived
        )
        if barrier_reached and drained and no_stragglers:
            self._quiesce_event.succeed(self._next_epoch)

    @property
    def paused(self) -> bool:
        return self._pause_epoch is not None

    # -- observability --------------------------------------------------------

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose this scheduler's tallies as gauges in ``registry``."""
        registry.gauge(f"{prefix}.sched.admitted", lambda: self.admitted)
        registry.gauge(f"{prefix}.sched.completed", lambda: self.completed)
        registry.gauge(f"{prefix}.sched.outstanding", lambda: self.outstanding)
        registry.gauge(f"{prefix}.sched.backlog", lambda: self.admission_backlog)
        registry.gauge(f"{prefix}.locks.grants", lambda: self.locks.grants)
        registry.gauge(
            f"{prefix}.locks.immediate_grants", lambda: self.locks.immediate_grants
        )

"""Transaction execution: the paper's five phases, as one worker process.

The process starts once the local lock manager has granted every local
lock. Worker slots model CPU concurrency: they are held while the
transaction does work, and *released* while it blocks on remote reads
(Calvin worker threads block, but the CPU runs other transactions).
Locks, however, are held across the wait — that is the lock-hold window
deterministic locking shortens relative to 2PC, and the mechanism behind
the contention-index experiment.
"""

from __future__ import annotations

from typing import Any, Dict, TYPE_CHECKING

from repro.errors import TransactionAborted
from repro.net.messages import RemoteRead, TxnReply, WriteSetApply
from repro.obs import SpanKind
from repro.partition.catalog import (
    NodeId,
    is_migration_txn,
    migration_route,
    node_address,
)
from repro.partition.partitioner import sorted_keys
from repro.txn.context import TxnContext
from repro.txn.result import TransactionResult, TxnStatus
from repro.txn.transaction import SequencedTxn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduler.scheduler import Scheduler


def run_transaction(sched: "Scheduler", stxn: SequencedTxn):
    """The worker process for one sequenced transaction (a generator).

    Spawned the moment the last local lock is granted; the generator's
    first step runs at that same virtual instant, so ``sim.now`` on
    entry is the lock-grant timestamp.
    """
    sim = sched.sim
    granted_time = sim.now
    costs = sched.config.costs
    catalog = sched.catalog
    txn = stxn.txn
    seq = stxn.seq
    mine = sched.node_id.partition

    # Phase 1 — read/write set analysis.
    has_reconfig = catalog.has_reconfig
    if has_reconfig:
        if is_migration_txn(txn):
            # Control-plane key-range migration: its own two-sided
            # copy/purge protocol (see run_migration below).
            yield from run_migration(sched, stxn)
            return
        epoch = seq[0]
        participants = catalog.participants_at(txn, epoch)
    else:
        participants = txn.participants(catalog)
    multipartition = len(participants) > 1
    if multipartition and sched.node_id.replica != 0:
        # Partial replication: a replica that does not host every
        # participant cannot re-execute (the remote reads it would need
        # live on partitions it doesn't have); it applies the writeset
        # replica 0 ships instead (deferred-update replication).
        hosted = catalog.hosting_of(sched.node_id.replica)
        if hosted is not None and not participants <= hosted:
            yield from apply_replicated(sched, stxn)
            return
    if multipartition and has_reconfig:
        partition_of_at = catalog.partition_of_at
        local_read_keys = sorted_keys(
            key for key in txn.read_set if partition_of_at(key, epoch) == mine
        )
    elif multipartition:
        local_read_keys = sorted_keys(
            key for key in txn.read_set if catalog.partition_of(key) == mine
        )
    else:
        # Sole participant: the whole read set is local.
        local_read_keys = txn.sorted_reads()

    tracer = sched.tracer
    replica, txn_id = sched.node_id.replica, txn.txn_id

    yield sched.workers.request()

    # Stall on any still-cold local data (only happens when the
    # sequencer's prefetch was skipped or its estimate too low — the
    # Section 4 penalty path). The disk wait holds locks AND the
    # worker: exactly the stall Calvin's prefetching exists to avoid.
    cold = sched.engine.cold_keys_of(local_read_keys)
    if cold:
        stall_start = sim.now
        yield sim.all_of([sched.engine.fetch(key) for key in cold])
        if tracer.enabled:
            tracer.record(
                SpanKind.DISK, stall_start, sim.now,
                replica=replica, partition=mine,
                txn_id=txn_id, seq=seq, detail="cold-stall",
            )
    exec_start = sim.now

    # Phase 2 — perform local reads.
    cpu = costs.txn_base_cpu + costs.read_cpu * len(local_read_keys)
    local_values = sched.engine.read_many(local_read_keys)

    reads: Dict = local_values
    messages_received = 0
    if multipartition:
        if has_reconfig:
            active = catalog.active_participants_at(txn, epoch)
        else:
            active = txn.active_participants(catalog)
        is_active = mine in active
        cpu += costs.multipartition_overhead_cpu
        yield sim.timeout(cpu)

        # Phase 3 — serve remote reads: push local values to every
        # *other* active participant.
        if local_read_keys:
            message = RemoteRead(seq, mine, local_values)
            targets = active - {mine}
            sched.record_served_read(message, targets)
            for partition in sorted(targets):
                target = NodeId(sched.node_id.replica, partition)
                sched.send(node_address(target), message, message.size_estimate())

        if tracer.enabled:
            # Phases 2-3 (local reads + serving remote readers) are
            # on-CPU work, including the wait for a worker slot.
            tracer.record(
                SpanKind.EXECUTE, exec_start, sim.now,
                replica=replica, partition=mine, txn_id=txn_id, seq=seq,
                detail="passive" if not is_active else None,
            )

        if not is_active:
            # Passive participant: its job ends here.
            sched.workers.release()
            sched.finish_txn(stxn, None, passive=True)
            return

        # Phase 4 — collect remote read results from every other
        # partition holding read-set data. The worker is released for
        # the wait (threads block; CPUs don't), locks stay held.
        if has_reconfig:
            expected = catalog.partitions_of_at(txn.read_set, epoch) - {mine}
        else:
            expected = catalog.partitions_of(txn.read_set) - {mine}
        if not expected.issubset(sched.remote_reads_for(seq)):
            wait_start = sim.now
            sched.workers.release()
            while not expected.issubset(sched.remote_reads_for(seq)):
                yield sched.remote_read_arrival(seq)
            yield sched.workers.request()
            if tracer.enabled:
                tracer.record(
                    SpanKind.REMOTE_READ_WAIT, wait_start, sim.now,
                    replica=replica, partition=mine, txn_id=txn_id, seq=seq,
                )
        reads = dict(local_values)
        for values in sched.remote_reads_for(seq).values():
            reads.update(values)
            messages_received += 1
    else:
        yield sim.timeout(cpu)
        if tracer.enabled:
            tracer.record(
                SpanKind.EXECUTE, exec_start, sim.now,
                replica=replica, partition=mine, txn_id=txn_id, seq=seq,
            )

    # Phase 5 — execute logic, apply local writes (inlined from a
    # former helper generator: one less delegated frame per txn).
    apply_start = sim.now
    procedure = sched.registry.get(txn.procedure)
    auditor = sched.auditor
    if auditor is None:
        context = TxnContext(txn, reads)
    else:
        context = auditor.make_context(txn, reads)
    status: TxnStatus
    value: Any = None

    # OLLP recheck (Section 3.2.1): deterministic — every active
    # participant computes the same verdict from the same snapshot.
    stale = (
        txn.dependent
        and procedure.recheck is not None
        and not procedure.recheck(context)
    )
    if stale:
        status = TxnStatus.RESTART
    else:
        try:
            value = procedure.logic(context)
            status = TxnStatus.COMMITTED
        except TransactionAborted as abort:
            status = TxnStatus.ABORTED
            value = abort.reason
            context.writes.clear()

    if not multipartition:
        # Sole participant: every write is local.
        local_writes = context.writes
    elif has_reconfig:
        partition_of_at = catalog.partition_of_at
        local_writes = {
            key: val
            for key, val in context.writes.items()
            if partition_of_at(key, epoch) == mine
        }
    else:
        local_writes = {
            key: val
            for key, val in context.writes.items()
            if catalog.partition_of(key) == mine
        }
    cpu = (
        procedure.logic_cpu
        + costs.write_cpu * len(local_writes)
        + costs.remote_read_serve_cpu * messages_received
    )
    if cpu > 0:
        yield sim.timeout(cpu)
    if status is TxnStatus.COMMITTED and local_writes:
        sched.engine.store.apply_writes(local_writes, context.deleted)

    if multipartition and catalog.partial and sched.node_id.replica == 0:
        # Ship this partition's deterministic outcome to peer replicas
        # that host it but cannot re-execute the transaction. Aborts
        # and restarts ship too (committed=False, empty writes): the
        # peer's sequence slot must still complete.
        targets = catalog.writeset_targets(mine, participants)
        if targets:
            message = WriteSetApply(
                seq, mine, status is TxnStatus.COMMITTED, dict(local_writes)
            )
            for peer in targets:
                target = NodeId(peer, mine)
                sched.send(node_address(target), message, message.size_estimate())

    result = TransactionResult(
        txn_id=txn.txn_id,
        status=status,
        value=value,
        submit_time=txn.submit_time,
        complete_time=sim.now,
        restarts=txn.restarts,
        granted_time=granted_time,
    )
    if tracer.enabled:
        tracer.record(
            SpanKind.APPLY, apply_start, sim.now,
            replica=replica, partition=mine, txn_id=txn_id, seq=seq,
        )
    sched.workers.release()
    if multipartition and has_reconfig:
        report = result if mine == catalog.reply_partition_at(txn, epoch) else None
    elif multipartition:
        report = result if mine == txn.reply_partition(catalog) else None
    else:
        # Sole participant is by definition the reply partition.
        report = result
    if report is not None and txn.client is not None and sched.node_id.replica == 0:
        reply = TxnReply(report)
        sched.send(txn.client, reply, reply.size_estimate())
    if auditor is not None:
        auditor.observe(txn, context, status, report is not None)
    sched.finish_txn(stxn, report, passive=False)


def run_migration(sched: "Scheduler", stxn: SequencedTxn):
    """Execute one side of a control-plane key-range migration.

    Ordered first within its flip epoch, with the full moving range
    write-locked on *both* partitions, the migration is serialized
    exactly at its sequence position: the source reads the range and
    ships it to the destination (the existing remote-read machinery,
    so recovery re-serving works unchanged), then purges the copied
    records; the destination applies the copy. Every transaction from
    the flip epoch on routes to the destination, so each replica flips
    at the identical point in its serial order.
    """
    sim = sched.sim
    granted_time = sim.now
    costs = sched.config.costs
    txn = stxn.txn
    seq = stxn.seq
    mine = sched.node_id.partition
    source, dest = migration_route(txn)
    keys = txn.sorted_writes()
    tracer = sched.tracer
    replica, txn_id = sched.node_id.replica, txn.txn_id

    yield sched.workers.request()
    exec_start = sim.now

    if mine == source:
        # Copy-out: read the whole range (stalling on cold records if
        # the store is disk-backed), ship it, purge it.
        cold = sched.engine.cold_keys_of(keys)
        if cold:
            stall_start = sim.now
            yield sim.all_of([sched.engine.fetch(key) for key in cold])
            if tracer.enabled:
                tracer.record(
                    SpanKind.DISK, stall_start, sim.now,
                    replica=replica, partition=mine,
                    txn_id=txn_id, seq=seq, detail="cold-stall",
                )
        values = sched.engine.read_many(keys)
        cpu = (
            costs.txn_base_cpu
            + costs.multipartition_overhead_cpu
            + costs.read_cpu * len(keys)
        )
        yield sim.timeout(cpu)
        message = RemoteRead(seq, mine, values)
        sched.record_served_read(message, {dest})
        target = NodeId(replica, dest)
        sched.send(node_address(target), message, message.size_estimate())

        # Purge: the range now lives at the destination. Deletes go
        # through the store (write watchers observe the pre-images, so
        # a concurrent checkpoint stays consistent).
        yield sim.timeout(costs.write_cpu * len(keys))
        store = sched.engine.store
        for key in keys:
            if key in store:
                store.delete(key)
        if tracer.enabled:
            tracer.record(
                SpanKind.EXECUTE, exec_start, sim.now,
                replica=replica, partition=mine, txn_id=txn_id, seq=seq,
                detail="migration-source",
            )
        sched.workers.release()
        sched.finish_txn(stxn, None, passive=False)
        return

    # Destination: wait for the copy, apply it. The worker is released
    # for the wait (locks stay held, pinning every epoch >= flip
    # transaction over the range behind the copy-in).
    cpu = costs.txn_base_cpu + costs.multipartition_overhead_cpu
    yield sim.timeout(cpu)
    if source not in sched.remote_reads_for(seq):
        wait_start = sim.now
        sched.workers.release()
        while source not in sched.remote_reads_for(seq):
            yield sched.remote_read_arrival(seq)
        yield sched.workers.request()
        if tracer.enabled:
            tracer.record(
                SpanKind.REMOTE_READ_WAIT, wait_start, sim.now,
                replica=replica, partition=mine, txn_id=txn_id, seq=seq,
            )
    values = sched.remote_reads_for(seq)[source]
    apply_start = sim.now
    writes = {key: val for key, val in values.items() if val is not None}
    yield sim.timeout(
        costs.write_cpu * len(writes) + costs.remote_read_serve_cpu
    )
    if writes:
        sched.engine.store.apply_writes(writes, False)
    result = TransactionResult(
        txn_id=txn_id,
        status=TxnStatus.COMMITTED,
        value=len(writes),
        submit_time=txn.submit_time,
        complete_time=sim.now,
        restarts=txn.restarts,
        granted_time=granted_time,
    )
    if tracer.enabled:
        tracer.record(
            SpanKind.APPLY, apply_start, sim.now,
            replica=replica, partition=mine, txn_id=txn_id, seq=seq,
            detail="migration-dest",
        )
    sched.workers.release()
    sched.finish_txn(stxn, result, passive=False)


def apply_replicated(sched: "Scheduler", stxn: SequencedTxn):
    """Apply mode (partial replication): execute a transaction slice this
    replica cannot recompute, from the writeset replica 0 shipped.

    Entered with the local locks granted, so writes still land in global
    sequence order — determinism is preserved, only the computation is
    delegated. A passive slice (no local writes possible) just pays the
    bookkeeping cost; an active slice waits for the writeset — locks
    held, no worker consumed — then applies it.
    """
    sim = sched.sim
    costs = sched.config.costs
    catalog = sched.catalog
    txn = stxn.txn
    seq = stxn.seq
    mine = sched.node_id.partition
    tracer = sched.tracer
    replica, txn_id = sched.node_id.replica, txn.txn_id

    active = txn.active_participants(catalog)
    if mine not in active:
        # No writes can land on a passive participant; nothing to wait for.
        yield sched.workers.request()
        yield sim.timeout(costs.txn_base_cpu)
        sched.workers.release()
        sched.finish_txn(stxn, None, passive=True)
        return

    message = sched.writeset_for(seq)
    if message is None:
        wait_start = sim.now
        while message is None:
            yield sched.writeset_arrival(seq)
            message = sched.writeset_for(seq)
        if tracer.enabled:
            tracer.record(
                SpanKind.REMOTE_READ_WAIT, wait_start, sim.now,
                replica=replica, partition=mine, txn_id=txn_id, seq=seq,
                detail="writeset",
            )

    yield sched.workers.request()
    apply_start = sim.now
    cpu = costs.txn_base_cpu + costs.write_cpu * len(message.writes)
    yield sim.timeout(cpu)
    if message.committed and message.writes:
        # DELETED sentinels ride inside the writes dict, exactly as in
        # a local apply.
        sched.engine.store.apply_writes(message.writes, True)
    if tracer.enabled:
        tracer.record(
            SpanKind.APPLY, apply_start, sim.now,
            replica=replica, partition=mine, txn_id=txn_id, seq=seq,
            detail="replicated",
        )
    sched.workers.release()
    sched.finish_txn(stxn, None, passive=False)

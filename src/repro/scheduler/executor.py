"""Transaction execution: the paper's five phases, as one worker process.

The process starts once the local lock manager has granted every local
lock. Worker slots model CPU concurrency: they are held while the
transaction does work, and *released* while it blocks on remote reads
(Calvin worker threads block, but the CPU runs other transactions).
Locks, however, are held across the wait — that is the lock-hold window
deterministic locking shortens relative to 2PC, and the mechanism behind
the contention-index experiment.
"""

from __future__ import annotations

from typing import Any, Dict, TYPE_CHECKING

from repro.errors import TransactionAborted
from repro.net.messages import RemoteRead, TxnReply
from repro.obs import SpanKind
from repro.partition.catalog import NodeId, node_address
from repro.txn.context import TxnContext
from repro.txn.result import TransactionResult, TxnStatus
from repro.txn.transaction import SequencedTxn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scheduler.scheduler import Scheduler


class Executor:
    """Executes one sequenced transaction on one participant node."""

    def __init__(self, scheduler: "Scheduler", stxn: SequencedTxn):
        self.scheduler = scheduler
        self.stxn = stxn
        # The executor is created the moment the last local lock is
        # granted, so "now" is the lock-grant timestamp.
        self.granted_time = scheduler.sim.now

    def run(self):
        """The worker process (a simulation generator)."""
        sched = self.scheduler
        sim = sched.sim
        costs = sched.config.costs
        catalog = sched.catalog
        txn = self.stxn.txn
        seq = self.stxn.seq
        mine = sched.node_id.partition

        # Phase 1 — read/write set analysis.
        participants = txn.participants(catalog)
        active = txn.active_participants(catalog)
        is_active = mine in active
        reader_partitions = catalog.partitions_of(txn.read_set)
        local_read_keys = sorted(
            (key for key in txn.read_set if catalog.partition_of(key) == mine),
            key=repr,
        )

        tracer = sched.tracer
        replica, txn_id = sched.node_id.replica, txn.txn_id

        yield sched.workers.request()

        # Stall on any still-cold local data (only happens when the
        # sequencer's prefetch was skipped or its estimate too low — the
        # Section 4 penalty path). The disk wait holds locks AND the
        # worker: exactly the stall Calvin's prefetching exists to avoid.
        cold = sched.engine.cold_keys_of(local_read_keys)
        if cold:
            stall_start = sim.now
            yield sim.all_of([sched.engine.fetch(key) for key in cold])
            if tracer.enabled:
                tracer.record(
                    SpanKind.DISK, stall_start, sim.now,
                    replica=replica, partition=mine,
                    txn_id=txn_id, seq=seq, detail="cold-stall",
                )
        exec_start = sim.now

        # Phase 2 — perform local reads.
        cpu = costs.txn_base_cpu + costs.read_cpu * len(local_read_keys)
        local_values = {key: sched.engine.read(key) for key in local_read_keys}

        reads: Dict = local_values
        messages_received = 0
        if len(participants) > 1:
            cpu += costs.multipartition_overhead_cpu
            yield sim.timeout(cpu)

            # Phase 3 — serve remote reads: push local values to every
            # *other* active participant.
            if local_read_keys:
                message = RemoteRead(seq, mine, local_values)
                targets = active - {mine}
                sched.record_served_read(message, targets)
                for partition in sorted(targets):
                    target = NodeId(sched.node_id.replica, partition)
                    sched.send(node_address(target), message, message.size_estimate())

            if tracer.enabled:
                # Phases 2-3 (local reads + serving remote readers) are
                # on-CPU work, including the wait for a worker slot.
                tracer.record(
                    SpanKind.EXECUTE, exec_start, sim.now,
                    replica=replica, partition=mine, txn_id=txn_id, seq=seq,
                    detail="passive" if not is_active else None,
                )

            if not is_active:
                # Passive participant: its job ends here.
                sched.workers.release()
                sched.finish_txn(self.stxn, None, passive=True)
                return

            # Phase 4 — collect remote read results from every other
            # partition holding read-set data. The worker is released for
            # the wait (threads block; CPUs don't), locks stay held.
            expected = reader_partitions - {mine}
            if not expected.issubset(sched.remote_reads_for(seq)):
                wait_start = sim.now
                sched.workers.release()
                while not expected.issubset(sched.remote_reads_for(seq)):
                    yield sched.remote_read_arrival(seq)
                yield sched.workers.request()
                if tracer.enabled:
                    tracer.record(
                        SpanKind.REMOTE_READ_WAIT, wait_start, sim.now,
                        replica=replica, partition=mine, txn_id=txn_id, seq=seq,
                    )
            reads = dict(local_values)
            for values in sched.remote_reads_for(seq).values():
                reads.update(values)
                messages_received += 1
        else:
            yield sim.timeout(cpu)
            if tracer.enabled:
                tracer.record(
                    SpanKind.EXECUTE, exec_start, sim.now,
                    replica=replica, partition=mine, txn_id=txn_id, seq=seq,
                )

        # Phase 5 — execute logic, apply local writes.
        apply_start = sim.now
        result = yield from self._execute_logic(reads, messages_received)
        if tracer.enabled:
            tracer.record(
                SpanKind.APPLY, apply_start, sim.now,
                replica=replica, partition=mine, txn_id=txn_id, seq=seq,
            )
        sched.workers.release()
        report = result if mine == txn.reply_partition(catalog) else None
        if report is not None and txn.client is not None and sched.node_id.replica == 0:
            reply = TxnReply(report)
            sched.send(txn.client, reply, reply.size_estimate())
        sched.finish_txn(self.stxn, report, passive=False)

    def _execute_logic(self, reads: Dict, messages_received: int):
        """Run recheck + procedure logic; apply this partition's writes."""
        sched = self.scheduler
        sim = sched.sim
        costs = sched.config.costs
        catalog = sched.catalog
        txn = self.stxn.txn
        mine = sched.node_id.partition
        procedure = sched.registry.get(txn.procedure)

        context = TxnContext(txn, reads)
        status: TxnStatus
        value: Any = None

        # OLLP recheck (Section 3.2.1): deterministic — every active
        # participant computes the same verdict from the same snapshot.
        stale = (
            txn.dependent
            and procedure.recheck is not None
            and not procedure.recheck(context)
        )
        if stale:
            status = TxnStatus.RESTART
        else:
            try:
                value = procedure.logic(context)
                status = TxnStatus.COMMITTED
            except TransactionAborted as abort:
                status = TxnStatus.ABORTED
                value = abort.reason
                context.writes.clear()

        local_writes = {
            key: val
            for key, val in context.writes.items()
            if catalog.partition_of(key) == mine
        }
        cpu = (
            procedure.logic_cpu
            + costs.write_cpu * len(local_writes)
            + costs.remote_read_serve_cpu * messages_received
        )
        if cpu > 0:
            yield sim.timeout(cpu)
        if status is TxnStatus.COMMITTED and local_writes:
            sched.engine.store.apply_writes(local_writes)

        return TransactionResult(
            txn_id=txn.txn_id,
            status=status,
            value=value,
            submit_time=txn.submit_time,
            complete_time=sim.now,
            restarts=txn.restarts,
            granted_time=self.granted_time,
        )

"""Deterministic lock manager.

Shared/exclusive locks over this partition's keys, with one ironclad
rule (paper Section 3.1): lock requests are made in global-sequence
order, and each lock is granted to requesters strictly in request order
(readers may share). ``acquire`` never blocks — it queues requests and
reports, via the ``on_ready`` callback, whenever some transaction holds
*all* of its local locks and may start executing.

Implementation notes (this is the scheduler's hottest data structure):

- Each key's queue is an intrusive doubly-linked list of requests, so
  ``release`` unlinks in O(1) via per-txn backlinks instead of scanning.
- Each queue tracks two counters — queued WRITE requests and ungranted
  requests. Because grants always form a prefix of the queue (the head
  is granted the moment it reaches the front, and readers extend the
  granted prefix), the immediate-grant decision on acquire is counter
  arithmetic: a WRITE is granted iff the queue was empty; a READ is
  granted iff there are no writes and nothing ungranted ahead of it.
- An *uncontended* key — by far the common case at low contention —
  never allocates a queue (or even a request object): the table maps
  the key to a bare ``(seq, is_write)`` marker tuple, and a second
  request arriving promotes the marker to a real queue holding an
  equivalent granted request. Sole holders are always granted, so the
  promotion preserves the counter invariants.
- Keys are ordered by :func:`sort_token` (cached interned reprs)
  instead of ``sorted(..., key=repr)`` — same order, no repr per call.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import SchedulerError
from repro.partition.partitioner import Key, sort_token
from repro.txn.transaction import GlobalSeq, SequencedTxn


class LockMode(enum.Enum):
    READ = "read"
    WRITE = "write"


class _Request:
    __slots__ = ("seq", "mode", "granted", "prev", "next")

    def __init__(self, seq: GlobalSeq, mode: LockMode):
        self.seq = seq
        self.mode = mode
        self.granted = False
        self.prev: Optional[_Request] = None
        self.next: Optional[_Request] = None


class _LockQueue:
    """Doubly-linked request queue for one key, with grant counters."""

    __slots__ = ("head", "tail", "size", "writes", "ungranted")

    def __init__(self) -> None:
        self.head: Optional[_Request] = None
        self.tail: Optional[_Request] = None
        self.size = 0
        self.writes = 0      # queued WRITE requests (granted or not)
        self.ungranted = 0   # queued requests not yet granted

    def append(self, request: _Request) -> None:
        tail = self.tail
        if tail is None:
            self.head = self.tail = request
        else:
            tail.next = request
            request.prev = tail
            self.tail = request
        self.size += 1
        if request.mode is LockMode.WRITE:
            self.writes += 1
        if not request.granted:
            self.ungranted += 1

    def remove(self, request: _Request) -> None:
        prev, nxt = request.prev, request.next
        if prev is None:
            self.head = nxt
        else:
            prev.next = nxt
        if nxt is None:
            self.tail = prev
        else:
            nxt.prev = prev
        request.prev = request.next = None
        self.size -= 1
        if request.mode is LockMode.WRITE:
            self.writes -= 1
        if not request.granted:
            self.ungranted -= 1


class _TxnEntry:
    __slots__ = ("stxn", "pending", "requests")

    def __init__(self, stxn: SequencedTxn):
        self.stxn = stxn
        self.pending = 0
        # Backlinks for O(1) release: (key, request-or-marker) per lock
        # held/queued (marker = sole-holder tuple, see module notes).
        self.requests: List[Tuple[Key, object]] = []


class DeterministicLockManager:
    """Per-partition lock table with in-order grants."""

    def __init__(self, on_ready: Callable[[SequencedTxn], None]):
        self._on_ready = on_ready
        self._queues: Dict[Key, _LockQueue] = {}
        self._txns: Dict[GlobalSeq, _TxnEntry] = {}
        self._last_acquired: GlobalSeq = (-1, -1, -1)
        self.grants = 0
        self.immediate_grants = 0

    # -- introspection ------------------------------------------------------

    @property
    def active_txns(self) -> int:
        return len(self._txns)

    @property
    def queued_requests(self) -> int:
        """Total lock requests queued across all keys (granted or not)."""
        return sum(
            1 if entry.__class__ is tuple else entry.size
            for entry in self._queues.values()
        )

    def waiters_on(self, key: Key) -> int:
        """Requests queued (granted or not) on ``key``."""
        entry = self._queues.get(key)
        if entry is None:
            return 0
        return 1 if entry.__class__ is tuple else entry.size

    # -- acquisition --------------------------------------------------------

    def acquire(
        self,
        stxn: SequencedTxn,
        read_keys: Iterable[Key],
        write_keys: Iterable[Key],
    ) -> bool:
        """Queue all lock requests for ``stxn``; returns True if all
        granted immediately. MUST be called in increasing sequence order —
        that is the determinism invariant, and it is enforced."""
        if stxn.seq <= self._last_acquired:
            raise SchedulerError(
                f"lock requests out of sequence order: {stxn.seq} after "
                f"{self._last_acquired}"
            )
        self._last_acquired = stxn.seq
        if stxn.seq in self._txns:
            raise SchedulerError(f"duplicate lock acquisition for {stxn.seq}")

        write_set = set(write_keys)
        # A key both read and written gets one WRITE lock.
        return self._acquire_requests(
            stxn,
            sorted(write_set, key=sort_token),
            sorted(set(read_keys) - write_set, key=sort_token),
        )

    def acquire_plan(
        self, stxn: SequencedTxn, plan: Tuple[Tuple[Key, ...], Tuple[Key, ...]]
    ) -> bool:
        """:meth:`acquire` with a precomputed ``(write_keys, read_keys)``
        plan.

        The plan halves must be what acquire would build: write keys in
        sort-token order, then read-*only* keys in sort-token order. The
        scheduler caches one plan per transaction so repeated admissions
        skip the per-call set algebra and sorting.
        """
        if stxn.seq <= self._last_acquired:
            raise SchedulerError(
                f"lock requests out of sequence order: {stxn.seq} after "
                f"{self._last_acquired}"
            )
        self._last_acquired = stxn.seq
        if stxn.seq in self._txns:
            raise SchedulerError(f"duplicate lock acquisition for {stxn.seq}")
        return self._acquire_requests(stxn, plan[0], plan[1])

    def _acquire_requests(self, stxn: SequencedTxn, write_keys, read_keys) -> bool:
        if not write_keys and not read_keys:
            raise SchedulerError(f"transaction {stxn.seq} requests no local locks")

        entry = _TxnEntry(stxn)
        seq = stxn.seq
        self._txns[seq] = entry
        queues = self._queues
        queues_get = queues.get
        backlinks = entry.requests
        pending = 0
        for mode, keys in ((LockMode.WRITE, write_keys), (LockMode.READ, read_keys)):
            is_write = mode is LockMode.WRITE
            for key in keys:
                holder = queues_get(key)
                if holder is None:
                    # Uncontended: a bare (seq, is_write) marker is the
                    # table entry — no request object, no queue.
                    marker = (seq, is_write)
                    queues[key] = marker
                    backlinks.append((key, marker))
                    continue
                if holder.__class__ is tuple:
                    # Second arrival: promote the sole (granted) marker
                    # to a real queue holding an equivalent request,
                    # then join it. The old holder's backlink is swapped
                    # for the new request so its release still unlinks.
                    old = _Request(
                        holder[0],
                        LockMode.WRITE if holder[1] else LockMode.READ,
                    )
                    old.granted = True
                    queue = _LockQueue()
                    queue.append(old)
                    queues[key] = queue
                    owner_links = self._txns[holder[0]].requests
                    for index in range(len(owner_links)):
                        if owner_links[index][1] is holder:
                            owner_links[index] = (key, old)
                            break
                else:
                    queue = holder
                request = _Request(seq, mode)
                # Grant-on-arrival: a new request is granted iff it joins
                # the all-granted prefix — the queue is nonempty here, so
                # a WRITE always waits; a READ joins iff no writes are
                # queued and nothing ahead still waits.
                if is_write:
                    request.granted = False
                    pending += 1
                else:
                    request.granted = queue.writes == 0 and queue.ungranted == 0
                    if not request.granted:
                        pending += 1
                queue.append(request)
                backlinks.append((key, request))
        entry.pending = pending
        if pending == 0:
            self.immediate_grants += 1
            self.grants += 1
            self._on_ready(stxn)
            return True
        return False

    def release(self, stxn: SequencedTxn) -> None:
        """Release all of ``stxn``'s locks; newly unblocked transactions
        are reported through ``on_ready``."""
        entry = self._txns.pop(stxn.seq, None)
        if entry is None:
            raise SchedulerError(f"release of unknown transaction {stxn.seq}")
        queues = self._queues
        txns = self._txns
        ready: List[SequencedTxn] = []
        key = None
        try:
            for key, request in entry.requests:
                holder = queues[key]
                if holder is request:
                    # Sole uncontended holder: drop the table entry.
                    del queues[key]
                    continue
                queue = holder
                queue.remove(request)
                if queue.size == 0:
                    del queues[key]
                    continue
                if queue.ungranted == 0:
                    continue  # everyone left already holds the lock
                for newly in self._grant_eligible(queue):
                    waiter = txns[newly]
                    waiter.pending -= 1
                    if waiter.pending == 0:
                        ready.append(waiter.stxn)
        except KeyError:
            raise SchedulerError(f"lock queue missing for key {key!r}") from None
        # Report in sequence order: with several transactions unblocked by
        # one release, the earlier-sequenced one must start first.
        if ready:
            ready.sort()
            for waiter_stxn in ready:
                self.grants += 1
                self._on_ready(waiter_stxn)

    # -- grant rule -----------------------------------------------------------

    def _grant_eligible(self, queue: _LockQueue) -> List[GlobalSeq]:
        """Grant the head, plus a shared-read prefix; returns newly granted."""
        newly: List[GlobalSeq] = []
        head = queue.head
        assert head is not None
        if not head.granted:
            head.granted = True
            queue.ungranted -= 1
            newly.append(head.seq)
        if head.mode is LockMode.READ:
            request = head.next
            while request is not None and request.mode is LockMode.READ:
                if not request.granted:
                    request.granted = True
                    queue.ungranted -= 1
                    newly.append(request.seq)
                request = request.next
        return newly

"""Deterministic lock manager.

Shared/exclusive locks over this partition's keys, with one ironclad
rule (paper Section 3.1): lock requests are made in global-sequence
order, and each lock is granted to requesters strictly in request order
(readers may share). ``acquire`` never blocks — it queues requests and
reports, via the ``on_ready`` callback, whenever some transaction holds
*all* of its local locks and may start executing.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, Iterable, List

from repro.errors import SchedulerError
from repro.partition.partitioner import Key
from repro.txn.transaction import GlobalSeq, SequencedTxn


class LockMode(enum.Enum):
    READ = "read"
    WRITE = "write"


class _Request:
    __slots__ = ("seq", "mode", "granted")

    def __init__(self, seq: GlobalSeq, mode: LockMode):
        self.seq = seq
        self.mode = mode
        self.granted = False


class _TxnEntry:
    __slots__ = ("stxn", "pending", "keys")

    def __init__(self, stxn: SequencedTxn, keys: List[Key]):
        self.stxn = stxn
        self.pending = 0
        self.keys = keys


class DeterministicLockManager:
    """Per-partition lock table with in-order grants."""

    def __init__(self, on_ready: Callable[[SequencedTxn], None]):
        self._on_ready = on_ready
        self._queues: Dict[Key, List[_Request]] = {}
        self._txns: Dict[GlobalSeq, _TxnEntry] = {}
        self._last_acquired: GlobalSeq = (-1, -1, -1)
        self.grants = 0
        self.immediate_grants = 0

    # -- introspection ------------------------------------------------------

    @property
    def active_txns(self) -> int:
        return len(self._txns)

    def waiters_on(self, key: Key) -> int:
        """Requests queued (granted or not) on ``key``."""
        return len(self._queues.get(key, ()))

    # -- acquisition --------------------------------------------------------

    def acquire(
        self,
        stxn: SequencedTxn,
        read_keys: Iterable[Key],
        write_keys: Iterable[Key],
    ) -> bool:
        """Queue all lock requests for ``stxn``; returns True if all
        granted immediately. MUST be called in increasing sequence order —
        that is the determinism invariant, and it is enforced."""
        if stxn.seq <= self._last_acquired:
            raise SchedulerError(
                f"lock requests out of sequence order: {stxn.seq} after "
                f"{self._last_acquired}"
            )
        self._last_acquired = stxn.seq
        if stxn.seq in self._txns:
            raise SchedulerError(f"duplicate lock acquisition for {stxn.seq}")

        write_set = set(write_keys)
        # A key both read and written gets one WRITE lock.
        requests = [(key, LockMode.WRITE) for key in sorted(write_set, key=repr)]
        requests += [
            (key, LockMode.READ)
            for key in sorted(set(read_keys) - write_set, key=repr)
        ]
        if not requests:
            raise SchedulerError(f"transaction {stxn.seq} requests no local locks")

        entry = _TxnEntry(stxn, [key for key, _mode in requests])
        self._txns[stxn.seq] = entry
        for key, mode in requests:
            request = _Request(stxn.seq, mode)
            queue = self._queues.setdefault(key, [])
            queue.append(request)
            self._grant_eligible(queue)
            if not request.granted:
                entry.pending += 1
        if entry.pending == 0:
            self.immediate_grants += 1
            self.grants += 1
            self._on_ready(stxn)
            return True
        return False

    def release(self, stxn: SequencedTxn) -> None:
        """Release all of ``stxn``'s locks; newly unblocked transactions
        are reported through ``on_ready``."""
        entry = self._txns.pop(stxn.seq, None)
        if entry is None:
            raise SchedulerError(f"release of unknown transaction {stxn.seq}")
        ready: List[SequencedTxn] = []
        for key in entry.keys:
            queue = self._queues.get(key)
            if queue is None:
                raise SchedulerError(f"lock queue missing for key {key!r}")
            for index, request in enumerate(queue):
                if request.seq == stxn.seq:
                    del queue[index]
                    break
            else:
                raise SchedulerError(f"{stxn.seq} held no lock on {key!r}")
            if not queue:
                del self._queues[key]
                continue
            for newly in self._grant_eligible(queue):
                waiter = self._txns[newly]
                waiter.pending -= 1
                if waiter.pending == 0:
                    ready.append(waiter.stxn)
        # Report in sequence order: with several transactions unblocked by
        # one release, the earlier-sequenced one must start first.
        for waiter_stxn in sorted(ready):
            self.grants += 1
            self._on_ready(waiter_stxn)

    # -- grant rule -----------------------------------------------------------

    def _grant_eligible(self, queue: List[_Request]) -> List[GlobalSeq]:
        """Grant the head, plus a shared-read prefix; returns newly granted."""
        newly: List[GlobalSeq] = []
        head = queue[0]
        if not head.granted:
            head.granted = True
            newly.append(head.seq)
        if head.mode is LockMode.READ:
            for request in queue[1:]:
                if request.mode is not LockMode.READ:
                    break
                if not request.granted:
                    request.granted = True
                    newly.append(request.seq)
        return newly

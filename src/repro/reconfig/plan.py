"""Control-plane records: migration plans and reconfiguration events.

Both are plain immutable descriptions. A :class:`MigrationPlan` is the
*intent* the control plane computed — which keys move where, and at
which epoch every replica flips its routing. A :class:`ReconfigEvent`
is the *audit record* of one executed control-plane action, exposed by
:meth:`ClusterAdmin.events` so tests and benchmarks can assert exactly
what the cluster did and when.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

# Event kinds, in the vocabulary of the public API.
KIND_SPLIT = "split"
KIND_MERGE = "merge"
KIND_JOIN = "join"
KIND_LEAVE = "leave"


@dataclass(frozen=True)
class MigrationPlan:
    """One planned key-range migration, fully determined before it runs.

    The plan is computed from sequenced state (the source partition's
    store at planning time) and a deterministic epoch arithmetic, so
    the same seed always produces the same plan. ``flip_epoch`` is the
    epoch whose serial order the migration transaction leads: every
    transaction sequenced at or after it routes the moved keys to
    ``dest``.
    """

    migration_id: int
    source: int
    dest: int
    keys: Tuple[Any, ...]
    flip_epoch: int
    txn_id: int

    @property
    def num_keys(self) -> int:
        return len(self.keys)


@dataclass(frozen=True)
class ReconfigEvent:
    """The audit record of one executed control-plane action."""

    kind: str                       # split | merge | join | leave
    epoch: int                      # epoch at which the action takes effect
    source: Optional[int] = None    # partition keys moved away from
    dest: Optional[int] = None      # partition keys moved to / joined
    keys_moved: int = 0
    migration_id: Optional[int] = None
    reason: str = ""                # "" for operator actions; policy tag otherwise

"""The sequenced migration transaction's reference procedure.

The data plane never runs this logic: :func:`repro.scheduler.executor.
run_migration` implements the real two-sided copy (source reads and
purges, destination applies) because the work spans two partitions'
stores. The registered procedure exists for the *serial reference
execution* the correctness checkers perform on a single flat store —
there, moving a key between partitions is an identity write, so the
reference logic reads each moving key and writes it back unchanged.
Keys absent from the store stay absent (nothing is written for them),
matching the data plane's "copy only what exists" behaviour.
"""

from __future__ import annotations

from repro.partition.catalog import MIGRATION_PROC
from repro.txn.procedures import Procedure


def _migration_logic(ctx) -> int:
    moved = 0
    for key in ctx.txn.sorted_writes():
        value = ctx.read(key)
        if value is not None:
            ctx.write(key, value)
            moved += 1
    return moved


def migration_procedure() -> Procedure:
    """The registry entry for :data:`MIGRATION_PROC`."""
    return Procedure(name=MIGRATION_PROC, logic=_migration_logic)

"""Autoscaling policy: admission signals in, control-plane actions out.

The autoscaler closes the loop between the admission controllers'
saturation signals (queue depth, shed rate) and the
:class:`~repro.reconfig.admin.ClusterAdmin` facade. It samples on a
fixed sim-time interval, so every decision is a pure function of
(policy, sampled state, virtual time) — the same seed produces the
same scaling timeline and the same trace digest.

Scale **up** splits the hottest origin onto a dormant spare (growing
the active-origin set at the split's flip epoch); scale **down**
retires the highest-numbered origin once the cluster has been idle for
enough consecutive samples. A cooldown keeps consecutive actions from
racing each other's flip epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.reconfig.admin import ClusterAdmin


@dataclass(frozen=True)
class AutoscalePolicy:
    """Thresholds driving :class:`Autoscaler` decisions."""

    interval: float = 0.05            # seconds between samples
    scale_up_queue_depth: int = 16    # any origin's admission queue depth
    scale_up_shed_rate: int = 8       # sheds + drops per interval, any origin
    scale_down_idle_samples: int = 4  # consecutive all-idle samples
    cooldown: float = 0.2             # seconds between actions
    split_fraction: float = 0.5
    min_origins: int = 1
    max_origins: Optional[int] = None

    def validate(self) -> None:
        if self.interval <= 0:
            raise ConfigError("autoscale interval must be positive")
        if self.cooldown < 0:
            raise ConfigError("autoscale cooldown must be >= 0")
        if self.min_origins < 1:
            raise ConfigError("min_origins must be >= 1")
        if not 0.0 < self.split_fraction <= 1.0:
            raise ConfigError("split_fraction must be in (0, 1]")


class Autoscaler:
    """Samples saturation signals and drives the admin facade."""

    def __init__(self, admin: "ClusterAdmin", policy: Optional[AutoscalePolicy] = None):
        self.admin = admin
        self.policy = policy or AutoscalePolicy()
        self.policy.validate()
        self.cluster = admin.cluster
        self._started = False
        self._stopped = False
        self._last_action = -float("inf")
        self._idle_samples = 0
        self._last_overflow: Dict[int, int] = {}
        # (sim time, action, partition, reason) per decision taken.
        self.decisions: List[Tuple[float, str, int, str]] = []

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.cluster.sim.schedule(self.policy.interval, self._sample)

    def stop(self) -> None:
        """Stop sampling (already-armed actions still land)."""
        self._stopped = True

    # -- sampling ---------------------------------------------------------

    def _signals(self, origins) -> Dict[int, Tuple[int, int]]:
        """Per-origin (queue depth, overflow delta since last sample)."""
        signals = {}
        for origin in origins:
            admission = self.cluster.node(0, origin).sequencer.admission
            if admission is None:
                signals[origin] = (0, 0)
                continue
            overflow = admission.shed + admission.dropped + admission.backpressured
            delta = overflow - self._last_overflow.get(origin, 0)
            self._last_overflow[origin] = overflow
            signals[origin] = (admission.queue_depth, delta)
        return signals

    def _sample(self) -> None:
        if self._stopped:
            return
        sim = self.cluster.sim
        policy = self.policy
        origins = self.admin.current_origins()
        signals = self._signals(origins)
        if sim.now - self._last_action >= policy.cooldown:
            hot = [
                origin
                for origin, (depth, delta) in signals.items()
                if depth >= policy.scale_up_queue_depth
                or delta >= policy.scale_up_shed_rate
            ]
            idle = all(
                depth == 0 and delta == 0 for depth, delta in signals.values()
            )
            if hot:
                self._idle_samples = 0
                self._scale_up(signals, hot)
            elif idle:
                self._idle_samples += 1
                if self._idle_samples >= policy.scale_down_idle_samples:
                    self._scale_down(origins)
            else:
                self._idle_samples = 0
        sim.schedule(policy.interval, self._sample)

    # -- actions ----------------------------------------------------------

    def _scale_up(self, signals, hot) -> None:
        policy = self.policy
        origins = self.admin.current_origins()
        if policy.max_origins is not None and len(origins) >= policy.max_origins:
            return
        if not self.admin.spare_partitions():
            return
        # Hottest origin: deepest queue, then largest shed delta, then
        # lowest index — a total order, so the choice is deterministic.
        hottest = max(hot, key=lambda o: (signals[o][0], signals[o][1], -o))
        depth, delta = signals[hottest]
        reason = f"autoscale-up: p{hottest} depth={depth} shed={delta}"
        self.admin.split(hottest, policy.split_fraction, reason=reason)
        self._last_action = self.cluster.sim.now
        self.decisions.append((self.cluster.sim.now, "split", hottest, reason))

    def _scale_down(self, origins) -> None:
        policy = self.policy
        if len(origins) <= policy.min_origins:
            return
        victim = max(origins)
        reason = f"autoscale-down: idle for {self._idle_samples} samples"
        self.admin.remove_node(victim, reason=reason)
        self._last_action = self.cluster.sim.now
        self._idle_samples = 0
        self.decisions.append((self.cluster.sim.now, "remove", victim, reason))

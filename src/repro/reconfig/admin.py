"""The unified control plane: one facade for every cluster-shape change.

:class:`ClusterAdmin` is the *only* public surface for elastic
reconfiguration. Every action — splitting a hot partition, merging a
cold one away, activating a pre-provisioned spare, retiring a node —
reduces to the same deterministic mechanism:

1. Pick a **flip epoch** ``F`` a couple of epochs ahead of the present.
2. Arm the catalog's epoch-keyed router: from ``F`` on, the moving keys
   route to their destination, and (for join/leave) the active-origin
   set changes. Routing is a pure function of the epoch number, so
   every replica flips identically without any cross-replica handshake.
3. Inject a **migration transaction** that leads epoch ``F`` in the
   global serial order. It write-locks the moving range on both sides,
   copies the data source → destination, and purges the source — all
   through the ordinary sequenced-execution machinery, so the move is
   serializable by construction, survives crashes via the same input
   log, and replays bit-identically.

Nothing here races the data plane: planning reads sequenced state, and
every effect is keyed to an epoch boundary strictly in the future.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import ConfigError
from repro.obs import CAT_NODE, SpanKind
from repro.partition.catalog import MIGRATION_PROC, NodeId, node_address
from repro.partition.partitioner import sort_token
from repro.reconfig.plan import (
    KIND_JOIN,
    KIND_LEAVE,
    KIND_MERGE,
    KIND_SPLIT,
    MigrationPlan,
    ReconfigEvent,
)
from repro.txn.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cluster import CalvinCluster

# Migration transactions live in their own (negative) id space so the
# control plane never perturbs the client-side txn-id counter — a run
# with an idle admin stays bit-identical to one without an admin.
_MIGRATION_TXN_BASE = 1000

# Epochs of lead time between an admin call and its flip epoch: the
# flip must be strictly in the future of every sequencer's current
# epoch so the config txn and the routing override land atomically.
_FLIP_LEAD = 2


class ClusterAdmin:
    """Control-plane facade over one :class:`CalvinCluster`.

    All methods are deterministic functions of (cluster state, sim
    time, arguments): the same seed and the same call sequence produce
    the same plans, the same flip epochs, and the same trace digests.
    """

    def __init__(self, cluster: "CalvinCluster"):
        config = cluster.config
        if config.engine != "core":
            raise ConfigError(
                f"elastic reconfiguration requires the core engine "
                f"(got {config.engine!r})"
            )
        if config.partial_hosting is not None:
            raise ConfigError(
                "elastic reconfiguration is incompatible with partial hosting"
            )
        if getattr(cluster, "reconfig_admin", None) is not None:
            raise ConfigError("cluster already has a ClusterAdmin")
        self.cluster = cluster
        self.catalog = cluster.catalog
        cluster.reconfig_admin = self
        self._migration_counter = 0
        self._pending_until = 0.0
        self.plans: List[MigrationPlan] = []
        self.events: List[ReconfigEvent] = []
        # Tallies behind the reconfig.* gauges.
        self.migrations = 0
        self.keys_moved = 0
        self.joins = 0
        self.leaves = 0
        registry = cluster.metrics_registry
        registry.gauge("reconfig.migrations", lambda: self.migrations)
        registry.gauge("reconfig.keys_moved", lambda: self.keys_moved)
        registry.gauge("reconfig.joins", lambda: self.joins)
        registry.gauge("reconfig.leaves", lambda: self.leaves)
        registry.gauge("reconfig.events", lambda: len(self.events))

    # -- state ------------------------------------------------------------

    @property
    def quiesced(self) -> bool:
        """True once every scheduled control-plane effect has landed."""
        if any(
            node.sequencer.pending_config_txns
            for node in self.cluster.nodes.values()
        ):
            return False
        return self.cluster.sim.now >= self._pending_until

    def current_origins(self):
        """Active input partitions for the epoch covering *now*."""
        return self.catalog.origins_at(self.cluster.current_epoch())

    def spare_partitions(self) -> List[int]:
        """Provisioned-but-dormant partitions, lowest first."""
        return [
            partition
            for partition in range(self.catalog.num_partitions)
            if self.cluster.node(0, partition).sequencer.dormant
        ]

    # -- planning ---------------------------------------------------------

    def plan(
        self,
        source: int,
        fraction: float = 0.5,
        dest: Optional[int] = None,
        at_epoch: Optional[int] = None,
    ) -> MigrationPlan:
        """Compute (without executing) the migration a :meth:`split`
        with the same arguments would run right now.

        Pure: consumes no ids, arms nothing. The keys are the tail
        ``fraction`` of the source store in stable sort order — the
        same order the lock manager and the stores use everywhere else.
        """
        return self._plan(
            source, fraction, dest, at_epoch, self._migration_counter + 1
        )

    def _plan(
        self,
        source: int,
        fraction: float,
        dest: Optional[int],
        at_epoch: Optional[int],
        migration_id: int,
    ) -> MigrationPlan:
        if not 0.0 < fraction <= 1.0:
            raise ConfigError(f"split fraction must be in (0, 1] (got {fraction})")
        flip = self._resolve_epoch(at_epoch)
        origins = self.catalog.origins_at(flip)
        if source not in origins:
            raise ConfigError(f"partition {source} is not an active origin")
        if dest is None:
            dest = self._default_dest(source, origins)
        elif dest == source:
            raise ConfigError("split source and destination coincide")
        keys = sorted(
            self.cluster.node(0, source).store.keys(), key=sort_token
        )
        moving = keys[len(keys) - int(len(keys) * fraction):]
        if not moving:
            raise ConfigError(f"partition {source} has no keys to move")
        return MigrationPlan(
            migration_id=migration_id,
            source=source,
            dest=dest,
            keys=tuple(moving),
            flip_epoch=flip,
            txn_id=-(_MIGRATION_TXN_BASE + migration_id),
        )

    def _resolve_epoch(self, at_epoch: Optional[int]) -> int:
        floor = self.cluster.current_epoch() + _FLIP_LEAD
        if at_epoch is None:
            return floor
        if at_epoch < floor:
            raise ConfigError(
                f"epoch {at_epoch} is too soon; the earliest safe flip "
                f"epoch is {floor}"
            )
        return at_epoch

    def _default_dest(self, source: int, origins) -> int:
        # Prefer activating a spare (elastic growth); otherwise shed
        # onto the least-populated active origin, lowest index first.
        spares = self.spare_partitions()
        if spares:
            return spares[0]
        candidates = [origin for origin in origins if origin != source]
        if not candidates:
            raise ConfigError("no destination available for the split")
        return min(
            candidates,
            key=lambda p: (len(self.cluster.node(0, p).store), p),
        )

    # -- actions ----------------------------------------------------------

    def split(
        self,
        source: int,
        fraction: float = 0.5,
        dest: Optional[int] = None,
        at_epoch: Optional[int] = None,
        reason: str = "",
    ) -> MigrationPlan:
        """Move the tail ``fraction`` of ``source``'s keys to ``dest``.

        When ``dest`` is a dormant spare (the default when one exists)
        it joins the active-origin set at the same flip epoch, so the
        split both re-shards the data and grows the cluster.
        """
        self._migration_counter += 1
        plan = self._plan(source, fraction, dest, at_epoch, self._migration_counter)
        if plan.dest in self.spare_partitions():
            self._activate(plan.dest, plan.flip_epoch, reason or "split target")
        self._execute(plan, KIND_SPLIT, reason)
        return plan

    def merge(
        self,
        source: int,
        dest: int,
        at_epoch: Optional[int] = None,
        reason: str = "",
    ) -> MigrationPlan:
        """Move *all* of ``source``'s keys into ``dest``.

        The source origin stays active (it still sequences input);
        :meth:`remove_node` is merge + retire in one action.
        """
        self._migration_counter += 1
        plan = self._plan(source, 1.0, dest, at_epoch, self._migration_counter)
        self._execute(plan, KIND_MERGE, reason)
        return plan

    def add_node(
        self,
        partition: Optional[int] = None,
        at_epoch: Optional[int] = None,
        reason: str = "",
    ) -> int:
        """Activate a dormant spare as an input origin at the flip epoch.

        The spare's sequencer wakes in lock-step with the established
        ones (its first batch is the flip epoch), and every scheduler's
        epoch barrier starts expecting its sub-batches from exactly
        that epoch on. Returns the activated partition.
        """
        spares = self.spare_partitions()
        if partition is None:
            if not spares:
                raise ConfigError("no spare partition available to add")
            partition = spares[0]
        elif partition not in spares:
            raise ConfigError(f"partition {partition} is not a dormant spare")
        flip = self._resolve_epoch(at_epoch)
        self._activate(partition, flip, reason)
        return partition

    def remove_node(
        self,
        partition: int,
        dest: Optional[int] = None,
        at_epoch: Optional[int] = None,
        reason: str = "",
    ) -> Optional[MigrationPlan]:
        """Retire an origin: migrate its keys away, stop its sequencer.

        The keys move at flip epoch ``F``; the origin cuts its last
        batch at ``F`` and retires at ``F + 1``, forwarding any input
        still buffered (or queued in admission) to the destination
        origin. Clients homed on the retiring origin are redirected at
        the retirement instant. Returns the migration plan (None when
        the partition held no keys).
        """
        flip = self._resolve_epoch(at_epoch)
        origins = self.catalog.origins_at(flip)
        if partition not in origins:
            raise ConfigError(f"partition {partition} is not an active origin")
        if len(origins) == 1:
            raise ConfigError("cannot remove the last active origin")
        if dest is None:
            dest = self._default_removal_dest(partition, origins)
        elif dest == partition or dest not in origins:
            raise ConfigError(f"invalid removal destination {dest}")

        plan = None
        if len(self.cluster.node(0, partition).store):
            self._migration_counter += 1
            plan = self._plan(partition, 1.0, dest, flip, self._migration_counter)
            self._execute(plan, KIND_LEAVE, reason, count_migration_only=True)

        retire_epoch = flip + 1
        remaining = tuple(o for o in origins if o != partition)
        self.catalog.arm_origin_change(retire_epoch, remaining)
        successor = node_address(NodeId(0, dest))
        self.cluster.node(0, partition).sequencer.retire_at(retire_epoch, successor)
        sim = self.cluster.sim
        retire_time = retire_epoch * self.cluster.config.epoch_duration
        sim.schedule_at(retire_time, self._redirect_clients, partition, dest)
        self._note_pending(retire_epoch)
        self.leaves += 1
        self._record_event(
            ReconfigEvent(
                kind=KIND_LEAVE,
                epoch=retire_epoch,
                source=partition,
                dest=dest,
                keys_moved=plan.num_keys if plan else 0,
                migration_id=plan.migration_id if plan else None,
                reason=reason,
            )
        )
        return plan

    def _default_removal_dest(self, partition: int, origins) -> int:
        candidates = [origin for origin in origins if origin != partition]
        return min(
            candidates,
            key=lambda p: (len(self.cluster.node(0, p).store), p),
        )

    # -- mechanism --------------------------------------------------------

    def _activate(self, partition: int, flip: int, reason: str) -> None:
        origins = self.catalog.origins_at(flip)
        self.catalog.arm_origin_change(flip, origins + (partition,))
        self.cluster.node(0, partition).sequencer.start_at_epoch(flip)
        self._note_pending(flip)
        self.joins += 1
        self._record_event(
            ReconfigEvent(kind=KIND_JOIN, epoch=flip, dest=partition, reason=reason)
        )

    def _execute(
        self,
        plan: MigrationPlan,
        kind: str,
        reason: str,
        count_migration_only: bool = False,
    ) -> None:
        """Arm the router and inject the sequenced migration for ``plan``."""
        catalog = self.catalog
        catalog.arm_override(
            plan.flip_epoch, {key: plan.dest for key in plan.keys}
        )
        txn = Transaction.create(
            txn_id=plan.txn_id,
            procedure=MIGRATION_PROC,
            args=(plan.migration_id, plan.source, plan.dest),
            read_set=plan.keys,
            write_set=plan.keys,
            origin_partition=plan.source,
        )
        # The migration must lead its epoch in the *global* serial
        # order, so it joins the batch of the lowest-numbered origin
        # active at the flip epoch.
        coordinator = min(catalog.origins_at(plan.flip_epoch))
        sequencer = self.cluster.node(0, coordinator).sequencer
        sequencer.register_config_txn(plan.flip_epoch, txn)
        self._note_pending(plan.flip_epoch)
        self.plans.append(plan)
        self.migrations += 1
        self.keys_moved += plan.num_keys
        if not count_migration_only:
            self._record_event(
                ReconfigEvent(
                    kind=kind,
                    epoch=plan.flip_epoch,
                    source=plan.source,
                    dest=plan.dest,
                    keys_moved=plan.num_keys,
                    migration_id=plan.migration_id,
                    reason=reason,
                )
            )

    def _note_pending(self, effect_epoch: int) -> None:
        # Effects keyed to epoch E land by the tick cutting E + 1; the
        # extra epoch covers the retire hand-off and migration apply.
        horizon = (effect_epoch + 2) * self.cluster.config.epoch_duration
        if horizon > self._pending_until:
            self._pending_until = horizon

    def _redirect_clients(self, partition: int, dest: int) -> None:
        for client in self.cluster.clients:
            if client.partition == partition:
                client.redirect(dest)

    def _record_event(self, event: ReconfigEvent) -> None:
        self.events.append(event)
        tracer = self.cluster.tracer
        if tracer.enabled:
            now = self.cluster.sim.now
            tracer.record(
                SpanKind.RECONFIG,
                now,
                now,
                cat=CAT_NODE,
                replica=0,
                partition=event.source if event.source is not None else event.dest,
                detail=(
                    f"{event.kind} p{event.source}->p{event.dest} "
                    f"@e{event.epoch} ({event.keys_moved} keys)"
                ),
            )

    # -- observability ----------------------------------------------------

    def describe(self) -> Dict[str, object]:
        """A summary of control-plane activity (CLI/benchmark output)."""
        return {
            "migrations": self.migrations,
            "keys_moved": self.keys_moved,
            "joins": self.joins,
            "leaves": self.leaves,
            "origins": list(self.current_origins()),
            "spares": self.spare_partitions(),
            "events": [event.kind for event in self.events],
        }

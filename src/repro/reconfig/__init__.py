"""Elastic cluster reconfiguration (the control plane).

Deterministic live re-sharding, node join/leave and autoscaling for a
running Calvin cluster. The design principle: **every cluster-shape
change is just more sequenced input**. A migration is a transaction in
the global serial order; a routing flip is a pure function of the
epoch number; a join or leave is an epoch-keyed change to the set of
input sequencers. Nothing requires cross-replica coordination beyond
what the sequencing layer already provides, so reconfiguration
inherits Calvin's determinism: same seed, same log, same digests —
with or without replay, serial or parallel.

Public surface:

- :class:`ClusterAdmin` — the only control-plane entry point
  (``split`` / ``merge`` / ``add_node`` / ``remove_node`` / ``plan``).
- :class:`MigrationPlan`, :class:`ReconfigEvent` — immutable records
  of planned and executed actions.
- :class:`Autoscaler`, :class:`AutoscalePolicy` — the closed loop from
  admission saturation signals to control-plane actions.
"""

from repro.reconfig.admin import ClusterAdmin
from repro.reconfig.autoscale import AutoscalePolicy, Autoscaler
from repro.reconfig.plan import MigrationPlan, ReconfigEvent

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "ClusterAdmin",
    "MigrationPlan",
    "ReconfigEvent",
]

"""Typed messages exchanged between cluster components.

The actual transport lives in :mod:`repro.sim.network`; this package
defines the protocol vocabulary of the Calvin layer. Paxos and baseline
(2PC) messages live next to their protocols.
"""

from repro.net.messages import (
    ClientSubmit,
    PrefetchRequest,
    RemoteRead,
    ReplicaBatch,
    SubBatch,
    TxnReply,
)

__all__ = [
    "ClientSubmit",
    "PrefetchRequest",
    "RemoteRead",
    "ReplicaBatch",
    "SubBatch",
    "TxnReply",
]

"""Calvin-layer message types.

All messages are immutable dataclasses. ``size_estimate`` feeds the
network bandwidth model; the constants approximate the paper's
serialized request/record sizes rather than Python object sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.partition.partitioner import Key
from repro.txn.result import TransactionResult
from repro.txn.transaction import GlobalSeq, SequencedTxn, Transaction

_TXN_WIRE_SIZE = 256      # bytes per serialized transaction request
_RECORD_WIRE_SIZE = 120   # bytes per key/value pair in a remote read
_HEADER_SIZE = 64


@dataclass(frozen=True, slots=True)
class ClientSubmit:
    """Client → sequencer: a new transaction request."""

    txn: Transaction

    def size_estimate(self) -> int:
        return _HEADER_SIZE + _TXN_WIRE_SIZE


@dataclass(frozen=True, slots=True)
class ReplicaBatch:
    """Sequencer → peer-replica sequencer (async replication mode)."""

    epoch: int
    origin_partition: int
    txns: Tuple[Transaction, ...]

    def size_estimate(self) -> int:
        return _HEADER_SIZE + _TXN_WIRE_SIZE * len(self.txns)


@dataclass(frozen=True, slots=True)
class SubBatch:
    """Sequencer → scheduler (same replica): this partition's view of a batch.

    Transactions arrive already bound to their global sequence number
    (epoch, origin, index-within-origin-batch). One SubBatch is sent to
    *every* scheduler each epoch, possibly with zero transactions —
    schedulers use the full set of sub-batches as the epoch barrier, so
    emptiness is information.
    """

    epoch: int
    origin_partition: int
    txns: Tuple[SequencedTxn, ...]

    def size_estimate(self) -> int:
        return _HEADER_SIZE + _TXN_WIRE_SIZE * len(self.txns)


@dataclass(frozen=True, slots=True)
class RemoteRead:
    """Participant → active participant: local read results for one txn."""

    seq: GlobalSeq
    from_partition: int
    values: Dict[Key, Any]

    def size_estimate(self) -> int:
        return _HEADER_SIZE + _RECORD_WIRE_SIZE * max(1, len(self.values))


@dataclass(frozen=True, slots=True)
class PrefetchRequest:
    """Sequencer → storage node: warm these cold keys up (Section 4).

    Sent as soon as a disk-bound transaction arrives, while the
    transaction itself is artificially deferred by the expected fetch
    latency, so that by execution time the data is memory resident.
    """

    keys: Tuple[Key, ...]

    def size_estimate(self) -> int:
        return _HEADER_SIZE + 24 * max(1, len(self.keys))


@dataclass(frozen=True, slots=True)
class StarReady:
    """STAR participant → master: local locks granted for one
    multipartition transaction; it may run once every participant says so."""

    stxn: SequencedTxn
    from_partition: int

    def size_estimate(self) -> int:
        return _HEADER_SIZE + _TXN_WIRE_SIZE


@dataclass(frozen=True, slots=True)
class StarRelease:
    """STAR master → participant: a multipartition transaction finished
    on the master; release its locks (the result rides along so the
    reply partition can answer the client)."""

    seq: GlobalSeq
    result: TransactionResult

    def size_estimate(self) -> int:
        return _HEADER_SIZE + 128


@dataclass(frozen=True, slots=True)
class WriteSetApply:
    """Replica-0 active participant → peer-replica participant hosting
    the same partition (partial replication only): the deterministic
    outcome of a transaction the peer cannot re-execute because it does
    not host every participant. ``writes`` may carry DELETED sentinels;
    an aborted transaction ships ``committed=False`` so the peer's
    sequence slot still completes (deterministic abort)."""

    seq: GlobalSeq
    from_partition: int
    committed: bool
    writes: Dict[Key, Any]

    def size_estimate(self) -> int:
        return _HEADER_SIZE + _RECORD_WIRE_SIZE * max(1, len(self.writes))


@dataclass(frozen=True, slots=True)
class ReadOnlyQuery:
    """Read-only client → replica node: serve these keys from the local
    snapshot, outside the sequenced pipeline (replica-local reads)."""

    query_id: int
    keys: Tuple[Key, ...]

    def size_estimate(self) -> int:
        return _HEADER_SIZE + 24 * max(1, len(self.keys))


@dataclass(frozen=True, slots=True)
class ReadOnlyReply:
    """Replica node → read-only client: values plus the node's current
    epoch watermark (the client derives its staleness bound from the
    minimum watermark across per-partition replies)."""

    query_id: int
    from_partition: int
    values: Dict[Key, Any]
    epoch: int

    def size_estimate(self) -> int:
        return _HEADER_SIZE + _RECORD_WIRE_SIZE * max(1, len(self.values))


@dataclass(frozen=True, slots=True)
class TxnReply:
    """Reply partition → client: terminal result of one attempt."""

    result: TransactionResult

    def size_estimate(self) -> int:
        return _HEADER_SIZE + 64

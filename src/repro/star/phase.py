"""STAR's deterministic phase-length controller.

The controller alternates two phases forever:

* **partitioned** — multipartition transactions accumulate in the
  master's backlog (locks held at their participants); single-partition
  traffic runs undisturbed. Length: a whole number of epochs chosen
  from the multipartition fraction ``f`` observed so far::

      epochs = clamp(round(gain * (1 - f) / max(f, 1/32)),
                     min_partitioned_epochs, max_partitioned_epochs)

  — long partitioned stretches when multipartition work is rare, the
  minimum when it dominates.
* **single-master** — the gate opens and the master drains the backlog.
  The phase lasts at least one epoch and then ends as soon as the
  master goes idle, so a steady multipartition stream keeps the system
  in (throughput-equivalent to) single-master mode while a bursty one
  returns quickly to partitioned execution.

Each switch costs ``star_switch_latency`` (the fence/handover barrier).
Every decision input — epoch batch contents, backlog state — is itself
deterministic, so phase boundaries are reproducible bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs import CAT_NODE, NULL_RECORDER, SpanKind, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ClusterConfig
    from repro.partition.catalog import Catalog
    from repro.sim.kernel import Simulator
    from repro.star.master import StarMaster

PARTITIONED = "partitioned"
SINGLE_MASTER = "single-master"


class PhaseController:
    """Drives the partitioned/single-master alternation on one cluster."""

    def __init__(
        self,
        sim: "Simulator",
        config: "ClusterConfig",
        catalog: "Catalog",
        master: "StarMaster",
        tracer: TraceRecorder = NULL_RECORDER,
    ):
        self.sim = sim
        self.config = config
        self.catalog = catalog
        self.master = master
        self.tracer = tracer
        self.phase = PARTITIONED
        self.phase_switches = 0
        self.txns_observed = 0
        self.multipartition_observed = 0
        self._started = False

    # -- observation (installed as every input sequencer's batch_observer) --

    def observe_batch(self, epoch: int, batch) -> None:
        self.txns_observed += len(batch)
        catalog = self.catalog
        for txn in batch:
            if len(txn.participants(catalog)) > 1:
                self.multipartition_observed += 1

    @property
    def multipartition_fraction(self) -> float:
        if self.txns_observed == 0:
            return 0.0
        return self.multipartition_observed / self.txns_observed

    def partitioned_epochs(self) -> int:
        """Partitioned-phase length for the next cycle, in epochs."""
        f = self.multipartition_fraction
        raw = self.config.star_phase_gain * (1.0 - f) / max(f, 1.0 / 32.0)
        return max(
            self.config.star_min_partitioned_epochs,
            min(self.config.star_max_partitioned_epochs, round(raw)),
        )

    # -- the control loop --------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.sim.process(self._loop())

    def _loop(self):
        config = self.config
        epoch = config.epoch_duration
        while True:
            start = self.sim.now
            self.phase = PARTITIONED
            yield self.sim.timeout(self.partitioned_epochs() * epoch)
            self._end_phase(start, PARTITIONED)
            if config.star_switch_latency > 0:
                yield self.sim.timeout(config.star_switch_latency)

            start = self.sim.now
            self.phase = SINGLE_MASTER
            self.master.open_gate()
            # Minimum drain window, then run until the master goes idle.
            yield self.sim.timeout(epoch)
            while self.master.busy:
                yield self.master.drained_event()
            self.master.close_gate()
            self._end_phase(start, SINGLE_MASTER)
            if config.star_switch_latency > 0:
                yield self.sim.timeout(config.star_switch_latency)

    def _end_phase(self, start: float, name: str) -> None:
        self.phase_switches += 1
        if self.tracer.enabled:
            self.tracer.record(
                SpanKind.PHASE, start, self.sim.now,
                cat=CAT_NODE,
                replica=self.master.node.node_id.replica,
                partition=self.master.node.node_id.partition,
                detail=name,
            )

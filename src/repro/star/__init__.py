"""STAR-style phase-switching execution engine (arXiv:1811.02059).

Single-partition transactions execute under Calvin's deterministic
locking on their home partition, in any phase. Multipartition
transactions are routed to a designated *master* node and drain there,
coordination-free, during single-master phases. A deterministic
controller alternates the phases, sizing the partitioned phase from the
observed multipartition fraction.
"""

from repro.star.cluster import StarCluster
from repro.star.master import StarMaster
from repro.star.phase import PARTITIONED, SINGLE_MASTER, PhaseController
from repro.star.scheduler import StarScheduler

__all__ = [
    "PARTITIONED",
    "PhaseController",
    "SINGLE_MASTER",
    "StarCluster",
    "StarMaster",
    "StarScheduler",
]

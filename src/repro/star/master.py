"""The STAR master: coordination-free multipartition execution.

The master node holds (conceptually) a full replica of the database —
modelled here as direct references to every partition's store — so a
multipartition transaction that reaches it runs like a single-node
transaction: read everything locally, run the logic once, apply writes
to every partition's store, no remote-read round trips, no 2PC, none of
Calvin's per-participant multipartition overhead. The price is that all
that work lands on one node's worker pool, and that execution waits for
a single-master phase.

A transaction enters the backlog once *every* participant has granted
its local locks (:class:`~repro.net.messages.StarReady` per
participant). Backlog transactions are pairwise non-conflicting — each
holds its full lock footprint — so draining them concurrently on the
worker pool is safe; the heap pop order keeps worker-queue entry in
sequence order regardless.
"""

from __future__ import annotations

import heapq
from typing import Any, Dict, List, Set, Tuple, TYPE_CHECKING

from repro.errors import TransactionAborted
from repro.net.messages import StarReady, StarRelease
from repro.obs import SpanKind
from repro.partition.catalog import NodeId, node_address
from repro.sim.events import Event
from repro.txn.context import TxnContext
from repro.txn.result import TransactionResult, TxnStatus
from repro.txn.transaction import GlobalSeq, SequencedTxn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.star.node import StarNode


class StarMaster:
    """Backlog + executor for multipartition transactions on one node."""

    def __init__(self, node: "StarNode", stores: Dict[int, Any]):
        self.node = node
        self.sim = node.sim
        self.catalog = node.catalog
        self.config = node.config
        self.registry = node.scheduler.registry
        self.tracer = node.tracer
        # partition -> that partition's (replica-0) store: the master's
        # full-replica view of the database.
        self.stores = stores

        self._ready_counts: Dict[GlobalSeq, int] = {}
        self._backlog: List[Tuple[GlobalSeq, SequencedTxn]] = []
        self._gate_open = False
        self.in_flight = 0
        self._drained_waiters: List[Event] = []

        self.txns_executed = 0
        self.peak_backlog = 0

    # -- intake ------------------------------------------------------------

    def ready(self, message: StarReady) -> None:
        """One participant reports its local locks granted."""
        stxn = message.stxn
        seq = stxn.seq
        needed = len(stxn.txn.participants(self.catalog))
        count = self._ready_counts.get(seq, 0) + 1
        if count < needed:
            self._ready_counts[seq] = count
            return
        self._ready_counts.pop(seq, None)
        heapq.heappush(self._backlog, (seq, stxn))
        if len(self._backlog) > self.peak_backlog:
            self.peak_backlog = len(self._backlog)
        if self._gate_open:
            self._drain()

    # -- phase gate (driven by the controller) -----------------------------

    def open_gate(self) -> None:
        self._gate_open = True
        self._drain()

    def close_gate(self) -> None:
        self._gate_open = False

    @property
    def gate_open(self) -> bool:
        return self._gate_open

    @property
    def backlog_depth(self) -> int:
        return len(self._backlog)

    @property
    def busy(self) -> bool:
        """Work pending: backlog entries or executions still in flight."""
        return bool(self._backlog) or self.in_flight > 0

    def drained_event(self) -> Event:
        """An event triggering the next time the master goes fully idle.

        Only call while :attr:`busy` — an idle master never fires it.
        """
        event = Event(self.sim)
        self._drained_waiters.append(event)
        return event

    def _drain(self) -> None:
        while self._backlog:
            _seq, stxn = heapq.heappop(self._backlog)
            self.in_flight += 1
            self.sim.process(self._execute(stxn))

    # -- execution ---------------------------------------------------------

    def _execute(self, stxn: SequencedTxn):
        """Run one multipartition transaction against the global view.

        Mirrors :func:`repro.scheduler.executor.run_transaction` minus
        everything distributed: no remote-read fan-out or wait, no
        per-participant multipartition overhead; instead one
        ``star_master_txn_overhead_cpu`` charge for pushing the writes
        back out to the partition replicas.
        """
        sim = self.sim
        costs = self.config.costs
        catalog = self.catalog
        txn = stxn.txn
        scheduler = self.node.scheduler
        granted_time = sim.now

        yield scheduler.workers.request()
        exec_start = sim.now

        read_keys = txn.sorted_reads()
        partition_of = catalog.partition_of
        reads = {key: self.stores[partition_of(key)].get(key) for key in read_keys}
        yield sim.timeout(costs.txn_base_cpu + costs.read_cpu * len(read_keys))

        if self.tracer.enabled:
            self.tracer.record(
                SpanKind.EXECUTE, exec_start, sim.now,
                replica=self.node.node_id.replica,
                partition=self.node.node_id.partition,
                txn_id=txn.txn_id, seq=stxn.seq, detail="star-master",
            )

        apply_start = sim.now
        procedure = self.registry.get(txn.procedure)
        context = TxnContext(txn, reads)
        status: TxnStatus
        value: Any = None
        stale = (
            txn.dependent
            and procedure.recheck is not None
            and not procedure.recheck(context)
        )
        if stale:
            status = TxnStatus.RESTART
        else:
            try:
                value = procedure.logic(context)
                status = TxnStatus.COMMITTED
            except TransactionAborted as abort:
                status = TxnStatus.ABORTED
                value = abort.reason
                context.writes.clear()

        cpu = (
            procedure.logic_cpu
            + costs.write_cpu * len(context.writes)
            + self.config.star_master_txn_overhead_cpu
        )
        if cpu > 0:
            yield sim.timeout(cpu)
        if status is TxnStatus.COMMITTED and context.writes:
            per_partition: Dict[int, Dict] = {}
            for key, val in context.writes.items():
                per_partition.setdefault(partition_of(key), {})[key] = val
            for partition, chunk in per_partition.items():
                self.stores[partition].apply_writes(chunk, context.deleted)

        result = TransactionResult(
            txn_id=txn.txn_id,
            status=status,
            value=value,
            submit_time=txn.submit_time,
            complete_time=sim.now,
            restarts=txn.restarts,
            granted_time=granted_time,
        )
        if self.tracer.enabled:
            self.tracer.record(
                SpanKind.APPLY, apply_start, sim.now,
                replica=self.node.node_id.replica,
                partition=self.node.node_id.partition,
                txn_id=txn.txn_id, seq=stxn.seq, detail="star-master",
            )
        scheduler.workers.release()

        # Release every participant (locks drop on arrival; the reply
        # partition answers the client from the riding result).
        release = StarRelease(stxn.seq, result)
        participants: Set[int] = txn.participants(catalog)
        replica = self.node.node_id.replica
        for partition in sorted(participants):
            target = node_address(NodeId(replica, partition))
            self.node.send(target, release, release.size_estimate())

        self.txns_executed += 1
        self.in_flight -= 1
        if not self.busy and self._drained_waiters:
            waiters, self._drained_waiters = self._drained_waiters, []
            for event in waiters:
                event.succeed()

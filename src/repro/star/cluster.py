"""STAR cluster assembly on the CalvinCluster substrate.

Everything below the execution seam is inherited unchanged — simulator,
network, sequencers (same epochs, same agreed global order), storage,
clients, metrics, history. The differences: nodes are
:class:`StarNode` (master-routed multipartition execution), the
designated master node gets a :class:`StarMaster`, every input
sequencer feeds the :class:`PhaseController`'s multipartition-fraction
estimate, and :meth:`start` launches the phase loop.

Because admission and lock order are exactly Calvin's, a STAR cluster
fed the same input schedule as a core cluster commits the same
transactions with the same effects — the property
``tests/test_engine_equivalence.py`` pins.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import ClusterConfig
from repro.core.cluster import CalvinCluster
from repro.core.node import CalvinNode
from repro.errors import ConfigError
from repro.partition.catalog import NodeId
from repro.star.master import StarMaster
from repro.star.node import StarNode
from repro.star.phase import PARTITIONED, SINGLE_MASTER, PhaseController
from repro.txn.result import TxnStatus


class StarCluster(CalvinCluster):
    """A simulated STAR deployment (v1 scope: single replica, memory
    -resident storage, no checkpointing, no fault injection — the knobs
    below reject anything else)."""

    def __init__(self, config: ClusterConfig, **kwargs):
        if config.num_replicas != 1:
            raise ConfigError(
                "the star engine models a single replica "
                f"(got num_replicas={config.num_replicas}): its phase "
                "switching assumes one copy of every partition; see "
                "docs/engines.md#limitations"
            )
        if config.disk_enabled:
            raise ConfigError("the star engine does not support disk storage yet")
        if config.checkpoint_mode != "none":
            raise ConfigError("the star engine does not support checkpointing yet")
        if config.fault_profile is not None or kwargs.get("fault_plan") is not None:
            raise ConfigError("the star engine does not support fault injection yet")
        # Per-phase committed counters (per-phase throughput = counter
        # delta / phase time; the bench harness reads these).
        self.committed_by_phase: Dict[str, int] = {PARTITIONED: 0, SINGLE_MASTER: 0}
        self.master: Optional[StarMaster] = None
        self.controller: Optional[PhaseController] = None

        super().__init__(config, **kwargs)

        master_node = self.node(0, config.star_master_partition)
        assert isinstance(master_node, StarNode)
        stores = {
            partition: self.node(0, partition).store
            for partition in range(config.num_partitions)
        }
        self.master = StarMaster(master_node, stores)
        master_node.star_master = self.master
        self.controller = PhaseController(
            self.sim, config, self.catalog, self.master, tracer=self.tracer
        )
        for partition in range(config.num_partitions):
            sequencer = self.node(0, partition).sequencer
            sequencer.batch_observer = self.controller.observe_batch
        self._register_star_metrics()

    def _make_node(self, node_id: NodeId, on_complete, cold) -> CalvinNode:
        return StarNode(
            self.sim,
            self.network,
            node_id,
            self.catalog,
            self.config,
            self.registry,
            self.rngs,
            cold_predicate=cold,
            on_complete=on_complete,
            record_trace=self.record_history,
            tracer=self.tracer,
        )

    def _register_star_metrics(self) -> None:
        registry = self.metrics_registry
        controller, master = self.controller, self.master
        registry.gauge(
            "star.phase", lambda: 1 if controller.phase == SINGLE_MASTER else 0
        )
        registry.gauge("star.phase_switches", lambda: controller.phase_switches)
        registry.gauge("star.mp_fraction", lambda: controller.multipartition_fraction)
        registry.gauge("star.backlog", lambda: master.backlog_depth)
        registry.gauge("star.master_in_flight", lambda: master.in_flight)
        registry.gauge("star.master_txns", lambda: master.txns_executed)
        registry.gauge(
            "star.committed_partitioned",
            lambda: self.committed_by_phase[PARTITIONED],
        )
        registry.gauge(
            "star.committed_single_master",
            lambda: self.committed_by_phase[SINGLE_MASTER],
        )

    def _completion_hook(self, stxn, result) -> None:
        if result.status is TxnStatus.COMMITTED and self.controller is not None:
            self.committed_by_phase[self.controller.phase] += 1
        super()._completion_hook(stxn, result)

    def start(self) -> None:
        if self._started:
            return
        super().start()
        self.controller.start()

    @classmethod
    def replay(cls, *args, **kwargs):
        # run_until_idle never terminates under the phase loop, and a
        # log replay has no client stream to estimate phases from.
        raise ConfigError(
            "the star engine does not support log replay; replay with "
            "engine='core' (same agreed order, same final state)"
        )

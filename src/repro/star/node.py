"""A STAR node: a Calvin node with master-routed multipartition execution."""

from __future__ import annotations

from typing import Any, Optional

from repro.core.node import CalvinNode
from repro.errors import NetworkError
from repro.net.messages import StarReady, StarRelease
from repro.star.scheduler import StarScheduler


class StarNode(CalvinNode):
    """One STAR server. The node designated by
    ``config.star_master_partition`` additionally hosts the
    :class:`~repro.star.master.StarMaster` (attached by the cluster)."""

    scheduler_class = StarScheduler

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.star_master: Optional[Any] = None

    def handle_message(self, src: Any, message: Any) -> None:
        if isinstance(message, StarReady):
            if self.star_master is None:
                raise NetworkError(f"StarReady misrouted to non-master {self.node_id}")
            self.star_master.ready(message)
        elif isinstance(message, StarRelease):
            self.scheduler.complete_remote(message)
        else:
            super().handle_message(src, message)

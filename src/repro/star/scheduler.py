"""STAR's per-node scheduler: Calvin admission, master-routed execution.

The scheduler inherits the entire deterministic pipeline — epoch
barrier, in-order lock admission, the lock manager — so STAR executes
*exactly* Calvin's agreed global order. The single override is what
happens once a transaction holds all its local locks:

* sole participant → execute locally (inherited), in any phase;
* multipartition   → tell the master this partition is ready
  (:class:`~repro.net.messages.StarReady`) and park the transaction,
  locks held, until the master's
  :class:`~repro.net.messages.StarRelease` comes back.

Because every participant grants locks in sequence order before
reporting ready, a transaction reaches the master's backlog only after
all earlier conflicting transactions released — which is what makes the
master's direct reads of the partition stores safe.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SchedulerError
from repro.net.messages import StarReady, StarRelease, TxnReply
from repro.partition.catalog import NodeId, node_address
from repro.scheduler.scheduler import Scheduler
from repro.txn.transaction import GlobalSeq, SequencedTxn


class StarScheduler(Scheduler):
    """One STAR node's scheduler component."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Multipartition transactions parked between "locks granted
        # here" and the master's release, by sequence number.
        self._star_waiting: Dict[GlobalSeq, SequencedTxn] = {}
        self.star_routed = 0

    @property
    def star_parked(self) -> int:
        """Multipartition transactions holding locks, awaiting the master."""
        return len(self._star_waiting)

    def _start_execution(self, stxn: SequencedTxn) -> None:
        txn = stxn.txn
        if len(txn.participants(self.catalog)) == 1:
            # Partitioned path: local deterministic execution, any phase.
            super()._start_execution(stxn)
            return
        self.star_routed += 1
        self._star_waiting[stxn.seq] = stxn
        master = node_address(
            NodeId(self.node_id.replica, self.config.star_master_partition)
        )
        message = StarReady(stxn, self.node_id.partition)
        self.send(master, message, message.size_estimate())

    def complete_remote(self, message: StarRelease) -> None:
        """Master finished one of our parked transactions: release its
        locks and, on the reply partition, answer the client."""
        stxn = self._star_waiting.pop(message.seq, None)
        if stxn is None:
            raise SchedulerError(
                f"StarRelease for unknown seq {message.seq} at {self.node_id}"
            )
        txn = stxn.txn
        report = (
            message.result
            if self.node_id.partition == txn.reply_partition(self.catalog)
            else None
        )
        if report is not None and txn.client is not None and self.node_id.replica == 0:
            reply = TxnReply(report)
            self.send(txn.client, reply, reply.size_estimate())
        self.finish_txn(stxn, report, passive=report is None)

"""Input-replication strategies for the sequencer.

Calvin replicates transaction *inputs* before (or while) they execute:

- :class:`NoReplication` — single replica; dispatch immediately.
- :class:`AsyncReplication` — dispatch locally at once, ship the batch
  to peer replicas in the background. Lowest latency; a crashed origin
  can lose its tail (the paper's weaker consistency option).
- :class:`PaxosReplication` — the batch is proposed to a Multi-Paxos
  group spanning this partition's nodes in every replica; *every*
  replica (origin included) dispatches only decided batches, so all
  replicas apply exactly the same input log. Adds WAN agreement latency,
  costs no throughput (instances pipeline) — experiment E6.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING, Tuple

from repro.net.messages import ReplicaBatch
from repro.partition.catalog import NodeId, node_address
from repro.paxos.participant import PaxosParticipant
from repro.txn.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sequencer.sequencer import Sequencer


class ReplicationStrategy:
    """Decides when a produced batch may be dispatched, and replicates it."""

    def attach(self, sequencer: "Sequencer") -> None:
        self.sequencer = sequencer

    def publish(self, epoch: int, txns: Tuple[Transaction, ...]) -> None:
        """Called by the origin sequencer when an epoch batch is closed."""
        raise NotImplementedError

    def handle_replica_batch(self, batch: ReplicaBatch) -> None:
        """Called when a peer replica ships a batch (async mode only)."""
        raise NotImplementedError("this strategy does not expect replica batches")

    def handle_paxos(self, src_member: int, message: Any) -> None:
        """Called with Paxos traffic (paxos mode only)."""
        raise NotImplementedError("this strategy does not speak Paxos")


class NoReplication(ReplicationStrategy):
    """Single-replica deployments: batches dispatch immediately."""

    def publish(self, epoch: int, txns: Tuple[Transaction, ...]) -> None:
        self.sequencer.dispatch(epoch, txns)


class AsyncReplication(ReplicationStrategy):
    """Dispatch at the origin immediately; ship to peers asynchronously."""

    def __init__(self) -> None:
        # Epoch-ordered intake at the peer: a faulty network may delay or
        # reorder ReplicaBatch messages, but the input log must still be
        # applied in epoch order, so out-of-order arrivals are buffered.
        self._pending: dict = {}
        self._next_epoch = 0

    def publish(self, epoch: int, txns: Tuple[Transaction, ...]) -> None:
        sequencer = self.sequencer
        sequencer.dispatch(epoch, txns)
        batch = ReplicaBatch(epoch, sequencer.node_id.partition, txns)
        for peer in sequencer.peer_replica_nodes():
            sequencer.send(node_address(peer), batch, batch.size_estimate())

    def handle_replica_batch(self, batch: ReplicaBatch) -> None:
        # Peer replica: the origin already ordered the batch; apply it in
        # epoch order (duplicates of already-applied epochs are dropped).
        if batch.epoch >= self._next_epoch:
            self._pending[batch.epoch] = batch
        while self._next_epoch in self._pending:
            ready = self._pending.pop(self._next_epoch)
            self._next_epoch += 1
            self.sequencer.dispatch(ready.epoch, ready.txns)


class PaxosReplication(ReplicationStrategy):
    """Strong consistency: agree on every batch before any replica dispatches."""

    def __init__(self) -> None:
        self._participant: Optional[PaxosParticipant] = None

    def attach(self, sequencer: "Sequencer") -> None:
        super().attach(sequencer)
        node = sequencer.node_id
        group = [n.replica for n in sequencer.catalog.replicas_of_partition(node.partition)]
        self._participant = PaxosParticipant(
            sim=sequencer.sim,
            member_id=node.replica,
            group=group,
            send=self._send_to_member,
            on_decide=self._on_decide,
            # Replica 0's sequencers take client input and lead their groups.
            is_initial_leader=(node.replica == 0),
        )

    @property
    def participant(self) -> PaxosParticipant:
        assert self._participant is not None, "strategy not attached"
        return self._participant

    def publish(self, epoch: int, txns: Tuple[Transaction, ...]) -> None:
        # The origin does NOT dispatch yet: it waits for its own learner,
        # so a batch only ever executes once it is durable on a majority.
        self.participant.propose(ReplicaBatch(epoch, self.sequencer.node_id.partition, txns))

    def _send_to_member(self, member_replica: int, message: Any) -> None:
        sequencer = self.sequencer
        peer = NodeId(member_replica, sequencer.node_id.partition)
        size = message.size_estimate() if hasattr(message, "size_estimate") else 128
        sequencer.send(node_address(peer), message, size)

    def _on_decide(self, instance: int, value: ReplicaBatch) -> None:
        self.sequencer.dispatch(value.epoch, value.txns)

    def handle_paxos(self, src_member: int, message: Any) -> None:
        self.participant.handle(src_member, message)

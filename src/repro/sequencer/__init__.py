"""The sequencing layer (paper Section 3, Figure 1 left column).

Sequencers collect client transaction requests into 10 ms epoch batches,
replicate them (async or Paxos), and hand each scheduler exactly the
sub-batch of transactions that involve its partition. The concatenation
of all batches — epochs in order, origin sequencers in id order within
an epoch — *is* the global serial order every node agrees on.

Disk-bound transactions are intercepted here (Section 4): the sequencer
issues prefetch requests immediately and defers the transaction by the
expected fetch latency, so it reaches the scheduler with its data warm.
"""

from repro.sequencer.replication import (
    AsyncReplication,
    NoReplication,
    PaxosReplication,
    ReplicationStrategy,
)
from repro.sequencer.sequencer import Sequencer

__all__ = [
    "AsyncReplication",
    "NoReplication",
    "PaxosReplication",
    "ReplicationStrategy",
    "Sequencer",
]

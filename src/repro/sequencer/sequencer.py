"""The per-node sequencer: epoch batching, disk deferral, dispatch.

Global order construction (paper Section 3): time is divided into
epochs; every input-accepting sequencer closes one batch per epoch; the
agreed global order is "all epoch-e batches in origin-partition order,
then epoch e+1, ...". Schedulers reconstruct this by collecting one
sub-batch per origin per epoch, so the sequencer sends a sub-batch to
*every* scheduler of its replica each epoch, empty ones included.
"""

from __future__ import annotations

from typing import Any, Callable, List, TYPE_CHECKING, Tuple

from repro.config import ClusterConfig
from repro.net.messages import ClientSubmit, PrefetchRequest, ReplicaBatch, SubBatch
from repro.obs import CAT_EPOCH, NULL_RECORDER, SpanKind, TraceRecorder
from repro.partition.catalog import Catalog, NodeId, node_address
from repro.partition.partitioner import sort_token
from repro.sequencer.replication import ReplicationStrategy
from repro.storage.inputlog import InputLog, LogEntry
from repro.txn.transaction import SequencedTxn, Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator
    from repro.storage.engine import StorageEngine

SendFn = Callable[[Any, Any, int], None]


class Sequencer:
    """One node's sequencer component."""

    def __init__(
        self,
        sim: "Simulator",
        node_id: NodeId,
        catalog: Catalog,
        config: ClusterConfig,
        send: SendFn,
        input_log: InputLog,
        engine: "StorageEngine",
        replication: ReplicationStrategy,
        tracer: TraceRecorder = NULL_RECORDER,
    ):
        self.sim = sim
        self.tracer = tracer
        # Hoisted is-enabled flag; see Scheduler.
        self._tracing = tracer.enabled
        self.node_id = node_id
        self.catalog = catalog
        self.config = config
        self.send = send
        self.input_log = input_log
        self.engine = engine
        self.replication = replication
        replication.attach(self)
        # Timers and pending fan-out are tagged with the node's address
        # so a kernel-level crash (suspend_owner) freezes them with the
        # rest of the node.
        self._owner = node_address(node_id)

        # Admission control (open-loop traffic): installed by the node
        # when the config enables a policy; None = admit everything
        # immediately (bit-for-bit the pre-admission behaviour).
        self.admission = None

        # Optional hook called at every epoch tick with (epoch, batch),
        # before the batch is published. Pure observation: installers
        # must not mutate the batch or schedule simulator events (STAR's
        # phase controller uses it to track the multipartition fraction).
        self.batch_observer: Any = None

        self._buffer: List[Transaction] = []
        self._epoch = 0
        self._dispatched_epochs = set()
        self._seen_txn_ids = set()
        self._started = False
        # -- elastic reconfiguration (repro.reconfig) --------------------
        # Control-plane transactions registered for a future epoch; each
        # is prepended to that epoch's batch so it leads the flip epoch
        # in the global serial order. A *dormant* sequencer (a
        # pre-provisioned spare) skips epoch ticking until
        # start_at_epoch(); a *retiring* one stops at its retire epoch
        # and forwards leftover input to a successor origin.
        self._config_txns: dict = {}
        self.dormant = False
        self._retire_epoch = None
        self._successor = None
        # Local input-log durability (only meaningful without replication).
        self._force_log = None
        if config.force_input_log and config.replication_mode == "none":
            from repro.baseline.log import GroupCommitLog

            self._force_log = GroupCommitLog(sim, config.costs.log_force_latency)
        self.txns_sequenced = 0
        self.txns_deferred = 0
        self.batches_dispatched = 0

    # -- lifecycle --------------------------------------------------------

    @property
    def accepts_input(self) -> bool:
        """Only replica 0 takes client input (it leads the Paxos groups)."""
        return self.node_id.replica == 0

    def start(self) -> None:
        """Begin epoch ticking (input-accepting sequencers only)."""
        if self._started or not self.accepts_input or self.dormant:
            return
        self._started = True
        self.sim.schedule_owned(self._owner, self.config.epoch_duration, self._epoch_tick)

    def start_at_epoch(self, epoch: int) -> None:
        """Wake a dormant spare: its first cut batch is ``epoch``.

        The first tick lands at the same virtual time the established
        sequencers cut ``epoch``, so from the join epoch on this origin
        publishes in lock-step with the rest of the cluster.
        """
        if self._started:
            raise RuntimeError("sequencer already started")
        if not self.accepts_input:
            raise RuntimeError("only input-accepting sequencers join")
        when = (epoch + 1) * self.config.epoch_duration
        if when <= self.sim.now:
            raise RuntimeError(f"join epoch {epoch} is already in the past")
        self.dormant = False
        self._started = True
        self._epoch = epoch
        self.sim.schedule_owned(self._owner, when - self.sim.now, self._epoch_tick)

    def retire_at(self, epoch: int, successor) -> None:
        """Stop cutting batches at ``epoch``; ``epoch - 1`` is the last.

        Input still buffered (or queued in admission) when the retire
        epoch arrives is forwarded to the ``successor`` origin's
        sequencer address as ordinary client submissions.
        """
        if self._retire_epoch is not None:
            raise RuntimeError("sequencer is already retiring")
        if epoch <= self._epoch:
            raise RuntimeError(f"retire epoch {epoch} is already in the past")
        self._retire_epoch = epoch
        self._successor = successor

    # -- control plane (repro.reconfig) -----------------------------------

    def register_config_txn(self, epoch: int, txn: Transaction) -> None:
        """Prepend ``txn`` to the batch cut for ``epoch``.

        Control-plane injection: the transaction becomes part of the
        sequenced input exactly like client traffic — replicated,
        logged, and replayed identically — but leads its epoch so every
        later transaction of the epoch observes the post-flip routing.
        """
        if epoch < self._epoch:
            raise RuntimeError(f"epoch {epoch} has already been cut")
        self._config_txns.setdefault(epoch, []).append(txn)

    @property
    def pending_config_txns(self) -> bool:
        """True while registered control-plane txns await their epoch."""
        return bool(self._config_txns)

    # -- input ---------------------------------------------------------------

    def submit(self, txn: Transaction) -> None:
        """Take a client transaction request at the sequencer front-end.

        Deduplicates (a lossy network may duplicate ClientSubmit
        messages; sequencing the same request twice would double-apply
        it), then routes through admission control when a policy is
        configured — the controller either calls :meth:`accept` now, at
        a later epoch tick (queued), or rejects the request back to the
        client. Without admission control every request is accepted
        immediately.
        """
        if not self.accepts_input:
            raise RuntimeError("client input submitted to a non-input replica")
        if txn.txn_id in self._seen_txn_ids:
            return
        self._seen_txn_ids.add(txn.txn_id)
        if self.admission is not None:
            self.admission.offer(txn)
        else:
            self.accept(txn)

    def accept(self, txn: Transaction) -> None:
        """Admit a transaction into the current epoch.

        Disk-bound transactions (Section 4) are deferred: prefetch
        requests go out immediately to every participant, and the
        transaction joins whatever epoch is current once the estimated
        fetch latency has elapsed.
        """
        if self._tracing:
            # Arrival at the sequencer opens the sequence (epoch-wait)
            # span; a disk deferral re-stamps it on re-admission.
            self.tracer.mark(("seq-arrival", txn.txn_id), self.sim.now)
        if self.config.disk_enabled:
            cold = self._cold_keys(txn)
            if cold:
                self._defer_for_prefetch(txn, cold)
                return
        self._buffer.append(txn)

    def _cold_keys(self, txn: Transaction):
        # The sequencer applies the *policy* predicate for every key;
        # warmth of remote partitions is unknown here, so it is
        # conservative (its own engine's predicate is cluster policy).
        predicate = self.engine._cold_predicate
        return [key for key in sorted(txn.all_keys(), key=sort_token) if predicate(key)]

    def _defer_for_prefetch(self, txn: Transaction, cold_keys) -> None:
        self.txns_deferred += 1
        by_partition = {}
        for key in cold_keys:
            by_partition.setdefault(self.catalog.partition_of(key), []).append(key)
        for partition, keys in by_partition.items():
            target = NodeId(self.node_id.replica, partition)
            message = PrefetchRequest(tuple(keys))
            self.send(node_address(target), message, message.size_estimate())
        delay = (
            self.engine.expected_fetch_latency(self.config.disk_estimate_error)
            + self.config.disk_prefetch_delay
        )
        self.sim.schedule(delay, self._admit_deferred, txn)

    def _admit_deferred(self, txn: Transaction) -> None:
        if self._tracing:
            # The deferral window is disk time: the transaction waited
            # out the expected prefetch latency before joining an epoch.
            start = self.tracer.take_mark(("seq-arrival", txn.txn_id))
            if start is not None:
                self.tracer.record(
                    SpanKind.DISK,
                    start,
                    self.sim.now,
                    replica=self.node_id.replica,
                    partition=self.node_id.partition,
                    txn_id=txn.txn_id,
                    detail="prefetch-defer",
                )
            self.tracer.mark(("seq-arrival", txn.txn_id), self.sim.now)
        # Note: must go through self so it lands in the *current* epoch
        # buffer (the buffer list is rebound at every epoch tick).
        self._buffer.append(txn)

    # -- epochs -----------------------------------------------------------

    def _epoch_tick(self) -> None:
        epoch = self._epoch
        if self._retire_epoch is not None and epoch >= self._retire_epoch:
            self._hand_off()
            return
        self._epoch += 1
        batch, self._buffer = tuple(self._buffer), []
        pending = self._config_txns.pop(epoch, None)
        if pending:
            # Control-plane transactions lead their flip epoch (see
            # repro.reconfig): every later txn of the epoch observes the
            # post-flip routing.
            batch = tuple(pending) + batch
        self.txns_sequenced += len(batch)
        if self.batch_observer is not None:
            self.batch_observer(epoch, batch)
        if self._tracing:
            for txn in batch:
                start = self.tracer.take_mark(("seq-arrival", txn.txn_id))
                self.tracer.record(
                    SpanKind.SEQUENCE,
                    txn.submit_time if start is None else start,
                    self.sim.now,
                    replica=self.node_id.replica,
                    partition=self.node_id.partition,
                    txn_id=txn.txn_id,
                    detail=epoch,
                )
            # Publish time opens the replicate span; every replica's
            # dispatch of this epoch closes its own copy.
            self.tracer.mark(("publish", self.node_id.partition, epoch), self.sim.now)
        if self._force_log is not None:
            # Durability before visibility: the batch reaches the
            # schedulers only once its input records are on stable
            # storage (group-committed with neighbouring epochs). Empty
            # epochs ride through the same queue so publish order — and
            # therefore the input log's ordering invariant — holds.
            done = self._force_log.force()
            done.add_callback(
                lambda _event, e=epoch, b=batch: self.replication.publish(e, b)
            )
        else:
            self.replication.publish(epoch, batch)
        if self.admission is not None:
            # New epoch: refill the admission budget and drain queued
            # intake into the (now empty) buffer.
            self.admission.on_epoch_tick()
        self.sim.schedule_owned(self._owner, self.config.epoch_duration, self._epoch_tick)

    def _hand_off(self) -> None:
        """Forward leftover input to the successor origin and stop."""
        leftovers = list(self._buffer)
        self._buffer = []
        if self.admission is not None:
            leftovers.extend(self.admission.drain())
        for txn in leftovers:
            message = ClientSubmit(txn)
            self.send(self._successor, message, message.size_estimate())
        # No reschedule: this origin's last batch was retire_epoch - 1.

    # -- dispatch (fan sub-batches to this replica's schedulers) -----------

    def dispatch(self, epoch: int, txns: Tuple[Transaction, ...]) -> None:
        """Log the batch and fan sub-batches out to this replica's schedulers.

        Idempotent per epoch: Paxos may (rarely) deliver a batch that a
        deposed-and-re-elected leader also re-proposed; only the first
        delivery counts.
        """
        if epoch in self._dispatched_epochs:
            return
        self._dispatched_epochs.add(epoch)
        origin = self.node_id.partition
        self.input_log.append(LogEntry(epoch, origin, txns))
        self.batches_dispatched += 1
        if self._tracing:
            published = self.tracer.peek_mark(("publish", origin, epoch))
            if published is not None:
                # Publish -> dispatchable here: Paxos agreement, the
                # async WAN ship, or the input-log force (mode "none").
                self.tracer.record(
                    SpanKind.REPLICATE,
                    published,
                    self.sim.now,
                    cat=CAT_EPOCH,
                    replica=self.node_id.replica,
                    partition=origin,
                    detail=epoch,
                )
            self.tracer.mark(
                ("dispatch", self.node_id.replica, origin, epoch), self.sim.now
            )

        per_partition: List[List[SequencedTxn]] = [
            [] for _ in range(self.catalog.num_partitions)
        ]
        has_reconfig = self.catalog.has_reconfig
        for index, txn in enumerate(txns):
            stxn = SequencedTxn((epoch, origin, index), txn)
            if has_reconfig:
                participants = self.catalog.participants_at(txn, epoch)
            else:
                participants = txn.participants(self.catalog)
            for partition in participants:
                per_partition[partition].append(stxn)

        # Sequencer CPU: batch assembly/serialization delay. The sends
        # are owned by the node so a crash freezes (not loses) them.
        # Bulk insert: one fan-out, consecutive sequence numbers.
        delay = len(txns) * self.config.costs.sequencer_cpu_per_txn
        replica = self.node_id.replica
        calls = []
        for partition in self.catalog.hosted_partitions(replica):
            message = SubBatch(epoch, origin, tuple(per_partition[partition]))
            address = node_address(NodeId(replica, partition))
            calls.append((self.send, (address, message, message.size_estimate())))
        if self.catalog.partial and replica == 0:
            # Partial replication: a peer replica not hosting this origin
            # partition has no sequencer in origin's Paxos group, so it
            # never sees this batch — replica 0's origin sequencer ships
            # the per-partition slices to every scheduler the peer *does*
            # host. Empty slices included: the epoch barrier counts one
            # SubBatch per origin per epoch.
            for peer in range(1, self.catalog.num_replicas):
                if self.catalog.is_hosted(peer, origin):
                    continue  # the peer's own (peer, origin) node dispatches
                for partition in self.catalog.hosted_partitions(peer):
                    message = SubBatch(epoch, origin, tuple(per_partition[partition]))
                    address = node_address(NodeId(peer, partition))
                    calls.append(
                        (self.send, (address, message, message.size_estimate()))
                    )
        self.sim.schedule_many(self._owner, delay, calls)

    def resend_to(self, partition: int, from_epoch: int = 0) -> int:
        """Re-fan-out logged batches to one scheduler of this replica.

        Recovery hook (paper Section 2: a rejoining node is brought up to
        date from a peer's input log): re-derives the per-partition
        sub-batches of every logged epoch ``>= from_epoch`` and re-sends
        them to ``partition``'s scheduler, whose intake is idempotent.
        Returns the number of sub-batches re-sent.
        """
        resent = 0
        origin = self.node_id.partition
        has_reconfig = self.catalog.has_reconfig
        for entry in self.input_log.entries_from(from_epoch):
            stxns = tuple(
                SequencedTxn((entry.epoch, origin, index), txn)
                for index, txn in enumerate(entry.txns)
                if partition
                in (
                    self.catalog.participants_at(txn, entry.epoch)
                    if has_reconfig
                    else txn.participants(self.catalog)
                )
            )
            message = SubBatch(entry.epoch, origin, stxns)
            target = NodeId(self.node_id.replica, partition)
            self.send(node_address(target), message, message.size_estimate())
            resent += 1
        return resent

    # -- replication plumbing ------------------------------------------------

    def handle_replica_batch(self, batch: ReplicaBatch) -> None:
        self.replication.handle_replica_batch(batch)

    def handle_paxos(self, src_member: int, message: Any) -> None:
        self.replication.handle_paxos(src_member, message)

    # -- observability --------------------------------------------------------

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose this sequencer's tallies as gauges in ``registry``."""
        registry.gauge(f"{prefix}.seq.txns_sequenced", lambda: self.txns_sequenced)
        registry.gauge(f"{prefix}.seq.txns_deferred", lambda: self.txns_deferred)
        registry.gauge(f"{prefix}.seq.batches_dispatched", lambda: self.batches_dispatched)

    def peer_replica_nodes(self) -> List[NodeId]:
        """Same-partition nodes in the other replicas."""
        return [
            node
            for node in self.catalog.replicas_of_partition(self.node_id.partition)
            if node.replica != self.node_id.replica
        ]

"""Optimistic Lock Location Prediction (paper Section 3.2.1).

Dependent transactions — those whose read/write set depends on data,
like TPC-C Delivery picking the oldest undelivered order — cannot be
sequenced directly. OLLP handles them in two steps:

1. **Reconnaissance**: an inexpensive, unsequenced read phase computes
   the expected footprint (and records a token describing the data it
   was derived from).
2. **Recheck**: when the (now sequenced) transaction executes, it first
   verifies deterministically that the footprint is still what the
   reconnaissance predicted. If not, every participant reaches the same
   conclusion, the transaction deterministically "aborts", and the
   client restarts it with a fresh reconnaissance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, FrozenSet

from repro.errors import ConfigError
from repro.partition.partitioner import Key
from repro.txn.procedures import Procedure

ReadFn = Callable[[Key], Any]


@dataclass(frozen=True)
class Footprint:
    """The result of a reconnaissance pass."""

    read_set: FrozenSet[Key]
    write_set: FrozenSet[Key]
    # Evidence for the recheck, e.g. the counter values the footprint
    # was derived from. Must be picklable/plain data: it rides in the
    # replicated input log.
    token: Any = None

    @staticmethod
    def create(read_set, write_set, token: Any = None) -> "Footprint":
        return Footprint(frozenset(read_set), frozenset(write_set), token)


def reconnoiter(procedure: Procedure, read_fn: ReadFn, args: Any) -> Footprint:
    """Run a procedure's reconnaissance phase against ``read_fn``.

    ``read_fn`` may read *any* key (reconnaissance is unsequenced and
    unlocked — it is allowed to see slightly stale data; staleness is
    what the execution-time recheck protects against).
    """
    if procedure.reconnoiter is None:
        raise ConfigError(f"procedure {procedure.name!r} is not dependent")
    footprint = procedure.reconnoiter(read_fn, args)
    if not isinstance(footprint, Footprint):
        raise ConfigError(
            f"reconnoiter of {procedure.name!r} must return a Footprint"
        )
    return footprint

"""Transaction model: requests, stored procedures, execution contexts.

Calvin requires a transaction's read and write sets to be known before
it enters the sequencing layer. Transactions are therefore *requests*
(procedure name + arguments + declared footprint), and their logic lives
in a :class:`~repro.txn.procedures.ProcedureRegistry` shared by every
node — replicating inputs only works because logic is deterministic and
identical everywhere.

Dependent transactions (footprint depends on data, e.g. TPC-C Delivery)
use Optimistic Lock Location Prediction (OLLP, paper Section 3.2.1):
a reconnaissance read computes the footprint, which is rechecked
deterministically at execution time; on mismatch the transaction aborts
and the client restarts it with the corrected footprint.
"""

from repro.txn.context import DELETED, TxnContext
from repro.txn.ollp import Footprint, reconnoiter
from repro.txn.procedures import Procedure, ProcedureRegistry
from repro.txn.result import TransactionResult, TxnStatus
from repro.txn.transaction import GlobalSeq, SequencedTxn, Transaction

__all__ = [
    "DELETED",
    "Footprint",
    "GlobalSeq",
    "Procedure",
    "ProcedureRegistry",
    "SequencedTxn",
    "Transaction",
    "TransactionResult",
    "TxnContext",
    "TxnStatus",
    "reconnoiter",
]

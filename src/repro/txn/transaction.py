"""Transaction requests and their place in the global serial order."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Optional, Set, Tuple

from repro.errors import ConfigError
from repro.partition.catalog import Catalog
from repro.partition.partitioner import Key

# Global sequence number: (epoch, origin_partition, index within batch).
# Tuple comparison gives exactly Calvin's interleaving rule — all batches
# of an epoch, in sequencer (origin partition) order, each in batch order.
GlobalSeq = Tuple[int, int, int]


@dataclass(frozen=True)
class Transaction:
    """A transaction request: procedure + args + declared footprint.

    ``read_set``/``write_set`` are the keys the logic may touch; Calvin
    sequences and locks from these alone, so executing outside them is a
    :class:`~repro.errors.FootprintViolation`. ``footprint_token`` carries
    the reconnaissance evidence for dependent (OLLP) transactions.
    """

    txn_id: int
    procedure: str
    args: Any
    read_set: FrozenSet[Key]
    write_set: FrozenSet[Key]
    origin_partition: int = 0
    client: Any = None
    dependent: bool = False
    footprint_token: Any = None
    submit_time: float = 0.0
    restarts: int = 0

    @staticmethod
    def create(
        txn_id: int,
        procedure: str,
        args: Any,
        read_set,
        write_set,
        origin_partition: int = 0,
        client: Any = None,
        dependent: bool = False,
        footprint_token: Any = None,
        submit_time: float = 0.0,
        restarts: int = 0,
    ) -> "Transaction":
        """Build a transaction, normalizing the footprint sets."""
        return Transaction(
            txn_id=txn_id,
            procedure=procedure,
            args=args,
            read_set=frozenset(read_set),
            write_set=frozenset(write_set),
            origin_partition=origin_partition,
            client=client,
            dependent=dependent,
            footprint_token=footprint_token,
            submit_time=submit_time,
            restarts=restarts,
        )

    def all_keys(self) -> FrozenSet[Key]:
        return self.read_set | self.write_set

    def participants(self, catalog: Catalog) -> Set[int]:
        """Partitions holding any key this transaction touches."""
        parts = catalog.partitions_of(self.all_keys())
        if not parts:
            raise ConfigError(f"transaction {self.txn_id} has an empty footprint")
        return parts

    def active_participants(self, catalog: Catalog) -> Set[int]:
        """Partitions that execute logic and apply writes.

        Write-set partitions are active. A read-only transaction has one
        active participant (the lowest-numbered involved partition),
        which executes the logic and produces the result.
        """
        writers = catalog.partitions_of(self.write_set)
        if writers:
            return writers
        return {min(self.participants(catalog))}

    def reply_partition(self, catalog: Catalog) -> int:
        """The (deterministic) participant that reports the result to the client."""
        return min(self.active_participants(catalog))

    def is_multipartition(self, catalog: Catalog) -> bool:
        return len(self.participants(catalog)) > 1


@dataclass(frozen=True, order=True)
class SequencedTxn:
    """A transaction bound to its position in the global serial order."""

    seq: GlobalSeq
    txn: Transaction = field(compare=False)

    @property
    def epoch(self) -> int:
        return self.seq[0]

"""Transaction requests and their place in the global serial order."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, FrozenSet, Set, Tuple

from repro.errors import ConfigError
from repro.partition.catalog import Catalog
from repro.partition.partitioner import Key, sorted_keys

# Global sequence number: (epoch, origin_partition, index within batch).
# Tuple comparison gives exactly Calvin's interleaving rule — all batches
# of an epoch, in sequencer (origin partition) order, each in batch order.
GlobalSeq = Tuple[int, int, int]


@dataclass(frozen=True, slots=True)
class Transaction:
    """A transaction request: procedure + args + declared footprint.

    ``read_set``/``write_set`` are the keys the logic may touch; Calvin
    sequences and locks from these alone, so executing outside them is a
    :class:`~repro.errors.FootprintViolation`. ``footprint_token`` carries
    the reconnaissance evidence for dependent (OLLP) transactions.

    Treated as immutable after creation (every hot path hands the same
    instance around); the trailing underscore fields memoise derived
    views — sorted key orders, participant sets, the lock plan — that
    sequencer, scheduler and executor each ask for several times.
    """

    txn_id: int
    procedure: str
    args: Any
    read_set: FrozenSet[Key]
    write_set: FrozenSet[Key]
    origin_partition: int = 0
    client: Any = None
    dependent: bool = False
    footprint_token: Any = None
    submit_time: float = 0.0
    restarts: int = 0
    # Memo fields: derived views, excluded from comparisons and repr
    # (input-log replay checks compare transactions across independent
    # runs whose memoization states differ). Written once each via
    # ``object.__setattr__``; reads are plain (fast) slot loads.
    _sorted_reads: Any = field(default=None, init=False, repr=False, compare=False)
    _sorted_writes: Any = field(default=None, init=False, repr=False, compare=False)
    _participants_cache: Any = field(default=None, init=False, repr=False, compare=False)
    _active_cache: Any = field(default=None, init=False, repr=False, compare=False)
    _lock_plan: Any = field(default=None, init=False, repr=False, compare=False)
    # Epoch-aware participant memo used by Catalog.participants_at under
    # live reconfiguration: (catalog, routing_version, participants,
    # active). Never touched on the static (no-reconfig) path.
    _participants_at_cache: Any = field(default=None, init=False, repr=False, compare=False)

    @staticmethod
    def create(
        txn_id: int,
        procedure: str,
        args: Any,
        read_set,
        write_set,
        origin_partition: int = 0,
        client: Any = None,
        dependent: bool = False,
        footprint_token: Any = None,
        submit_time: float = 0.0,
        restarts: int = 0,
    ) -> "Transaction":
        """Build a transaction, normalizing the footprint sets."""
        return Transaction(
            txn_id=txn_id,
            procedure=procedure,
            args=args,
            read_set=frozenset(read_set),
            write_set=frozenset(write_set),
            origin_partition=origin_partition,
            client=client,
            dependent=dependent,
            footprint_token=footprint_token,
            submit_time=submit_time,
            restarts=restarts,
        )

    def all_keys(self) -> FrozenSet[Key]:
        return self.read_set | self.write_set

    def sorted_reads(self) -> Tuple[Key, ...]:
        """``read_set`` in stable (sort-token) order, memoised."""
        cached = self._sorted_reads
        if cached is None:
            if self.read_set == self.write_set:
                cached = self.sorted_writes()
            else:
                cached = tuple(sorted_keys(self.read_set))
            object.__setattr__(self, "_sorted_reads", cached)
        return cached

    def sorted_writes(self) -> Tuple[Key, ...]:
        """``write_set`` in stable (sort-token) order, memoised."""
        cached = self._sorted_writes
        if cached is None:
            cached = tuple(sorted_keys(self.write_set))
            object.__setattr__(self, "_sorted_writes", cached)
        return cached

    def participants(self, catalog: Catalog) -> Set[int]:
        """Partitions holding any key this transaction touches.

        Memoised per catalog (sequencer, scheduler and executor all ask
        several times per transaction). Callers treat the result as
        read-only.
        """
        cache = self._participants_cache
        if cache is not None and cache[0] is catalog:
            return cache[1]
        if self.read_set == self.write_set:
            parts = catalog.partitions_of(self.read_set)
        else:
            parts = catalog.partitions_of(self.read_set)
            parts |= catalog.partitions_of(self.write_set)
        if not parts:
            raise ConfigError(f"transaction {self.txn_id} has an empty footprint")
        object.__setattr__(self, "_participants_cache", (catalog, parts))
        return parts

    def active_participants(self, catalog: Catalog) -> Set[int]:
        """Partitions that execute logic and apply writes.

        Write-set partitions are active. A read-only transaction has one
        active participant (the lowest-numbered involved partition),
        which executes the logic and produces the result. Memoised like
        :meth:`participants`; callers treat the result as read-only.
        """
        cache = self._active_cache
        if cache is not None and cache[0] is catalog:
            return cache[1]
        if self.write_set and self.read_set <= self.write_set:
            # all_keys == write_set: every participant is active.
            active = self.participants(catalog)
        else:
            active = catalog.partitions_of(self.write_set)
            if not active:
                active = {min(self.participants(catalog))}
        object.__setattr__(self, "_active_cache", (catalog, active))
        return active

    def reply_partition(self, catalog: Catalog) -> int:
        """The (deterministic) participant that reports the result to the client."""
        return min(self.active_participants(catalog))

    def is_multipartition(self, catalog: Catalog) -> bool:
        return len(self.participants(catalog)) > 1


@dataclass(frozen=True, order=True)
class SequencedTxn:
    """A transaction bound to its position in the global serial order."""

    seq: GlobalSeq
    txn: Transaction = field(compare=False)

    @property
    def epoch(self) -> int:
        return self.seq[0]

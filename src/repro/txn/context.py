"""Transaction execution context.

The context is what procedure logic sees: reads answered from the
already-collected local + remote snapshot, writes buffered for atomic
application, and the declared footprint enforced on every access.
Determinism requirements: no wall-clock, no ambient randomness — the
only randomness available is a per-transaction stream derived from the
transaction id, which is identical on every replica.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Optional

from repro.errors import FootprintViolation, TransactionAborted
from repro.partition.partitioner import Key
from repro.txn.transaction import Transaction


class _Deleted:
    """Sentinel marking a buffered delete."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<DELETED>"


DELETED = _Deleted()


class TxnContext:
    """What a stored procedure gets to work with during execution."""

    __slots__ = (
        "txn", "args", "_reads", "_read_set", "_write_set", "writes",
        "deleted", "_rng",
    )

    def __init__(self, txn: Transaction, reads: Dict[Key, Any]):
        self.txn = txn
        self.args = txn.args
        self._reads = reads
        self._read_set = txn.read_set
        self._write_set = txn.write_set
        self.writes: Dict[Key, Any] = {}
        # True once delete() has buffered a DELETED sentinel — lets the
        # store apply delete-free buffers with one dict.update.
        self.deleted = False
        self._rng: Optional[random.Random] = None

    def read(self, key: Key) -> Any:
        """Value of ``key`` in the transaction's snapshot (None if absent).

        Reads observe the transaction's own earlier writes
        (read-your-writes within the transaction). A write-set key may
        only be read *after* this transaction wrote it — reading its
        pre-image requires declaring it in the read set too, since only
        read-set values are shipped between participants.
        """
        writes = self.writes
        if key in writes:
            value = writes[key]
            return None if value is DELETED else value
        if key not in self._read_set:
            raise FootprintViolation(
                f"txn {self.txn.txn_id} read outside declared read set: {key!r} "
                "(write-set keys are readable only after being written)"
            )
        return self._reads.get(key)

    def write(self, key: Key, value: Any) -> None:
        """Buffer a write; applied atomically iff the transaction commits."""
        if key not in self._write_set:
            raise FootprintViolation(
                f"txn {self.txn.txn_id} write outside declared write set: {key!r}"
            )
        if value is DELETED:
            raise FootprintViolation("use delete() to remove a key")
        self.writes[key] = value

    def delete(self, key: Key) -> None:
        """Buffer a deletion of ``key``."""
        if key not in self._write_set:
            raise FootprintViolation(
                f"txn {self.txn.txn_id} delete outside declared write set: {key!r}"
            )
        self.writes[key] = DELETED
        self.deleted = True

    def abort(self, reason: str = "aborted by transaction logic") -> None:
        """Deterministically abort; every active participant takes the
        same branch because logic and snapshot are identical everywhere."""
        raise TransactionAborted(reason)

    @property
    def random(self) -> random.Random:
        """Per-transaction deterministic randomness (same on all replicas)."""
        if self._rng is None:
            self._rng = random.Random(self.txn.txn_id * 2654435761 % (2**31))
        return self._rng

    def snapshot(self) -> Dict[Key, Any]:
        """A copy of the read snapshot (for checkers/tests)."""
        return dict(self._reads)

"""Transaction outcomes as reported back to clients."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TxnStatus(enum.Enum):
    """Terminal status of one execution attempt."""

    COMMITTED = "committed"
    # Deterministic abort decided by transaction logic (e.g. TPC-C's 1%
    # invalid-item New Orders). The abort itself is part of the agreed
    # history; clients do not retry.
    ABORTED = "aborted"
    # OLLP footprint recheck failed; the client should reconnoiter again
    # and resubmit. Also used by the 2PC baseline for wait-die deaths.
    RESTART = "restart"
    # Refused by admission control before sequencing (overload). The
    # transaction never entered the agreed history; under the
    # "backpressure" policy the result's ``value`` carries a
    # deterministic retry-after hint in virtual seconds.
    REJECTED = "rejected"


@dataclass(frozen=True)
class TransactionResult:
    """What the reply partition sends back to the client."""

    txn_id: int
    status: TxnStatus
    value: Any = None
    submit_time: float = 0.0
    complete_time: float = 0.0
    restarts: int = 0
    # When this node's lock manager finished granting the transaction's
    # locks — splits latency into "sequencing + lock wait" vs "execution".
    granted_time: float = 0.0

    @property
    def latency(self) -> float:
        """Client-observed latency of this attempt."""
        return self.complete_time - self.submit_time

    @property
    def sequencing_latency(self) -> float:
        """Submit → all local locks granted (epoch wait + queueing)."""
        return max(0.0, self.granted_time - self.submit_time)

    @property
    def execution_latency(self) -> float:
        """Lock grant → completion (worker queue + phases 2-5)."""
        return max(0.0, self.complete_time - self.granted_time)

    @property
    def committed(self) -> bool:
        return self.status is TxnStatus.COMMITTED

    @property
    def rejected(self) -> bool:
        """True when admission control refused the request (overload)."""
        return self.status is TxnStatus.REJECTED

    @property
    def retry_after(self) -> float:
        """Backpressure hint: resubmit after this many virtual seconds
        (0.0 unless this is a backpressure rejection)."""
        if self.status is TxnStatus.REJECTED and isinstance(self.value, float):
            return self.value
        return 0.0

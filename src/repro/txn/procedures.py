"""Stored-procedure registry.

A procedure bundles deterministic transaction logic with its CPU cost
(worker time charged in the simulation) and, for dependent transactions,
the OLLP reconnaissance and recheck hooks. The same registry object is
shared by every node of a cluster — and must be shared by every replica,
since replicas re-execute inputs rather than applying effects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.txn.context import TxnContext
    from repro.txn.ollp import Footprint

Logic = Callable[["TxnContext"], Any]
# reconnoiter(read_fn, args) -> Footprint; read_fn(key) reads a snapshot.
Reconnoiter = Callable[[Callable[[Any], Any], Any], "Footprint"]
# recheck(ctx) -> bool; True when the reconnoitered footprint is still valid.
Recheck = Callable[["TxnContext"], bool]


@dataclass(frozen=True)
class Procedure:
    """Deterministic transaction logic plus its simulation cost model."""

    name: str
    logic: Logic
    logic_cpu: float = 50e-6
    reconnoiter: Optional[Reconnoiter] = None
    recheck: Optional[Recheck] = None

    def __post_init__(self) -> None:
        if self.logic_cpu < 0:
            raise ConfigError(f"procedure {self.name!r}: logic_cpu must be >= 0")
        if (self.reconnoiter is None) != (self.recheck is None):
            raise ConfigError(
                f"procedure {self.name!r}: dependent procedures need both "
                "reconnoiter and recheck (or neither)"
            )

    @property
    def is_dependent(self) -> bool:
        return self.reconnoiter is not None


class ProcedureRegistry:
    """Name → :class:`Procedure` mapping shared by all nodes of a cluster."""

    def __init__(self) -> None:
        self._procedures: Dict[str, Procedure] = {}

    def register(self, procedure: Procedure) -> Procedure:
        if procedure.name in self._procedures:
            raise ConfigError(f"procedure already registered: {procedure.name!r}")
        self._procedures[procedure.name] = procedure
        return procedure

    def define(
        self,
        name: str,
        logic_cpu: float = 50e-6,
        reconnoiter: Optional[Reconnoiter] = None,
        recheck: Optional[Recheck] = None,
    ) -> Callable[[Logic], Logic]:
        """Decorator form: ``@registry.define("transfer")``."""

        def wrap(logic: Logic) -> Logic:
            self.register(
                Procedure(
                    name=name,
                    logic=logic,
                    logic_cpu=logic_cpu,
                    reconnoiter=reconnoiter,
                    recheck=recheck,
                )
            )
            return logic

        return wrap

    def get(self, name: str) -> Procedure:
        try:
            return self._procedures[name]
        except KeyError:
            raise ConfigError(f"unknown procedure: {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._procedures

    def names(self):
        return sorted(self._procedures)

"""Group-commit write-ahead log for the baseline system.

Synchronous log forces dominate commit latency in a conventional
engine. Group commit amortizes them: all force requests arriving while a
flush is in progress share the next flush, so throughput is not bounded
by 1/force_latency, but every committer still waits for a real flush.
"""

from __future__ import annotations

from typing import List

from repro.sim.events import Event


class GroupCommitLog:
    """Batched synchronous log forces."""

    def __init__(self, sim, force_latency: float):
        self.sim = sim
        self.force_latency = force_latency
        self._pending: List[Event] = []
        self._flushing = False
        self.forces = 0
        self.flushes = 0

    def force(self) -> Event:
        """An event that triggers once this request's records are durable."""
        self.forces += 1
        event = Event(self.sim)
        if self.force_latency <= 0:
            event.succeed()
            return event
        self._pending.append(event)
        if not self._flushing:
            self._start_flush()
        return event

    def _start_flush(self) -> None:
        self._flushing = True
        batch, self._pending = self._pending, []
        self.flushes += 1
        self.sim.schedule(self.force_latency, self._finish_flush, batch)

    def _finish_flush(self, batch: List[Event]) -> None:
        for event in batch:
            event.succeed()
        if self._pending:
            self._start_flush()
        else:
            self._flushing = False

    @property
    def average_batch_size(self) -> float:
        return self.forces / self.flushes if self.flushes else 0.0

"""Baseline cluster assembly — mirrors :class:`repro.core.cluster.CalvinCluster`
closely enough that the same closed-loop clients and benchmark harness
drive both systems."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Union

from repro.baseline.node import BaselineNode
from repro.config import BaselineConfig, ClusterConfig
from repro.core.clients import ClosedLoopClient
from repro.core.metrics import Metrics, RunReport
from repro.core.traffic import ClientProfile
from repro.errors import ConfigError
from repro.obs import MetricsRegistry, NULL_RECORDER, TraceRecorder
from repro.partition.catalog import Catalog
from repro.partition.partitioner import Key, Partitioner
from repro.sim.kernel import Simulator
from repro.sim.network import Network, lan_topology
from repro.sim.rng import RngStreams
from repro.txn.procedures import ProcedureRegistry
from repro.txn.result import TransactionResult
from repro.txn.transaction import Transaction
from repro.workloads.base import Workload


class BaselineCluster:
    """A simulated conventional (2PL + 2PC) distributed database."""

    def __init__(
        self,
        config: ClusterConfig,
        baseline: Optional[BaselineConfig] = None,
        workload: Optional[Workload] = None,
        registry: Optional[ProcedureRegistry] = None,
        partitioner: Optional[Partitioner] = None,
        tracer: Optional[TraceRecorder] = None,
        record_history: bool = False,
    ):
        config.validate()
        if config.num_replicas != 1:
            raise ConfigError("the baseline system models a single replica")
        self.config = config
        self.baseline = baseline or BaselineConfig()
        self.baseline.validate()
        self.workload = workload

        if workload is not None:
            if registry is None:
                registry = ProcedureRegistry()
                workload.register(registry)
            if partitioner is None:
                partitioner = workload.build_partitioner(config.num_partitions)
        if registry is None or partitioner is None:
            raise ConfigError("cluster needs a workload, or registry + partitioner")
        self.registry = registry
        self.catalog = Catalog(config, partitioner)

        self.sim = Simulator(sanitize=config.sanitize)
        self.rngs = RngStreams(config.seed)
        self.network = Network(
            self.sim, lan_topology(config.lan_latency, config.lan_bandwidth)
        )
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        self.metrics_registry = MetricsRegistry()
        self.sim.register_metrics(self.metrics_registry)
        self.network.register_metrics(self.metrics_registry)
        self.metrics = Metrics(registry=self.metrics_registry)

        self.nodes: Dict[int, BaselineNode] = {
            partition: BaselineNode(
                self.sim,
                self.network,
                partition,
                self.catalog,
                config,
                self.baseline,
                self.registry,
                on_complete=self._completion_hook,
                tracer=self.tracer,
            )
            for partition in range(config.num_partitions)
        }
        for partition, node in self.nodes.items():
            node.register_metrics(self.metrics_registry, f"node.p{partition}")
        self.clients: List[ClosedLoopClient] = []
        self._txn_counter = 0
        # Optional completion history: (completion index, txn, status) in
        # commit order. Under strict 2PL + 2PC the commit point precedes
        # lock release, so completion order is a valid serialization
        # order — the equivalence oracle replays it serially.
        self.record_history = record_history
        self.history: List[Any] = []
        self._initial_data: Dict[Key, Any] = {}

    # -- the subset of the CalvinCluster surface the clients need --------------

    def _completion_hook(self, txn: Transaction, result: TransactionResult) -> None:
        self.metrics.record_completion(txn.procedure, result, self.sim.now)
        if self.record_history:
            self.history.append((len(self.history), txn, result.status))

    def next_txn_id(self) -> int:
        self._txn_counter += 1
        return self._txn_counter

    def analytics_read(self, key: Key) -> Any:
        return self.nodes[self.catalog.partition_of(key)].store.get(key)

    def node(self, partition: int) -> BaselineNode:
        return self.nodes[partition]

    def load(self, data: Dict[Key, Any]) -> None:
        per_partition: Dict[int, Dict[Key, Any]] = {}
        for key, value in data.items():
            per_partition.setdefault(self.catalog.partition_of(key), {})[key] = value
        for partition, chunk in per_partition.items():
            self.nodes[partition].store.load_bulk(chunk)
        self._initial_data.update(data)

    @property
    def initial_data(self) -> Dict[Key, Any]:
        return dict(self._initial_data)

    def sorted_history(self) -> List[Any]:
        return sorted(self.history, key=lambda entry: entry[0])

    def load_workload_data(self) -> None:
        if self.workload is None:
            raise ConfigError("cluster has no workload to load data from")
        self.load(self.workload.initial_data(self.catalog))

    def add_clients(
        self,
        profile: Union[ClientProfile, int, None] = None,
        workload: Optional[Workload] = None,
        think_time: float = 0.0,
        max_txns: Optional[int] = None,
        *,
        per_partition: Optional[int] = None,
    ) -> List[ClosedLoopClient]:
        """Create clients from a :class:`ClientProfile` (closed-loop only;
        the baseline has no admission front-end to absorb open-loop
        overload). The legacy kwargs form works through the same
        deprecation shim as :meth:`CalvinCluster.add_clients`."""
        if not isinstance(profile, ClientProfile):
            from repro.core.cluster import (
                _legacy_add_clients_args,
                _warn_legacy_add_clients,
            )

            _warn_legacy_add_clients(
                _legacy_add_clients_args(
                    profile, workload, think_time, max_txns, per_partition
                )
            )
            count = per_partition if per_partition is not None else profile
            if not isinstance(count, int):
                raise ConfigError(
                    "add_clients needs a ClientProfile or a per-partition count"
                )
            profile = ClientProfile(
                per_partition=count,
                workload=workload,
                think_time=think_time,
                max_txns=max_txns,
            )
        profile.validate()
        if profile.mode != "closed":
            raise ConfigError("the baseline system supports closed-loop clients only")
        workload = profile.workload or self.workload
        if workload is None:
            raise ConfigError("no workload for clients")
        created = []
        for partition in range(self.config.num_partitions):
            for _ in range(profile.per_partition):
                client = ClosedLoopClient(
                    self,
                    partition,
                    len(self.clients),
                    workload,
                    profile.think_time,
                    profile.max_txns,
                    retry_backoff=self.baseline.retry_backoff,
                    max_restarts=self.baseline.max_retries,
                )
                self.clients.append(client)
                created.append(client)
        return created

    def run(self, duration: float, warmup: float = 0.0) -> RunReport:
        for client in self.clients:
            if client.submitted == 0:
                client.start()
        if warmup > 0:
            self.sim.run(until=self.sim.now + warmup)
        self.metrics.begin_window(self.sim.now)
        self.sim.run(until=self.sim.now + duration)
        return self.metrics.report(self.sim.now)

    def final_state(self) -> Dict[Key, Any]:
        state: Dict[Key, Any] = {}
        for node in self.nodes.values():
            state.update(node.store.snapshot())
        return state

    def quiesce(self, timeout: float = 300.0, step: float = 0.05) -> None:
        """Drain bounded clients (requires ``max_txns``)."""
        if any(client.max_txns is None for client in self.clients):
            raise ConfigError("quiesce requires max_txns-bounded clients")
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            self.sim.run(until=self.sim.now + step)
            if all(client.idle for client in self.clients) and not any(
                node._coord for node in self.nodes.values()
            ):
                return
        raise ConfigError(f"baseline cluster failed to quiesce within {timeout}s")

"""One node of the baseline System R*-style distributed database.

Every node can act as *coordinator* (for transactions submitted by its
local clients) and as *participant* (for any transaction touching its
partition). The execution protocol per transaction:

1. coordinator sends ``ExecRequest`` to every participant (itself via
   loopback);
2. each participant acquires its local locks under wait-die 2PL, reads
   its local read-set values and replies (locks stay held);
3. the coordinator runs the procedure logic;
4. single-partition: one forced commit record, apply, release.
   Distributed: two-phase commit — prepare (participants force-log the
   writes, vote), coordinator forces the decision, participants apply
   and release on the decision message.

Wait-die deaths surface to the client as ``RESTART``; the client retries
with a fresh (younger) timestamp after a backoff.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, TYPE_CHECKING, Tuple

from repro.baseline.locks import DIED, TwoPhaseLockTable
from repro.baseline.log import GroupCommitLog
from repro.baseline.messages import (
    Decision,
    ExecReply,
    ExecRequest,
    PrepareRequest,
    PrepareVote,
)
from repro.config import BaselineConfig, ClusterConfig
from repro.errors import ConfigError, NetworkError, TransactionAborted
from repro.net.messages import ClientSubmit, TxnReply
from repro.obs import NULL_RECORDER, SpanKind, TraceRecorder
from repro.partition.catalog import Catalog, NodeId, node_address
from repro.partition.partitioner import sort_token
from repro.scheduler.lockmanager import LockMode
from repro.sim.events import Event
from repro.sim.resources import Resource
from repro.storage.kvstore import KVStore
from repro.txn.context import TxnContext
from repro.txn.procedures import ProcedureRegistry
from repro.txn.result import TransactionResult, TxnStatus
from repro.txn.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator
    from repro.sim.network import Network

CompletionHook = Callable[[Transaction, TransactionResult], None]


class _CoordState:
    """Coordinator-side bookkeeping for one in-flight transaction."""

    __slots__ = ("txn", "participants", "replies", "votes", "waiter")

    def __init__(self, txn: Transaction, participants: Set[int]):
        self.txn = txn
        self.participants = participants
        self.replies: Dict[int, ExecReply] = {}
        self.votes: Set[int] = set()
        self.waiter: Optional[Event] = None


class BaselineNode:
    """Coordinator + participant + storage for one partition."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        partition: int,
        catalog: Catalog,
        config: ClusterConfig,
        baseline: BaselineConfig,
        registry: ProcedureRegistry,
        on_complete: Optional[CompletionHook] = None,
        tracer: TraceRecorder = NULL_RECORDER,
    ):
        self.sim = sim
        self.network = network
        self.partition = partition
        self.catalog = catalog
        self.config = config
        self.baseline = baseline
        self.registry = registry
        self.on_complete = on_complete
        self.tracer = tracer
        self.address = node_address(NodeId(0, partition))

        self.store = KVStore(partition)
        self.locks = TwoPhaseLockTable(sim)
        self.log = GroupCommitLog(sim, config.costs.log_force_latency)
        self.workers = Resource(sim, config.workers_per_node, name=f"bworkers{partition}")

        self._coord: Dict[int, _CoordState] = {}
        # Participant-side pending writes awaiting a 2PC decision.
        self._prepared: Dict[int, Dict] = {}
        self.committed = 0
        self.aborted = 0
        self.deaths = 0

        network.register(self.address, self.handle_message)

    # -- plumbing ----------------------------------------------------------

    def send(self, partition: int, message: Any) -> None:
        size = message.size_estimate() if hasattr(message, "size_estimate") else 128
        self.network.send(self.address, node_address(NodeId(0, partition)), message, size)

    def handle_message(self, src: Any, message: Any) -> None:
        if isinstance(message, ClientSubmit):
            self.sim.process(self._coordinate(message.txn))
        elif isinstance(message, ExecRequest):
            self.sim.process(self._participant_exec(message))
        elif isinstance(message, ExecReply):
            self._coord_input(message.txn_id, lambda s: s.replies.__setitem__(
                message.from_partition, message))
        elif isinstance(message, PrepareRequest):
            self.sim.process(self._participant_prepare(message))
        elif isinstance(message, PrepareVote):
            self._coord_input(message.txn_id, lambda s: s.votes.add(message.from_partition))
        elif isinstance(message, Decision):
            self.sim.process(self._participant_decide(message))
        else:
            raise NetworkError(f"unhandled baseline message: {message!r}")

    def _coord_input(self, txn_id: int, mutate) -> None:
        state = self._coord.get(txn_id)
        if state is None:
            return
        mutate(state)
        if state.waiter is not None and not state.waiter.triggered:
            state.waiter.succeed()

    def _wait_for(self, state: _CoordState, done: Callable[[], bool]):
        while not done():
            state.waiter = Event(self.sim)
            yield state.waiter
        state.waiter = None

    def _span(self, kind: SpanKind, start: float, txn_id: int, detail=None) -> None:
        if self.tracer.enabled:
            self.tracer.record(
                kind, start, self.sim.now,
                replica=0, partition=self.partition, txn_id=txn_id, detail=detail,
            )

    # -- coordinator ------------------------------------------------------------

    def _coordinate(self, txn: Transaction):
        if txn.dependent:
            # The baseline executes strictly from the declared footprint
            # and has no recheck hook; a stale OLLP footprint would be
            # applied silently. A real 2PL system would instead acquire
            # locks as it reads — out of scope for the comparison system.
            raise ConfigError(
                "the 2PC baseline does not support dependent (OLLP) "
                f"transactions (got {txn.procedure!r})"
            )
        costs = self.config.costs
        participants = txn.participants(self.catalog)
        state = _CoordState(txn, participants)
        self._coord[txn.txn_id] = state

        for partition in sorted(participants):
            read_keys = tuple(
                k for k in txn.read_set if self.catalog.partition_of(k) == partition
            )
            write_keys = tuple(
                k for k in txn.write_set if self.catalog.partition_of(k) == partition
            )
            self.send(
                partition,
                ExecRequest(txn.txn_id, txn.txn_id, self.partition, read_keys, write_keys),
            )

        # The coordinator's wait for participant read results is the
        # baseline's analogue of Calvin's remote-read collection phase.
        wait_start = self.sim.now
        yield from self._wait_for(state, lambda: len(state.replies) == len(participants))
        self._span(SpanKind.REMOTE_READ_WAIT, wait_start, txn.txn_id, detail="exec-replies")

        ok_partitions = [p for p, reply in state.replies.items() if reply.ok]
        if len(ok_partitions) < len(participants):
            # Wait-die death somewhere: abort the survivors, tell the
            # client to retry with a fresh timestamp.
            for partition in ok_partitions:
                self.send(partition, Decision(txn.txn_id, commit=False))
            self.deaths += 1
            self._finish(state, TxnStatus.RESTART, None)
            return

        reads: Dict = {}
        for reply in state.replies.values():
            reads.update(reply.values)

        # Run the procedure logic on a local worker.
        exec_start = self.sim.now
        yield self.workers.request()
        procedure = self.registry.get(txn.procedure)
        cpu = costs.txn_base_cpu + procedure.logic_cpu
        if len(participants) > 1:
            cpu += costs.multipartition_overhead_cpu
            cpu += costs.remote_read_serve_cpu * (len(participants) - 1)
        context = TxnContext(txn, reads)
        try:
            value = procedure.logic(context)
            committed = True
        except TransactionAborted as abort:
            value = abort.reason
            committed = False
            context.writes.clear()
        yield self.sim.timeout(cpu)
        self.workers.release()
        self._span(SpanKind.EXECUTE, exec_start, txn.txn_id, detail="coordinator")

        if not committed:
            for partition in sorted(participants):
                self.send(partition, Decision(txn.txn_id, commit=False))
            self._finish(state, TxnStatus.ABORTED, value)
            return

        writes_by_partition: Dict[int, Dict] = {p: {} for p in participants}
        for key, val in context.writes.items():
            writes_by_partition[self.catalog.partition_of(key)][key] = val

        if len(participants) == 1:
            # Local commit: one forced commit record, then apply/release.
            if self.baseline.force_log_writes:
                force_start = self.sim.now
                yield self.log.force()
                self._span(SpanKind.DISK, force_start, txn.txn_id, detail="log-force")
            self._prepared[txn.txn_id] = writes_by_partition[self.partition]
            self.send(self.partition, Decision(txn.txn_id, commit=True))
            self._finish(state, TxnStatus.COMMITTED, value)
            return

        # Two-phase commit. The prepare round is the baseline's input
        # durability step — the analogue of Calvin's batch replication.
        prepare_start = self.sim.now
        for partition in sorted(participants):
            self.send(
                partition,
                PrepareRequest(txn.txn_id, self.partition, writes_by_partition[partition]),
            )
        yield from self._wait_for(state, lambda: len(state.votes) == len(participants))
        self._span(SpanKind.REPLICATE, prepare_start, txn.txn_id, detail="2pc-prepare")
        if self.baseline.force_log_writes:
            force_start = self.sim.now
            yield self.log.force()  # the forced decision record
            self._span(SpanKind.DISK, force_start, txn.txn_id, detail="log-force")
        for partition in sorted(participants):
            self.send(partition, Decision(txn.txn_id, commit=True))
        self._finish(state, TxnStatus.COMMITTED, value)

    def _finish(self, state: _CoordState, status: TxnStatus, value: Any) -> None:
        txn = state.txn
        del self._coord[txn.txn_id]
        result = TransactionResult(
            txn_id=txn.txn_id,
            status=status,
            value=value,
            submit_time=txn.submit_time,
            complete_time=self.sim.now,
            restarts=txn.restarts,
        )
        if status is TxnStatus.COMMITTED:
            self.committed += 1
        elif status is TxnStatus.ABORTED:
            self.aborted += 1
        if self.on_complete is not None:
            self.on_complete(txn, result)
        if txn.client is not None:
            reply = TxnReply(result)
            self.network.send(self.address, txn.client, reply, reply.size_estimate())

    # -- participant ---------------------------------------------------------------

    def _participant_exec(self, request: ExecRequest):
        costs = self.config.costs
        ts = request.ts
        write_set = set(request.write_keys)
        requests: List[Tuple[Any, LockMode]] = [
            (key, LockMode.WRITE) for key in sorted(write_set, key=sort_token)
        ]
        requests += [
            (key, LockMode.READ)
            for key in sorted(set(request.read_keys) - write_set, key=sort_token)
        ]
        lock_start = self.sim.now
        for key, mode in requests:
            outcome = yield self.locks.acquire(ts, key, mode)
            if outcome is DIED:
                self.locks.release_all(ts)
                self._span(SpanKind.LOCK_WAIT, lock_start, request.txn_id, detail="died")
                self.send(
                    request.coordinator_partition,
                    ExecReply(request.txn_id, self.partition, ok=False, values={}),
                )
                return
        self._span(SpanKind.LOCK_WAIT, lock_start, request.txn_id)

        # All local locks held: read local values on a worker.
        exec_start = self.sim.now
        yield self.workers.request()
        cpu = (
            costs.lock_request_cpu * len(requests)
            + costs.read_cpu * len(request.read_keys)
        )
        if request.coordinator_partition != self.partition:
            cpu += costs.multipartition_overhead_cpu / 2
        values = {key: self.store.get(key) for key in request.read_keys}
        yield self.sim.timeout(max(cpu, 1e-9))
        self.workers.release()
        self._span(SpanKind.EXECUTE, exec_start, request.txn_id, detail="participant")
        self.send(
            request.coordinator_partition,
            ExecReply(request.txn_id, self.partition, ok=True, values=values),
        )

    def _participant_prepare(self, request: PrepareRequest):
        self._prepared[request.txn_id] = request.writes
        if self.baseline.force_log_writes:
            force_start = self.sim.now
            yield self.log.force()
            self._span(SpanKind.DISK, force_start, request.txn_id, detail="log-force")
        self.send(request.coordinator_partition, PrepareVote(request.txn_id, self.partition))

    def _participant_decide(self, decision: Decision):
        writes = self._prepared.pop(decision.txn_id, None)
        if decision.commit and writes:
            apply_start = self.sim.now
            yield self.workers.request()
            yield self.sim.timeout(
                max(self.config.costs.write_cpu * len(writes), 1e-9)
            )
            self.store.apply_writes(writes)
            self.workers.release()
            self._span(SpanKind.APPLY, apply_start, decision.txn_id)
        self.locks.release_all(decision.txn_id)

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose node tallies as gauges in ``registry``."""
        registry.gauge(f"{prefix}.committed", lambda: self.committed)
        registry.gauge(f"{prefix}.aborted", lambda: self.aborted)
        registry.gauge(f"{prefix}.deaths", lambda: self.deaths)

"""Wire protocol of the baseline (2PL + 2PC) system."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.partition.partitioner import Key

_HEADER = 64
_RECORD = 120


@dataclass(frozen=True, slots=True)
class ExecRequest:
    """Coordinator → participant: acquire these locks, return read values."""

    txn_id: int
    ts: int
    coordinator_partition: int
    read_keys: Tuple[Key, ...]
    write_keys: Tuple[Key, ...]

    def size_estimate(self) -> int:
        return _HEADER + 24 * (len(self.read_keys) + len(self.write_keys))


@dataclass(frozen=True, slots=True)
class ExecReply:
    """Participant → coordinator: locks held + values, or wait-die abort."""

    txn_id: int
    from_partition: int
    ok: bool
    values: Dict[Key, Any]

    def size_estimate(self) -> int:
        return _HEADER + _RECORD * max(1, len(self.values))


@dataclass(frozen=True, slots=True)
class PrepareRequest:
    """Coordinator → participant: 2PC phase 1, carrying the writes."""

    txn_id: int
    coordinator_partition: int
    writes: Dict[Key, Any]

    def size_estimate(self) -> int:
        return _HEADER + _RECORD * max(1, len(self.writes))


@dataclass(frozen=True, slots=True)
class PrepareVote:
    """Participant → coordinator: prepared (force-logged) and voting yes."""

    txn_id: int
    from_partition: int

    def size_estimate(self) -> int:
        return _HEADER


@dataclass(frozen=True, slots=True)
class Decision:
    """Coordinator → participant: 2PC phase 2 (commit or abort)."""

    txn_id: int
    commit: bool

    def size_estimate(self) -> int:
        return _HEADER

"""The comparison system: a System R*-style distributed database.

The paper's Figure 7 compares Calvin's behaviour under contention with
"a traditional distributed database" that holds locks across two-phase
commit. This package implements that system from scratch on the same
substrate (same simulator, network, stores, cost model):

- strict two-phase locking with **wait-die** deadlock avoidance,
- a **group-commit** log with synchronous forces at prepare/commit,
- **two-phase commit** for distributed transactions, coordinated by the
  client's local node,
- aborted (wait-die "died") transactions are retried by the client with
  a fresh timestamp after a backoff.

The decisive difference from Calvin: here a transaction's locks are held
through two message round-trips *and* two log forces, and conflicting
transactions can deadlock-abort each other — exactly the contention
costs the deterministic ordering eliminates.
"""

from repro.baseline.cluster import BaselineCluster
from repro.baseline.locks import TwoPhaseLockTable
from repro.baseline.log import GroupCommitLog

__all__ = ["BaselineCluster", "GroupCommitLog", "TwoPhaseLockTable"]

"""Conventional strict-2PL lock table with wait-die deadlock avoidance.

Unlike Calvin's deterministic lock manager (requests arrive in the
agreed serial order, so conflicts just queue), here requests arrive in
whatever order the network produces them, so the table must prevent
deadlock: **wait-die** — an older transaction (smaller timestamp) may
wait for a younger holder; a younger requester *dies* (aborts) rather
than wait for an older one. Waits-for edges therefore always point from
older to younger and can never form a cycle; this holds globally because
every transaction carries one timestamp to all partitions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List

from repro.errors import SchedulerError
from repro.partition.partitioner import Key
from repro.scheduler.lockmanager import LockMode
from repro.sim.events import Event

GRANTED = "granted"
DIED = "died"


class _Waiter:
    __slots__ = ("ts", "mode", "event")

    def __init__(self, ts: int, mode: LockMode, event: Event):
        self.ts = ts
        self.mode = mode
        self.event = event


class _LockState:
    __slots__ = ("holders", "queue")

    def __init__(self) -> None:
        # ts -> mode for current holders (all READ, or one WRITE).
        self.holders: Dict[int, LockMode] = {}
        self.queue: Deque[_Waiter] = deque()


class TwoPhaseLockTable:
    """Per-partition lock table for the baseline system."""

    def __init__(self, sim):
        self.sim = sim
        self._locks: Dict[Key, _LockState] = {}
        # ts -> keys currently held (for release_all).
        self._held: Dict[int, List[Key]] = {}
        self.grants = 0
        self.deaths = 0
        self.waits = 0

    # -- acquisition ---------------------------------------------------------

    def acquire(self, ts: int, key: Key, mode: LockMode) -> Event:
        """Request one lock. The returned event succeeds with ``GRANTED``
        or ``DIED`` (wait-die abort) — it never blocks forever."""
        event = Event(self.sim)
        state = self._locks.setdefault(key, _LockState())

        if self._compatible(state, ts, mode):
            self._grant(state, ts, key, mode, event)
            return event

        conflicting = [
            holder_ts
            for holder_ts, holder_mode in state.holders.items()
            if holder_ts != ts and (mode is LockMode.WRITE or holder_mode is LockMode.WRITE)
        ]
        if any(ts > holder_ts for holder_ts in conflicting):
            # Younger than a conflicting holder: die immediately.
            self.deaths += 1
            event.succeed(DIED)
            if not state.holders and not state.queue:
                del self._locks[key]
            return event
        self.waits += 1
        state.queue.append(_Waiter(ts, mode, event))
        return event

    def _compatible(self, state: _LockState, ts: int, mode: LockMode) -> bool:
        if not state.holders:
            # Joining an empty lock still queues behind waiters (fairness
            # is handled at release; empty-with-queue only occurs
            # transiently inside release processing).
            return not state.queue
        if ts in state.holders:
            # Re-entrant upgrade requests are not supported; callers
            # request WRITE first for read-write keys.
            raise SchedulerError(f"transaction {ts} already holds this lock")
        if mode is LockMode.READ and state.queue:
            # Readers don't jump over queued writers (prevents writer
            # starvation; also keeps wait-die analysis per-holder only).
            return False
        return mode is LockMode.READ and all(
            held is LockMode.READ for held in state.holders.values()
        )

    def _grant(
        self, state: _LockState, ts: int, key: Key, mode: LockMode, event: Event
    ) -> None:
        state.holders[ts] = mode
        self._held.setdefault(ts, []).append(key)
        self.grants += 1
        event.succeed(GRANTED)

    # -- release ---------------------------------------------------------------

    def release_all(self, ts: int) -> None:
        """Release every lock ``ts`` holds; wake or kill waiters."""
        for key in self._held.pop(ts, []):
            state = self._locks.get(key)
            if state is None or ts not in state.holders:
                raise SchedulerError(f"{ts} does not hold lock on {key!r}")
            del state.holders[ts]
            self._promote(state, key)
            if not state.holders and not state.queue:
                self._locks.pop(key, None)

    def _promote(self, state: _LockState, key: Key) -> None:
        # Grant the longest-waiting compatible prefix of the queue.
        while state.queue:
            waiter = state.queue[0]
            if state.holders:
                if waiter.mode is LockMode.WRITE or any(
                    held is LockMode.WRITE for held in state.holders.values()
                ):
                    break
            state.queue.popleft()
            self._grant(state, waiter.ts, key, waiter.mode, waiter.event)
        # Re-apply wait-die to the remaining waiters against the new
        # holders (a waiter may now be younger than a new holder).
        if state.queue and state.holders:
            survivors: Deque[_Waiter] = deque()
            for waiter in state.queue:
                conflicting = [
                    holder_ts
                    for holder_ts, held in state.holders.items()
                    if waiter.mode is LockMode.WRITE or held is LockMode.WRITE
                ]
                if any(waiter.ts > holder_ts for holder_ts in conflicting):
                    self.deaths += 1
                    waiter.event.succeed(DIED)
                else:
                    survivors.append(waiter)
            state.queue = survivors

    # -- introspection ------------------------------------------------------------

    def held_by(self, ts: int) -> List[Key]:
        return list(self._held.get(ts, ()))

    @property
    def active_locks(self) -> int:
        return len(self._locks)

"""The fault injector: drives a :class:`FaultPlan` against a live cluster.

The injector is a privileged sim-side process with three hooks:

- **network**: it installs itself as the network's ``fault_filter`` and
  decides, per send, whether the message is dropped, held (partitions
  and paused nodes buffer traffic TCP-style), delayed, or duplicated;
- **kernel**: node crash/pause suspend the node's owner-tagged timers
  (``Simulator.suspend_owner``), restart/resume replays them;
- **disk**: disk windows install a :class:`DiskFaultMode` on the node's
  simulated device.

All randomness comes from one named RNG stream derived from the cluster
seed and the plan name, so a (seed, plan) pair replays bit-identically.
The injector keeps a structured :attr:`trace` of everything it did;
:meth:`trace_digest` hashes it for determinism regression tests.

Optionally a monitor runs *during* the run (``monitor_interval``),
re-checking the live invariants from :mod:`repro.core.checkers` —
epoch-gap freedom, no double-apply, and committed-prefix replica
consistency — so that a fault that corrupts state fails fast at the
moment of corruption, not at end-of-run.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.errors import ConfigError
from repro.faults.plan import CRASH, DISK, FaultEvent, FaultPlan, LINK, PARTITION, PAUSE
from repro.sim.network import DELIVER, DeliveryVerdict
from repro.storage.disk import DiskFaultMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cluster import CalvinCluster


class _LinkWindow:
    """One active link-fault window (already begun, not yet ended)."""

    def __init__(self, event: FaultEvent):
        _tag, self.src_site, self.dst_site = event.target
        self.drop = event.param("drop", 0.0)
        self.delay = event.param("delay", 0.0)
        self.delay_jitter = event.param("delay_jitter", 0.0)
        self.duplicate = event.param("duplicate", 0.0)

    def matches(self, src_site: int, dst_site: int) -> bool:
        return (self.src_site is None or self.src_site == src_site) and (
            self.dst_site is None or self.dst_site == dst_site
        )


class _PartitionCut:
    """One active network partition between two site groups."""

    def __init__(self, event: FaultEvent):
        _tag, group_a, group_b = event.target
        self.group_a = frozenset(group_a)
        self.group_b = frozenset(group_b)
        self.mode = event.param("mode", "buffer")
        self.held: List[Tuple[Any, Any, Any, int]] = []

    def severs(self, src_site: int, dst_site: int) -> bool:
        return (src_site in self.group_a and dst_site in self.group_b) or (
            src_site in self.group_b and dst_site in self.group_a
        )


class FaultInjector:
    """Installs and executes a fault plan on a cluster."""

    def __init__(
        self,
        cluster: "CalvinCluster",
        plan: FaultPlan,
        monitor_interval: Optional[float] = None,
    ):
        plan.validate(cluster.config.num_replicas, cluster.config.num_partitions)
        self.cluster = cluster
        self.plan = plan
        self.sim = cluster.sim
        self.network = cluster.network
        self.rng = cluster.rngs.stream("faults", plan.name)
        self.monitor_interval = monitor_interval
        self.monitor_checks = 0

        self.trace: List[Tuple[Any, ...]] = []
        self._links: List[_LinkWindow] = []
        self._cuts: List[_PartitionCut] = []
        # Paused node addresses -> held (src, dst, message, size) in order.
        self._paused: Dict[Any, List[Tuple[Any, Any, Any, int]]] = {}
        self._installed = False

    # -- installation ---------------------------------------------------

    def install(self) -> "FaultInjector":
        """Claim the network hook and schedule every plan event."""
        if self._installed:
            return self
        if self.network.fault_filter is not None:
            raise ConfigError("network already has a fault filter installed")
        self._installed = True
        self.network.fault_filter = self._filter
        for event in self.plan.events:
            self.sim.schedule_at(event.at, self._begin, event)
            if event.until is not None:
                self.sim.schedule_at(event.until, self._end, event)
        if self.monitor_interval is not None:
            self.sim.schedule(self.monitor_interval, self._monitor_tick)
        return self

    # -- plan execution -------------------------------------------------

    def _nodes_matching(self, target):
        _tag, replica, partition = target
        for node_id, node in sorted(self.cluster.nodes.items()):
            if replica is not None and node_id.replica != replica:
                continue
            if partition is not None and node_id.partition != partition:
                continue
            yield node

    def _record(self, *entry: Any) -> None:
        self.trace.append((round(self.sim.now, 9),) + entry)

    def _begin(self, event: FaultEvent) -> None:
        if event.kind == CRASH:
            for node in self._nodes_matching(event.target):
                self._record("crash", (node.node_id.replica, node.node_id.partition))
                node.crash()
        elif event.kind == PAUSE:
            for node in self._nodes_matching(event.target):
                self._record("pause", (node.node_id.replica, node.node_id.partition))
                self._paused.setdefault(node.address, [])
                self.sim.suspend_owner(node.address)
        elif event.kind == LINK:
            self._record("link-on", event.target, event.params)
            self._links.append(_LinkWindow(event))
        elif event.kind == PARTITION:
            self._record("partition", event.target, event.params)
            self._cuts.append(_PartitionCut(event))
        elif event.kind == DISK:
            mode = DiskFaultMode(
                latency_multiplier=event.param("latency_multiplier", 1.0),
                extra_latency=event.param("extra_latency", 0.0),
                torn_io_prob=event.param("torn_io_prob", 0.0),
            )
            for node in self._nodes_matching(event.target):
                if node.engine.disk is not None:
                    self._record("disk-on", (node.node_id.replica, node.node_id.partition), event.params)
                    node.engine.disk.set_fault_mode(mode)

    def _end(self, event: FaultEvent) -> None:
        if event.kind == CRASH:
            for node in self._nodes_matching(event.target):
                self._record("restart", (node.node_id.replica, node.node_id.partition))
                self.cluster.restart_node(
                    node.node_id.replica,
                    node.node_id.partition,
                    resync=event.param("resync", True),
                )
        elif event.kind == PAUSE:
            for node in self._nodes_matching(event.target):
                self._record("resume", (node.node_id.replica, node.node_id.partition))
                self.sim.resume_owner(node.address)
                self._flush(self._paused.pop(node.address, []))
        elif event.kind == LINK:
            self._record("link-off", event.target)
            self._links = [w for w in self._links if w is not self._window_of(event)]
        elif event.kind == PARTITION:
            cut = self._cut_of(event)
            self._record("heal", event.target, len(cut.held) if cut else 0)
            if cut is not None:
                self._cuts.remove(cut)
                self._flush(cut.held)
        elif event.kind == DISK:
            for node in self._nodes_matching(event.target):
                if node.engine.disk is not None:
                    self._record("disk-off", (node.node_id.replica, node.node_id.partition))
                    node.engine.disk.set_fault_mode(None)

    def _window_of(self, event: FaultEvent) -> Optional[_LinkWindow]:
        for window in self._links:
            if (window.src_site, window.dst_site) == event.target[1:] and (
                window.drop,
                window.delay,
                window.delay_jitter,
                window.duplicate,
            ) == (
                event.param("drop", 0.0),
                event.param("delay", 0.0),
                event.param("delay_jitter", 0.0),
                event.param("duplicate", 0.0),
            ):
                return window
        return None

    def _cut_of(self, event: FaultEvent) -> Optional[_PartitionCut]:
        _tag, group_a, group_b = event.target
        for cut in self._cuts:
            if cut.group_a == frozenset(group_a) and cut.group_b == frozenset(group_b):
                return cut
        return None

    def _flush(self, held: List[Tuple[Any, Any, Any, int]]) -> None:
        """Re-send buffered messages in original order (they re-enter the
        filter, so traffic into a still-active fault is re-held)."""
        for src, dst, message, size in held:
            self.network.send(src, dst, message, size)

    # -- the network hook ------------------------------------------------

    def _filter(self, now, src, dst, message, size) -> DeliveryVerdict:
        # 1. Paused endpoints buffer their traffic, both directions.
        for address in (dst, src):
            held = self._paused.get(address)
            if held is not None:
                held.append((src, dst, message, size))
                self._record("hold", type(message).__name__, repr(src), repr(dst))
                return DeliveryVerdict(hold=True)
        site_of = self.network.topology.site_of
        src_site, dst_site = site_of(src), site_of(dst)
        # 2. Partitions sever the cut (buffering or dropping).
        for cut in self._cuts:
            if cut.severs(src_site, dst_site):
                if cut.mode == "buffer":
                    cut.held.append((src, dst, message, size))
                    self._record("hold", type(message).__name__, repr(src), repr(dst))
                    return DeliveryVerdict(hold=True)
                self._record("drop", type(message).__name__, repr(src), repr(dst))
                return DeliveryVerdict(drop=True)
        # 3. Link windows: probabilistic drop / delay / duplicate.
        extra_delay, copies = 0.0, 1
        for window in self._links:
            if not window.matches(src_site, dst_site):
                continue
            if window.drop > 0 and self.rng.random() < window.drop:
                self._record("drop", type(message).__name__, repr(src), repr(dst))
                return DeliveryVerdict(drop=True)
            if window.delay > 0 or window.delay_jitter > 0:
                extra_delay += window.delay + (
                    self.rng.uniform(0.0, window.delay_jitter)
                    if window.delay_jitter > 0
                    else 0.0
                )
            if window.duplicate > 0 and self.rng.random() < window.duplicate:
                copies += 1
        if extra_delay > 0 or copies > 1:
            self._record(
                "mangle", type(message).__name__, repr(src), repr(dst),
                round(extra_delay, 9), copies,
            )
            return DeliveryVerdict(extra_delay=extra_delay, copies=copies)
        return DELIVER

    # -- live invariant monitoring ----------------------------------------

    def _monitor_tick(self) -> None:
        from repro.core import checkers

        checkers.check_epoch_contiguity(self.cluster)
        checkers.check_no_double_apply(self.cluster)
        checkers.check_no_lost_commits(self.cluster)
        checkers.check_replica_prefix_consistency(self.cluster)
        self.monitor_checks += 1
        self.sim.schedule(self.monitor_interval, self._monitor_tick)

    # -- reproducibility -------------------------------------------------

    def trace_digest(self) -> str:
        """Stable hash of everything the injector did this run."""
        payload = repr(self.trace).encode()
        return hashlib.sha256(payload).hexdigest()

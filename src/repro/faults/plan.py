"""The declarative fault schedule.

A plan is a validated list of :class:`FaultEvent` entries, each with a
start time, an optional window end, a target selector, and parameters.
Plans are built through the fluent helpers (:meth:`FaultPlan.crash`,
:meth:`FaultPlan.partition_sites`, ...) so that every benchmark, test,
and CLI entry point describes failures in the same vocabulary instead
of hand-rolling ``sim.schedule_at`` callbacks.

Times are in seconds of virtual time. Link faults address *sites*
(replica datacenters) or concrete node coordinates; ``None`` in a
selector slot is a wildcard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Tuple

from repro.errors import ConfigError

# Fault kinds, one vocabulary for the whole repo.
CRASH = "crash"              # fail-stop a node (lossy); optional restart
PAUSE = "pause"              # stall a node; its traffic is held, not lost
LINK = "link"                # per-link drop/delay/duplicate window
PARTITION = "partition"      # split site groups; buffer or drop across the cut
DISK = "disk"                # disk latency spike / torn-I/O window

KINDS = (CRASH, PAUSE, LINK, PARTITION, DISK)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault.

    ``at`` is when the fault begins; ``until`` (where meaningful) is when
    it ends — a crashed node restarts, a partition heals, a link window
    or disk degradation clears. ``until=None`` means the fault persists
    to the end of the run.
    """

    kind: str
    at: float
    until: Optional[float] = None
    target: Tuple[Any, ...] = ()
    params: Tuple[Tuple[str, Any], ...] = ()

    def param(self, name: str, default: Any = None) -> Any:
        return dict(self.params).get(name, default)

    def validate(self) -> None:
        if self.kind not in KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}")
        if self.at < 0:
            raise ConfigError(f"fault start must be >= 0 (got {self.at})")
        if self.until is not None and self.until <= self.at:
            raise ConfigError(
                f"fault window must end after it starts ({self.at} .. {self.until})"
            )


def _params(**kwargs: Any) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(kwargs.items()))


class FaultPlan:
    """An ordered, validated collection of fault events."""

    def __init__(self, events: Iterable[FaultEvent] = (), name: str = "adhoc"):
        self.name = name
        self._events: List[FaultEvent] = list(events)

    # -- builders -------------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        event.validate()
        self._events.append(event)
        return self

    def crash(
        self,
        at: float,
        replica: int,
        partition: Optional[int] = None,
        until: Optional[float] = None,
        resync: bool = True,
    ) -> "FaultPlan":
        """Fail-stop node(s) at ``at``; restart (and resync) at ``until``.

        ``partition=None`` crashes every node of the replica (a whole
        datacenter, as in experiment E8). Messages to and from a crashed
        node are lost; a restarted node re-learns missed input-log
        entries from a healthy peer when ``resync`` is set.
        """
        return self.add(
            FaultEvent(CRASH, at, until, ("node", replica, partition),
                       _params(resync=resync))
        )

    def pause(
        self,
        at: float,
        replica: int,
        partition: Optional[int] = None,
        until: Optional[float] = None,
    ) -> "FaultPlan":
        """Stall node(s): incoming traffic is buffered (TCP retransmit
        semantics) and delivered when the node resumes, outgoing timers
        freeze. Models a GC pause / overloaded VM rather than a crash."""
        return self.add(FaultEvent(PAUSE, at, until, ("node", replica, partition)))

    def link_faults(
        self,
        at: float,
        until: Optional[float] = None,
        src_site: Optional[int] = None,
        dst_site: Optional[int] = None,
        drop: float = 0.0,
        delay: float = 0.0,
        delay_jitter: float = 0.0,
        duplicate: float = 0.0,
    ) -> "FaultPlan":
        """A lossy/laggy/duplicating window on matching directed links.

        ``drop``/``duplicate`` are per-message probabilities; ``delay``
        (plus uniform ``delay_jitter``) is added after the FIFO clamp, so
        delayed messages can arrive out of order. Site ``None`` matches
        any site.
        """
        for name, prob in (("drop", drop), ("duplicate", duplicate)):
            if not 0.0 <= prob <= 1.0:
                raise ConfigError(f"{name} probability must be in [0, 1]")
        if delay < 0 or delay_jitter < 0:
            raise ConfigError("delay and delay_jitter must be >= 0")
        return self.add(
            FaultEvent(
                LINK,
                at,
                until,
                ("site", src_site, dst_site),
                _params(drop=drop, delay=delay, delay_jitter=delay_jitter,
                        duplicate=duplicate),
            )
        )

    def partition_sites(
        self,
        at: float,
        group_a: Iterable[int],
        group_b: Iterable[int],
        until: Optional[float] = None,
        mode: str = "buffer",
    ) -> "FaultPlan":
        """Split the network between two site groups until it heals.

        ``mode="buffer"`` holds messages crossing the cut and delivers
        them at heal time (what TCP retransmission converges to for
        partitions shorter than its timeouts); ``mode="drop"`` loses
        them outright.
        """
        if mode not in ("buffer", "drop"):
            raise ConfigError(f"partition mode must be buffer|drop, got {mode!r}")
        a, b = tuple(sorted(set(group_a))), tuple(sorted(set(group_b)))
        if not a or not b:
            raise ConfigError("both partition groups must be non-empty")
        overlap = sorted(set(a) & set(b))
        if overlap:
            raise ConfigError(f"partition groups overlap: {overlap}")
        return self.add(
            FaultEvent(PARTITION, at, until, ("sites", a, b), _params(mode=mode))
        )

    def disk_fault(
        self,
        at: float,
        until: Optional[float] = None,
        replica: Optional[int] = None,
        partition: Optional[int] = None,
        latency_multiplier: float = 1.0,
        extra_latency: float = 0.0,
        torn_io_prob: float = 0.0,
    ) -> "FaultPlan":
        """Degrade matching nodes' disks: latency spike and/or torn I/O
        (checksum-failed accesses that are retried). No-op on nodes
        without a disk tier."""
        if latency_multiplier <= 0:
            raise ConfigError("latency_multiplier must be > 0")
        if extra_latency < 0:
            raise ConfigError("extra_latency must be >= 0")
        if not 0.0 <= torn_io_prob < 1.0:
            raise ConfigError("torn_io_prob must be in [0, 1)")
        return self.add(
            FaultEvent(
                DISK,
                at,
                until,
                ("node", replica, partition),
                _params(latency_multiplier=latency_multiplier,
                        extra_latency=extra_latency, torn_io_prob=torn_io_prob),
            )
        )

    # -- introspection --------------------------------------------------

    @property
    def events(self) -> List[FaultEvent]:
        return sorted(self._events, key=lambda e: (e.at, KINDS.index(e.kind)))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self.events)

    def horizon(self) -> float:
        """Latest time the plan mentions (0.0 for an empty plan)."""
        times = [e.at for e in self._events]
        times += [e.until for e in self._events if e.until is not None]
        return max(times, default=0.0)

    def validate(self, num_replicas: int, num_partitions: int) -> None:
        """Check every event's coordinates against a cluster shape."""
        for event in self._events:
            event.validate()
            kind, target = event.kind, event.target
            if kind in (CRASH, PAUSE, DISK):
                _tag, replica, partition = target
                if replica is not None and not 0 <= replica < num_replicas:
                    raise ConfigError(f"{kind}: replica {replica} out of range")
                if partition is not None and not 0 <= partition < num_partitions:
                    raise ConfigError(f"{kind}: partition {partition} out of range")
            elif kind == PARTITION:
                _tag, group_a, group_b = target
                for site in (*group_a, *group_b):
                    if not 0 <= site < num_replicas:
                        raise ConfigError(f"partition: site {site} out of range")

    def describe(self) -> str:
        lines = [f"FaultPlan {self.name!r} ({len(self._events)} events):"]
        for event in self.events:
            window = f"..{event.until:.3f}" if event.until is not None else ".."
            lines.append(
                f"  t={event.at:.3f}{window} {event.kind} "
                f"target={event.target} {dict(event.params)}"
            )
        return "\n".join(lines)

"""Deterministic, seed-driven fault injection for the simulated cluster.

A :class:`FaultPlan` is a declarative schedule of adversarial events —
node crashes and restarts, per-link message drop/delay/duplication,
site-level network partitions (with TCP-style buffering or outright
loss), and disk degradation (latency spikes, torn I/O). A
:class:`FaultInjector` installs the plan into a
:class:`~repro.core.cluster.CalvinCluster` via hooks in the simulation
kernel (owner suspension), the network (per-send fault filter), and the
simulated disk (fault modes).

Everything is driven off the cluster's named RNG streams, so a given
(seed, plan) pair replays the identical fault schedule event-for-event:
chaos runs are reproducible and shrinkable. See docs/fault_injection.md.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.profiles import (
    FAULT_PROFILES,
    build_profile,
    random_plan,
    register_profile,
)

__all__ = [
    "FAULT_PROFILES",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "build_profile",
    "random_plan",
    "register_profile",
]

"""Named fault profiles and the seeded random-plan generator.

A profile is a function ``(config, duration) -> FaultPlan`` registered
under a name, so benchmarks, tests, and the CLI can say
``fault_profile="chaos-mix"`` instead of hand-building schedules.
``random_plan`` draws a structurally valid plan from an RNG — the
substrate of the property-based chaos tests: any plan it returns, run
under any seed, must leave every invariant green.

Profiles only schedule faults the cluster can *survive* end-to-end
(pauses, buffered partitions, crash+restart of non-input replicas, disk
degradation). Unsurvivable faults — unhealed lossy links, permanent
crashes — remain expressible through the FaultPlan API for experiments
like E8 that assert graceful stalls rather than recovery.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, TYPE_CHECKING

from repro.errors import ConfigError
from repro.faults.plan import FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ClusterConfig

ProfileFn = Callable[["ClusterConfig", float], FaultPlan]

FAULT_PROFILES: Dict[str, ProfileFn] = {}


def register_profile(name: str) -> Callable[[ProfileFn], ProfileFn]:
    def deco(fn: ProfileFn) -> ProfileFn:
        FAULT_PROFILES[name] = fn
        return fn

    return deco


def build_profile(name: str, config: "ClusterConfig", duration: float) -> FaultPlan:
    """Instantiate the named profile for a cluster shape and run length."""
    try:
        builder = FAULT_PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown fault profile {name!r}; known: {sorted(FAULT_PROFILES)}"
        ) from None
    plan = builder(config, duration)
    plan.name = name
    return plan


@register_profile("replica-crash")
def _replica_crash(config: "ClusterConfig", duration: float) -> FaultPlan:
    """Crash a whole non-input replica mid-run, restart + resync later."""
    if config.num_replicas < 2:
        raise ConfigError("replica-crash profile needs >= 2 replicas")
    plan = FaultPlan(name="replica-crash")
    plan.crash(at=duration * 0.3, replica=1, until=duration * 0.6, resync=True)
    return plan


@register_profile("node-pause")
def _node_pause(config: "ClusterConfig", duration: float) -> FaultPlan:
    """Stall one input node (GC-pause style); traffic buffers and replays."""
    plan = FaultPlan(name="node-pause")
    plan.pause(at=duration * 0.25, replica=0, partition=0, until=duration * 0.45)
    return plan


@register_profile("site-partition")
def _site_partition(config: "ClusterConfig", duration: float) -> FaultPlan:
    """Cut one replica site off the WAN for a while, then heal."""
    if config.num_replicas < 2:
        raise ConfigError("site-partition profile needs >= 2 replicas")
    plan = FaultPlan(name="site-partition")
    others = list(range(1, config.num_replicas))
    plan.partition_sites(
        at=duration * 0.3, group_a=[0], group_b=others, until=duration * 0.55,
        mode="buffer",
    )
    return plan


@register_profile("flaky-links")
def _flaky_links(config: "ClusterConfig", duration: float) -> FaultPlan:
    """Delay-and-duplicate window on every link (no loss, so every
    protocol converges once the window closes)."""
    plan = FaultPlan(name="flaky-links")
    plan.link_faults(
        at=duration * 0.2, until=duration * 0.6,
        delay=config.epoch_duration * 0.5,
        delay_jitter=config.epoch_duration * 0.5,
        duplicate=0.10,
    )
    return plan


@register_profile("disk-storm")
def _disk_storm(config: "ClusterConfig", duration: float) -> FaultPlan:
    """Latency spike + torn I/O on every disk for the middle of the run."""
    plan = FaultPlan(name="disk-storm")
    plan.disk_fault(
        at=duration * 0.25, until=duration * 0.75,
        latency_multiplier=4.0, torn_io_prob=0.2,
    )
    return plan


@register_profile("chaos-mix")
def _chaos_mix(config: "ClusterConfig", duration: float) -> FaultPlan:
    """The acceptance scenario: crash + partition + disk faults in one run.

    With one replica the crash/partition legs degrade to a node pause
    (the only node-level fault a single-replica cluster survives).
    """
    plan = FaultPlan(name="chaos-mix")
    if config.num_replicas >= 2:
        plan.crash(at=duration * 0.20, replica=1, until=duration * 0.45, resync=True)
        plan.partition_sites(
            at=duration * 0.55, group_a=[0],
            group_b=list(range(1, config.num_replicas)),
            until=duration * 0.70, mode="buffer",
        )
    else:
        plan.pause(at=duration * 0.20, replica=0, partition=0, until=duration * 0.40)
    plan.disk_fault(
        at=duration * 0.30, until=duration * 0.80,
        latency_multiplier=3.0, torn_io_prob=0.15,
    )
    plan.link_faults(
        at=duration * 0.60, until=duration * 0.85,
        delay=config.epoch_duration * 0.3, duplicate=0.05,
    )
    return plan


def random_plan(
    rng: random.Random,
    config: "ClusterConfig",
    duration: float,
    max_faults: int = 4,
) -> FaultPlan:
    """Draw a random *survivable* plan: every fault heals before
    ``duration`` and only targets the cluster can recover from are hit.

    Used by the property-based chaos suite: for any (rng, shape) the
    returned plan must preserve serializability, replica consistency,
    and determinism.
    """
    plan = FaultPlan(name=f"random-{rng.randrange(1 << 30)}")
    kinds = ["pause", "disk", "flaky"]
    if config.num_replicas >= 2:
        kinds += ["crash", "partition"]
    for _ in range(rng.randint(1, max_faults)):
        kind = rng.choice(kinds)
        start = rng.uniform(0.1, 0.5) * duration
        end = start + rng.uniform(0.1, 0.4) * duration
        if kind == "pause":
            plan.pause(
                at=start,
                replica=rng.randrange(config.num_replicas),
                partition=rng.randrange(config.num_partitions),
                until=end,
            )
        elif kind == "crash":
            plan.crash(
                at=start,
                replica=rng.randrange(1, config.num_replicas),
                partition=rng.randrange(config.num_partitions),
                until=end,
                resync=True,
            )
        elif kind == "partition":
            cut = rng.randrange(1, config.num_replicas)
            group_a = list(range(cut))
            group_b = list(range(cut, config.num_replicas))
            plan.partition_sites(at=start, group_a=group_a, group_b=group_b,
                                 until=end, mode="buffer")
        elif kind == "disk":
            plan.disk_fault(
                at=start, until=end,
                latency_multiplier=rng.uniform(1.5, 6.0),
                torn_io_prob=rng.uniform(0.0, 0.3),
            )
        elif kind == "flaky":
            plan.link_faults(
                at=start, until=end,
                delay=rng.uniform(0.0, 0.005),
                delay_jitter=rng.uniform(0.0, 0.005),
                duplicate=rng.uniform(0.0, 0.2),
            )
    return plan

"""A Multi-Paxos group member: proposer + acceptor + learner in one object.

Each participant lives on one node and talks to its peers through the
simulated network via a ``send(dst_member_id, message)`` function the
host node provides. ``member_id`` values are small integers (the replica
index in the sequencer's use). Chosen values are delivered to
``on_decide(instance, value)`` strictly in instance order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import PaxosError
from repro.paxos.messages import Accept, Accepted, Ballot, Learn, Nack, Prepare, Promise

SendFn = Callable[[int, Any], None]
DecideFn = Callable[[int, Any], None]


class _NoOp:
    """Filler value proposed to close instance gaps left by deposed
    leaders; never delivered to the consumer."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<NOOP>"


NOOP = _NoOp()


class PaxosParticipant:
    """One member of a Multi-Paxos group."""

    def __init__(
        self,
        sim,
        member_id: int,
        group: List[int],
        send: SendFn,
        on_decide: DecideFn,
        is_initial_leader: bool = False,
    ):
        if member_id not in group:
            raise PaxosError(f"member {member_id} not in group {group}")
        self.sim = sim
        self.member_id = member_id
        self.group = sorted(group)
        self._send = send
        self._on_decide = on_decide

        # --- acceptor state ---
        self.promised: Ballot = (0, -1)
        self.accepted: Dict[int, Tuple[Ballot, Any]] = {}

        # --- proposer state ---
        self.leading = False
        self._electing = False
        self.ballot: Ballot = (0, member_id)
        self._next_instance = 0
        self._queue: List[Any] = []
        self._retry_pending = False
        self._election_attempts = 0
        # instance -> {"value": v, "acks": set of member ids, "chosen": bool}
        self._inflight: Dict[int, Dict[str, Any]] = {}
        self._promises: Dict[int, Promise] = {}

        # --- learner state ---
        self.chosen: Dict[int, Any] = {}
        self._deliver_cursor = 0

        self.decided_count = 0
        # Protocol tallies (exposed through register_metrics).
        self.elections_started = 0
        self.accepts_sent = 0
        self.nacks_received = 0
        self.step_downs = 0
        if is_initial_leader:
            self._start_election()

    # -- public API -----------------------------------------------------

    def propose(self, value: Any) -> None:
        """Submit a value for agreement (order of delivery = proposal order
        while leadership is stable)."""
        if self.leading:
            self._phase2(value)
        else:
            self._queue.append(value)
            if not self._electing:
                self._start_election()

    def handle(self, src: int, message: Any) -> None:
        """Route an incoming Paxos message from group member ``src``."""
        if isinstance(message, Prepare):
            self._on_prepare(src, message)
        elif isinstance(message, Promise):
            self._on_promise(src, message)
        elif isinstance(message, Accept):
            self._on_accept(src, message)
        elif isinstance(message, Accepted):
            self._on_accepted(src, message)
        elif isinstance(message, Nack):
            self._on_nack(message)
        elif isinstance(message, Learn):
            self._on_learn(message)
        else:
            raise PaxosError(f"unexpected paxos message: {message!r}")

    @property
    def majority(self) -> int:
        return len(self.group) // 2 + 1

    def retransmit_to(self, member: int) -> int:
        """Re-send protocol state to a rejoined peer (recovery hook).

        The simulated network has no retransmission layer, so a member
        that was deaf for a while has simply lost traffic; in a group
        whose majority needs that member (e.g. 2 of 2), agreement then
        stalls forever. Everything re-sent here is idempotent at the
        receiver: Learns re-deliver chosen values, Accepts re-solicit
        the Accepted replies the leader is still waiting for, a Prepare
        re-solicits the Promise of an in-progress election. Returns the
        number of messages sent.
        """
        sent = 0
        for instance in sorted(self.chosen):
            self._send(member, Learn(instance, self.chosen[instance]))
            sent += 1
        if self.leading:
            for instance in sorted(self._inflight):
                entry = self._inflight[instance]
                if not entry["chosen"]:
                    self._send(member, Accept(self.ballot, instance, entry["value"]))
                    sent += 1
        elif self._electing:
            self._send(member, Prepare(self.ballot, from_instance=self._deliver_cursor))
            sent += 1
        return sent

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose protocol tallies as gauges in ``registry``."""
        registry.gauge(f"{prefix}.decided", lambda: self.decided_count)
        registry.gauge(f"{prefix}.elections", lambda: self.elections_started)
        registry.gauge(f"{prefix}.accepts_sent", lambda: self.accepts_sent)
        registry.gauge(f"{prefix}.nacks_received", lambda: self.nacks_received)
        registry.gauge(f"{prefix}.step_downs", lambda: self.step_downs)
        registry.gauge(f"{prefix}.leading", lambda: 1.0 if self.leading else 0.0)

    # -- proposer ---------------------------------------------------------

    def _start_election(self) -> None:
        self.elections_started += 1
        self._electing = True
        self.leading = False
        self.ballot = (self.ballot[0] + 1, self.member_id)
        self._promises = {}
        prepare = Prepare(self.ballot, from_instance=self._deliver_cursor)
        for member in self.group:
            self._send(member, prepare)

    def _on_promise(self, src: int, promise: Promise) -> None:
        if promise.ballot != self.ballot or not self._electing:
            return
        self._promises[src] = promise
        if len(self._promises) < self.majority:
            return
        self._electing = False
        self.leading = True
        # Never assign new values below what we already know is decided
        # (everything under the delivery cursor, plus any chosen-ahead
        # instances) — a fresh leader's counter starts at zero otherwise.
        horizon = max([self._deliver_cursor] + [i + 1 for i in self.chosen])
        self._next_instance = max(self._next_instance, horizon)
        # Re-propose the highest-ballot accepted value for every instance
        # any promiser reported (classic Phase 1 value selection).
        carried: Dict[int, Tuple[Ballot, Any]] = {}
        for promise_msg in self._promises.values():
            for instance, (ballot, value) in promise_msg.accepted.items():
                if instance not in carried or ballot > carried[instance][0]:
                    carried[instance] = (ballot, value)
        for instance in sorted(carried):
            if instance not in self.chosen and instance not in self._inflight:
                self._phase2(carried[instance][1], instance=instance)
        # Fill any remaining holes below our instance horizon with no-ops
        # so the in-order learners can make progress past abandoned
        # instances of deposed leaderships.
        for instance in range(self._deliver_cursor, self._next_instance):
            if (
                instance not in self.chosen
                and instance not in carried
                and instance not in self._inflight
            ):
                self._phase2(NOOP, instance=instance)
        queued, self._queue = self._queue, []
        for value in queued:
            self._phase2(value)

    def _phase2(self, value: Any, instance: Optional[int] = None) -> None:
        if instance is None:
            instance = self._next_instance
        self._next_instance = max(self._next_instance, instance + 1)
        self._inflight[instance] = {"value": value, "acks": set(), "chosen": False}
        self.accepts_sent += 1
        accept = Accept(self.ballot, instance, value)
        for member in self.group:
            self._send(member, accept)

    def _on_accepted(self, src: int, message: Accepted) -> None:
        if message.ballot != self.ballot:
            return
        entry = self._inflight.get(message.instance)
        if entry is None or entry["chosen"]:
            return
        entry["acks"].add(src)
        if len(entry["acks"]) >= self.majority:
            entry["chosen"] = True
            # Real progress under our leadership: contention (if any)
            # has resolved in our favour, so reset the election backoff.
            self._election_attempts = 0
            learn = Learn(message.instance, entry["value"])
            for member in self.group:
                self._send(member, learn)
            del self._inflight[message.instance]

    def _on_nack(self, message: Nack) -> None:
        self.nacks_received += 1
        if message.ballot != self.ballot:
            return
        self.ballot = (max(self.ballot[0], message.promised[0]), self.member_id)
        self._step_down()

    def _step_down(self) -> None:
        """Leadership contested or lost: requeue unchosen in-flight
        values and retry Phase 1 later with a higher round.

        The retry backoff is member-specific and grows exponentially
        until some proposal of ours is actually chosen — that lets one
        side's election (a WAN round trip) complete undisturbed and
        breaks duelling-proposer livelock. No-op hole fillers are NOT
        requeued: they are instance-specific, and whoever leads next
        re-fills holes as needed (requeuing them at fresh instances
        would mint new holes without bound).
        """
        self.step_downs += 1
        self.leading = False
        requeue = [
            self._inflight.pop(instance)["value"]
            for instance in sorted(self._inflight)
        ]
        self._queue = [v for v in requeue if not isinstance(v, _NoOp)] + self._queue
        self._electing = True
        if not self._retry_pending:
            self._retry_pending = True
            self._election_attempts += 1
            backoff = 0.002 * (1 + self.member_id) * min(2 ** self._election_attempts, 256)
            self.sim.schedule(backoff, self._retry_election)

    def _retry_election(self) -> None:
        self._retry_pending = False
        if self.leading:
            return
        if not self._queue and not self._inflight:
            # Nothing to propose: stay a follower instead of duelling
            # with whoever took leadership (prevents election livelock).
            self._electing = False
            return
        self._start_election()

    # -- acceptor -----------------------------------------------------------

    def _on_prepare(self, src: int, message: Prepare) -> None:
        if message.ballot < self.promised:
            self._send(src, Nack(message.ballot, self.promised))
            return
        if src != self.member_id and message.ballot > self.ballot and self.leading:
            # Our co-located acceptor just promised a higher ballot to
            # someone else: we are deposed. Step down immediately rather
            # than discovering it one Nack per in-flight accept.
            self.ballot = (max(self.ballot[0], message.ballot[0]), self.member_id)
            self._step_down()
        self.promised = message.ballot
        relevant = {
            instance: entry
            for instance, entry in self.accepted.items()
            if instance >= message.from_instance
        }
        self._send(src, Promise(message.ballot, relevant))

    def _on_accept(self, src: int, message: Accept) -> None:
        if message.ballot < self.promised:
            self._send(src, Nack(message.ballot, self.promised))
            return
        self.promised = message.ballot
        self.accepted[message.instance] = (message.ballot, message.value)
        self._send(src, Accepted(message.ballot, message.instance))

    # -- learner ----------------------------------------------------------

    def _on_learn(self, message: Learn) -> None:
        existing = self.chosen.get(message.instance)
        if existing is not None and existing != message.value:
            raise PaxosError(
                f"safety violation: instance {message.instance} chosen twice "
                "with different values"
            )
        self.chosen[message.instance] = message.value
        # Duplicate suppression: if a value we still intend to propose
        # (queued, not yet bound to an instance) just got chosen — e.g.
        # it was accepted by a majority right before we lost leadership
        # and requeued it — drop our copy. In-flight entries are NOT
        # cancelled: acceptors may already hold them at our ballot, and
        # abandoning the instance would tempt us to propose a second
        # value at the same (ballot, instance) — a safety violation.
        # If a value does end up chosen at two instances, the consumer
        # (the sequencer's idempotent dispatch) drops the duplicate.
        if not isinstance(message.value, _NoOp):
            for index, queued in enumerate(self._queue):
                if queued == message.value:
                    del self._queue[index]
                    break
        # NOTE: acceptor state is deliberately NOT compacted on learn —
        # a future Phase 1 from a member that missed this Learn must
        # still be able to discover the accepted value through promises.
        while self._deliver_cursor in self.chosen:
            instance = self._deliver_cursor
            self._deliver_cursor += 1
            self.decided_count += 1
            value = self.chosen[instance]
            if not isinstance(value, _NoOp):
                self._on_decide(instance, value)
        # A quiescent leader with undelivered chosen instances above a
        # hole fills the hole with no-ops (deposed leaderships can leave
        # permanent gaps otherwise).
        if (
            self.leading
            and not self._inflight
            and not self._queue
            and self._deliver_cursor < self._next_instance
        ):
            for instance in range(self._deliver_cursor, self._next_instance):
                if instance not in self.chosen:
                    self._phase2(NOOP, instance=instance)

"""Multi-Paxos over the simulated network.

Calvin replicates *transaction inputs*: in "paxos" replication mode each
partition's sequencer batches are agreed upon by a Paxos group spanning
that partition's nodes across all replicas (geographically distant
sites). Because instances pipeline, agreement adds WAN round-trip
latency but does not reduce throughput — the claim experiment E6
measures.

The implementation is a classic Multi-Paxos: proposer/acceptor/learner
roles co-located on every group member, a leader lease established by
Phase 1 over an open-ended instance range, per-instance Phase 2, and
in-order delivery of chosen values to the consumer.
"""

from repro.paxos.messages import (
    Accept,
    Accepted,
    Ballot,
    Learn,
    Nack,
    Prepare,
    Promise,
)
from repro.paxos.participant import PaxosParticipant

__all__ = [
    "Accept",
    "Accepted",
    "Ballot",
    "Learn",
    "Nack",
    "PaxosParticipant",
    "Prepare",
    "Promise",
]

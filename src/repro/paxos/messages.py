"""Paxos wire protocol.

Ballots are ``(round, proposer_id)`` tuples — totally ordered and unique
per proposer, the standard construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

Ballot = Tuple[int, int]

_HEADER = 64
_VALUE_SIZE = 512  # a sequencer batch; refined by callers when known


@dataclass(frozen=True, slots=True)
class Prepare:
    """Phase 1a: proposer asks for promises from ``from_instance`` onward."""

    ballot: Ballot
    from_instance: int

    def size_estimate(self) -> int:
        return _HEADER


@dataclass(frozen=True, slots=True)
class Promise:
    """Phase 1b: acceptor promises; reports prior accepts >= from_instance."""

    ballot: Ballot
    accepted: Dict[int, Tuple[Ballot, Any]] = field(default_factory=dict)

    def size_estimate(self) -> int:
        return _HEADER + _VALUE_SIZE * len(self.accepted)


@dataclass(frozen=True, slots=True)
class Accept:
    """Phase 2a: proposer asks acceptors to accept ``value`` at ``instance``."""

    ballot: Ballot
    instance: int
    value: Any

    def size_estimate(self) -> int:
        return _HEADER + _VALUE_SIZE


@dataclass(frozen=True, slots=True)
class Accepted:
    """Phase 2b: acceptor accepted."""

    ballot: Ballot
    instance: int

    def size_estimate(self) -> int:
        return _HEADER


@dataclass(frozen=True, slots=True)
class Nack:
    """Rejection carrying the higher promised ballot (leadership lost)."""

    ballot: Ballot
    promised: Ballot

    def size_estimate(self) -> int:
        return _HEADER


@dataclass(frozen=True, slots=True)
class Learn:
    """Proposer → learners: ``value`` is chosen at ``instance``."""

    instance: int
    value: Any

    def size_estimate(self) -> int:
        return _HEADER + _VALUE_SIZE

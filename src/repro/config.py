"""Cluster configuration and the calibrated cost model.

The cost model is the bridge between the simulated cluster and the
paper's hardware: it states how much *worker time* each primitive
operation consumes and what the physical latencies are. It was
calibrated once — so that a single simulated machine sustains roughly
27 k single-partition microbenchmark transactions per second, the
published order of magnitude — and is then held fixed across every
experiment; no per-figure tuning.

Times are in seconds of virtual time throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.errors import ConfigError


@dataclass(frozen=True)
class CostModel:
    """Worker-time and device-latency costs of primitive operations."""

    # Per-transaction fixed worker cost (dispatch, context setup).
    txn_base_cpu: float = 80e-6
    # Per-record storage access costs (memory-resident tier).
    read_cpu: float = 8e-6
    write_cpu: float = 8e-6
    # Lock-manager thread cost per lock request / release pair.
    lock_request_cpu: float = 1.5e-6
    # Extra worker cost on each participant of a multipartition
    # transaction (building, serializing and parsing remote-read messages).
    multipartition_overhead_cpu: float = 500e-6
    # Worker cost of serving one incoming remote-read request.
    remote_read_serve_cpu: float = 100e-6
    # Sequencer cost per transaction (batch append, dispatch fan-out).
    sequencer_cpu_per_txn: float = 6e-6
    # Synchronous log force, used by the 2PC baseline at prepare/commit.
    log_force_latency: float = 1e-3
    # Simulated magnetic-disk access latency for cold records (Section 4).
    disk_latency_mean: float = 10e-3
    disk_latency_jitter: float = 2e-3
    disk_parallelism: int = 8
    # Checkpointing: worker cost to serialize one record into a checkpoint.
    checkpoint_record_cpu: float = 1.2e-6

    def validate(self) -> None:
        for name in (
            "txn_base_cpu",
            "read_cpu",
            "write_cpu",
            "lock_request_cpu",
            "multipartition_overhead_cpu",
            "remote_read_serve_cpu",
            "sequencer_cpu_per_txn",
            "log_force_latency",
            "disk_latency_mean",
            "checkpoint_record_cpu",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"cost model field {name} must be >= 0")
        if self.disk_parallelism < 1:
            raise ConfigError("disk_parallelism must be >= 1")


@dataclass(frozen=True)
class ClusterConfig:
    """Shape and behaviour of a simulated cluster.

    One *node* hosts one partition of one replica, exactly as in the
    paper's deployment (Figure 1): every node runs a sequencer, a
    scheduler, and a storage partition.
    """

    num_partitions: int = 4
    num_replicas: int = 1
    workers_per_node: int = 8
    # Execution engine driving the cluster (see repro.engines): "core"
    # is Calvin's deterministic scheduler, "baseline" the 2PL+2PC
    # comparison system, "star" the phase-switching engine. Clusters
    # built directly (CalvinCluster/BaselineCluster) ignore the field;
    # repro.engines.build_cluster and the CLI honour it.
    engine: str = "core"
    # Lock-manager threads per node. The paper uses one (requests are
    # strictly serialized); sharding the lock table by key preserves
    # determinism per key and lifts the admission ceiling — the
    # optimization explored in the deterministic-DB follow-up work.
    lock_manager_shards: int = 1
    epoch_duration: float = 0.010  # the paper's 10 ms epoch
    # "async" ships batches to peer replicas without waiting;
    # "paxos" runs Multi-Paxos over the replica sites before dispatch;
    # "none" disables replication (single-replica deployments).
    replication_mode: str = "none"
    # Unreplicated durability (paper Section 2): force each epoch's
    # input batch to a local log device before dispatching it. Batches
    # share group-commit flushes, so this costs ~1 log-force of latency
    # and no throughput. Ignored when replication provides durability.
    force_input_log: bool = False
    # WAN one-way latency between replica sites when num_replicas > 1.
    wan_latency: float = 0.05
    lan_latency: float = 0.0005
    lan_bandwidth: float = 125e6
    wan_bandwidth: float = 12.5e6
    # -- geo topology (see repro.geo and docs/geo.md) ---------------------
    # Named geo-topology preset ("chain", "ring", "mesh", "hub"): one
    # datacenter per replica, WAN links with the latency/bandwidth knobs
    # above, multi-hop routing and fair bandwidth sharing. None keeps
    # the flat point-to-point network (bit-identical event sequences).
    topology: Optional[str] = None
    # Partial replication: per-replica tuples of hosted partitions.
    # None = full replication (every replica hosts every partition).
    # Replica 0 must host everything (it is the system of record that
    # ships writesets for transactions straddling a peer's hosted set).
    partial_hosting: Optional[Tuple[Tuple[int, ...], ...]] = None
    # Where add_clients places input clients on a geo topology:
    #   "input"  — all at replica 0's datacenter (the input site),
    #   "spread" — client i in datacenter i % num_datacenters.
    client_placement: str = "input"
    seed: int = 2012
    costs: CostModel = field(default_factory=CostModel)
    # Disk-based storage (Section 4): if True, reads of cold keys go to
    # the simulated disk and the sequencer defers disk-bound transactions
    # by `disk_prefetch_delay` while issuing prefetch requests.
    disk_enabled: bool = False
    # Safety margin added on top of the (possibly erroneous) latency
    # estimate when deferring a disk-bound transaction.
    disk_prefetch_delay: float = 0.002
    # Relative error applied to the sequencer's disk-latency estimate;
    # 0.0 = perfect estimation (Section 4 sensitivity knob).
    disk_estimate_error: float = 0.0
    # Admission control in front of each input sequencer (open-loop
    # traffic): "none" disables it entirely (bit-for-bit identical to
    # the pre-admission behaviour); the other policies bound intake with
    # a queue of `admission_queue_capacity` drained at
    # `admission_epoch_budget` transactions per epoch and differ only in
    # what happens to a request that arrives while the queue is full:
    #   "queue"        — tail-drop silently (the client never hears back),
    #   "shed"         — reject immediately (TxnStatus.REJECTED reply),
    #   "backpressure" — reject with a deterministic retry-after hint.
    admission_policy: str = "none"
    admission_queue_capacity: int = 512
    # Max transactions admitted into each sequencing epoch per node;
    # required (>0) whenever admission_policy != "none". Capacity per
    # node is admission_epoch_budget / epoch_duration txns/sec.
    admission_epoch_budget: Optional[int] = None
    # Checkpointing mode: "none", "naive" (stop-the-world) or "zigzag".
    checkpoint_mode: str = "none"
    # Runtime determinism sanitizer: when True, every Simulator.run of
    # this cluster arms trip wires that raise DeterminismViolation if
    # simulated code touches the process-global RNG, the wall clock, or
    # host entropy (see repro.analysis.sanitizer). Zero effect on the
    # simulation itself — same seed produces bit-identical digests with
    # the flag on or off.
    sanitize: bool = False
    # Runtime footprint auditor: when True, replica-0 schedulers record
    # actual per-procedure key accesses and report declared-but-unused
    # (over-declared) and under-declared keys via audit.footprint.*
    # metrics (see repro.analysis.auditor). Pure bookkeeping — trace
    # digests are bit-identical with the flag on or off.
    audit_footprints: bool = False
    # Named fault profile (see repro.faults.profiles.FAULT_PROFILES) the
    # cluster instantiates at construction; None = no fault injection.
    fault_profile: Optional[str] = None
    # Virtual-time horizon the profile's schedule is stretched over —
    # should cover the measured run so every fault fires and heals.
    fault_horizon: float = 2.0
    # -- elastic reconfiguration (see repro.reconfig) ---------------------
    # Number of initially active partitions; None = every partition is
    # active from the start. When set below num_partitions, the
    # remaining partitions are pre-provisioned spares: their nodes are
    # built and their schedulers follow the epoch stream from epoch 0,
    # but their sequencers stay dormant (no epoch batches, no client
    # input) until ClusterAdmin.add_node arms a join epoch. Requires
    # the core engine; incompatible with partial_hosting.
    active_partitions: Optional[int] = None
    # -- STAR engine knobs (engine="star"; ignored elsewhere) -------------
    # The full-replica node that drains the multipartition backlog
    # during single-master phases.
    star_master_partition: int = 0
    # Partitioned-phase length in epochs, chosen by the deterministic
    # controller from the observed multipartition fraction f:
    #   epochs = clamp(round(gain * (1 - f) / max(f, 1/32)), min, max)
    # The cap trades multipartition parking time (a parked txn holds its
    # locks until the next single-master phase, throttling contended
    # hot sets) against switch overhead; 2 keeps the contended-workload
    # penalty small while preserving the adaptive range.
    star_min_partitioned_epochs: int = 1
    star_max_partitioned_epochs: int = 2
    star_phase_gain: float = 0.5
    # One-way cost of a phase switch (the fence/handover barrier).
    star_switch_latency: float = 0.001
    # Extra master-worker CPU per multipartition transaction (applying
    # the master's writes back onto the partition replicas).
    star_master_txn_overhead_cpu: float = 100e-6

    def validate(self) -> None:
        if self.num_partitions < 1:
            raise ConfigError("num_partitions must be >= 1")
        if self.num_replicas < 1:
            raise ConfigError("num_replicas must be >= 1")
        if self.workers_per_node < 1:
            raise ConfigError("workers_per_node must be >= 1")
        if self.lock_manager_shards < 1:
            raise ConfigError("lock_manager_shards must be >= 1")
        if self.epoch_duration <= 0:
            raise ConfigError("epoch_duration must be positive")
        if self.replication_mode not in ("none", "async", "paxos"):
            raise ConfigError(f"unknown replication mode: {self.replication_mode!r}")
        if self.replication_mode == "none" and self.num_replicas > 1:
            raise ConfigError("multi-replica clusters need replication_mode async|paxos")
        if self.replication_mode == "paxos" and self.num_replicas < 2:
            raise ConfigError("paxos replication needs at least 2 replicas")
        if self.admission_policy not in ("none", "queue", "shed", "backpressure"):
            raise ConfigError(
                f"unknown admission policy: {self.admission_policy!r}"
            )
        if self.admission_policy != "none":
            if self.admission_epoch_budget is None or self.admission_epoch_budget < 1:
                raise ConfigError(
                    "admission_policy needs admission_epoch_budget >= 1"
                )
            if self.admission_queue_capacity < 1:
                raise ConfigError("admission_queue_capacity must be >= 1")
        if self.checkpoint_mode not in ("none", "naive", "zigzag"):
            raise ConfigError(f"unknown checkpoint mode: {self.checkpoint_mode!r}")
        if not 0.0 <= self.disk_estimate_error <= 1.0:
            raise ConfigError("disk_estimate_error must be in [0, 1]")
        if self.fault_profile is not None:
            # Imported here: repro.faults imports this module.
            from repro.faults.profiles import FAULT_PROFILES

            if self.fault_profile not in FAULT_PROFILES:
                raise ConfigError(
                    f"unknown fault profile {self.fault_profile!r}; "
                    f"known: {sorted(FAULT_PROFILES)}"
                )
        if self.fault_horizon <= 0:
            raise ConfigError("fault_horizon must be positive")
        if self.topology is not None:
            # Imported lazily: repro.geo.presets imports this module.
            from repro.geo.presets import GEO_PRESETS

            if self.topology not in GEO_PRESETS:
                raise ConfigError(
                    f"unknown topology preset {self.topology!r}; "
                    f"known: {sorted(GEO_PRESETS)}"
                )
        if self.client_placement not in ("input", "spread"):
            raise ConfigError(
                f"unknown client placement: {self.client_placement!r}"
            )
        if self.partial_hosting is not None:
            hosting = self.partial_hosting
            if len(hosting) != self.num_replicas:
                raise ConfigError(
                    "partial_hosting needs one partition tuple per replica "
                    f"(got {len(hosting)} for {self.num_replicas} replicas)"
                )
            for replica, hosted in enumerate(hosting):
                if not hosted:
                    raise ConfigError(
                        f"partial_hosting: replica {replica} hosts no partitions"
                    )
                if tuple(sorted(set(hosted))) != tuple(hosted):
                    raise ConfigError(
                        f"partial_hosting: replica {replica}'s partitions must "
                        "be sorted and unique"
                    )
                for partition in hosted:
                    if not 0 <= partition < self.num_partitions:
                        raise ConfigError(
                            f"partial_hosting: replica {replica} hosts unknown "
                            f"partition {partition}"
                        )
            if tuple(hosting[0]) != tuple(range(self.num_partitions)):
                raise ConfigError(
                    "partial_hosting: replica 0 must host every partition "
                    "(it ships writesets for straddling transactions)"
                )
            if self.engine != "core":
                raise ConfigError(
                    "partial_hosting requires the core engine"
                )
            if self.fault_profile is not None:
                raise ConfigError(
                    "partial_hosting cannot be combined with fault injection"
                )
            if self.num_replicas < 2:
                raise ConfigError(
                    "partial_hosting needs num_replicas >= 2 (replica 0 "
                    "already hosts everything)"
                )
        if self.active_partitions is not None:
            if not 1 <= self.active_partitions <= self.num_partitions:
                raise ConfigError(
                    "active_partitions must be in [1, num_partitions]"
                )
            if self.engine != "core":
                raise ConfigError("active_partitions requires the core engine")
            if self.partial_hosting is not None:
                raise ConfigError(
                    "active_partitions cannot be combined with partial_hosting"
                )
        # Imported lazily: repro.engines imports this module.
        from repro.engines import ENGINES

        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; known: {sorted(ENGINES)}"
            )
        if not 0 <= self.star_master_partition < self.num_partitions:
            raise ConfigError(
                "star_master_partition must name an existing partition"
            )
        if self.star_min_partitioned_epochs < 1:
            raise ConfigError("star_min_partitioned_epochs must be >= 1")
        if self.star_max_partitioned_epochs < self.star_min_partitioned_epochs:
            raise ConfigError(
                "star_max_partitioned_epochs must be >= star_min_partitioned_epochs"
            )
        if self.star_phase_gain <= 0:
            raise ConfigError("star_phase_gain must be positive")
        if self.star_switch_latency < 0:
            raise ConfigError("star_switch_latency must be >= 0")
        if self.star_master_txn_overhead_cpu < 0:
            raise ConfigError("star_master_txn_overhead_cpu must be >= 0")
        self.costs.validate()

    @property
    def num_nodes(self) -> int:
        """Total nodes across all replicas."""
        return self.num_partitions * self.num_replicas

    def with_changes(self, **changes) -> "ClusterConfig":
        """A copy of this config with ``changes`` applied and validated."""
        updated = replace(self, **changes)
        updated.validate()
        return updated


@dataclass(frozen=True)
class BaselineConfig:
    """Knobs specific to the System R*-style 2PL+2PC baseline."""

    # Wait-die retry backoff after a deterministic abort.
    retry_backoff: float = 0.002
    max_retries: int = 50
    # Whether participants force the prepare/commit records (true 2PC).
    force_log_writes: bool = True

    def validate(self) -> None:
        if self.retry_backoff < 0:
            raise ConfigError("retry_backoff must be >= 0")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")


DEFAULT_CONFIG = ClusterConfig()

"""Calvin: fast distributed transactions for partitioned database systems.

A comprehensive reproduction of Thomson et al. (SIGMOD 2012) in Python.
Transactions execute real stored-procedure logic against real
per-partition stores; time, network, disk and CPU are modeled by a
deterministic discrete-event simulation, so the paper's throughput,
scalability, contention and checkpointing experiments can be regenerated
on a laptop while correctness (determinism, serializability, replica
consistency) is checked on actual data.

Quickstart::

    from repro import CalvinDB

    db = CalvinDB(num_partitions=2)

    @db.procedure("deposit")
    def deposit(ctx):
        key, amount = ctx.args
        ctx.write(key, (ctx.read(key) or 0) + amount)

    db.load({"acct": 0})
    result = db.execute("deposit", ("acct", 5),
                        read_set=["acct"], write_set=["acct"])
    assert result.committed and db.get("acct") == 5

Public surface (everything in ``__all__``; anything else is internal):

- **Facade** — :class:`CalvinDB` (sync ``execute`` / async ``submit`` +
  :class:`TxnHandle`), for examples and small programs.
- **Cluster assembly** — :class:`CalvinCluster`, :class:`ClusterConfig`,
  :class:`BaselineConfig`, :class:`CostModel`, ``DEFAULT_CONFIG``, for
  experiments that wire workloads, clients and faults explicitly.
- **Traffic** — :class:`ClientProfile` (shared closed/open-loop client
  spec consumed by ``add_clients``, the bench harness and the CLI).
- **Engines** — :class:`ExecutionEngine`, :func:`get_engine`,
  :func:`build_cluster` (the seam dispatching ``config.engine`` to the
  Calvin ``core``, the 2PL+2PC ``baseline``, or the phase-switching
  ``star`` implementation; see docs/engines.md).
- **Transactions** — :class:`Transaction`, :class:`TransactionResult`,
  :class:`TxnStatus`, :class:`TxnContext`, :class:`Procedure`,
  :class:`ProcedureRegistry`, :class:`Footprint`.
- **Workloads** — :class:`Microbenchmark`, :class:`TpccWorkload`,
  :class:`YcsbWorkload`, :class:`Workload`, :class:`TxnSpec`.
- **Faults** — :class:`FaultPlan`, :class:`FaultEvent`,
  :class:`FaultInjector`, ``FAULT_PROFILES``, :func:`build_profile`,
  :func:`random_plan`.
- **Observability** — :class:`MetricsRegistry`, :class:`TraceRecorder`,
  :func:`trace_digest`.
- **Control plane** — :class:`ClusterAdmin` (the single elastic
  reconfiguration surface: ``split`` / ``merge`` / ``add_node`` /
  ``remove_node`` / ``plan``), with :class:`MigrationPlan` and
  :class:`ReconfigEvent` as its immutable records; see
  docs/reconfiguration.md.
- **Determinism analysis** — :func:`lint_paths` (the ``repro lint``
  entry point), :class:`DeterminismSanitizer` (runtime trip wires,
  also reachable as ``ClusterConfig(sanitize=True)``), and
  :class:`DeterminismViolation`.
- **Checkers** — the ``check_*`` correctness oracles.
- **Errors** — :class:`ReproError` and friends.
"""

from repro.analysis import DeterminismSanitizer, lint_paths
from repro.config import BaselineConfig, ClusterConfig, CostModel, DEFAULT_CONFIG
from repro.core import (
    CalvinCluster,
    CalvinDB,
    ClientProfile,
    Metrics,
    RunReport,
    TxnHandle,
    check_conflict_order,
    check_epoch_contiguity,
    check_no_double_apply,
    check_no_lost_commits,
    check_replica_consistency,
    check_replica_prefix_consistency,
    check_serializability,
)
from repro.engines import ExecutionEngine, build_cluster, get_engine
from repro.errors import (
    ConfigError,
    ConsistencyError,
    DeterminismViolation,
    FootprintViolation,
    ReproError,
    TransactionAborted,
)
from repro.faults import (
    FAULT_PROFILES,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    build_profile,
    random_plan,
)
from repro.obs import MetricsRegistry, TraceRecorder, trace_digest
from repro.reconfig import ClusterAdmin, MigrationPlan, ReconfigEvent
from repro.txn import (
    Footprint,
    Procedure,
    ProcedureRegistry,
    Transaction,
    TransactionResult,
    TxnContext,
    TxnStatus,
)
from repro.workloads import (
    Microbenchmark,
    TpccWorkload,
    TxnSpec,
    Workload,
    YcsbWorkload,
)

__version__ = "1.0.0"

__all__ = [
    "BaselineConfig",
    "CalvinCluster",
    "CalvinDB",
    "ClientProfile",
    "ClusterAdmin",
    "ClusterConfig",
    "ConfigError",
    "ConsistencyError",
    "CostModel",
    "DEFAULT_CONFIG",
    "DeterminismSanitizer",
    "DeterminismViolation",
    "ExecutionEngine",
    "FAULT_PROFILES",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "Footprint",
    "FootprintViolation",
    "Metrics",
    "MetricsRegistry",
    "Microbenchmark",
    "MigrationPlan",
    "Procedure",
    "ProcedureRegistry",
    "ReconfigEvent",
    "ReproError",
    "RunReport",
    "TpccWorkload",
    "TraceRecorder",
    "Transaction",
    "TransactionAborted",
    "TransactionResult",
    "TxnContext",
    "TxnHandle",
    "TxnSpec",
    "TxnStatus",
    "Workload",
    "YcsbWorkload",
    "build_cluster",
    "build_profile",
    "check_conflict_order",
    "check_epoch_contiguity",
    "check_no_double_apply",
    "check_no_lost_commits",
    "check_replica_consistency",
    "check_replica_prefix_consistency",
    "check_serializability",
    "get_engine",
    "lint_paths",
    "random_plan",
    "trace_digest",
]

"""Calvin core: node/cluster assembly, clients, traffic, metrics, checkers, facade."""

from repro.core.api import CalvinDB, TxnHandle
from repro.core.checkers import (
    check_conflict_order,
    check_epoch_contiguity,
    check_no_double_apply,
    check_no_lost_commits,
    check_replica_consistency,
    check_replica_prefix_consistency,
    check_serializability,
    reference_execution,
)
from repro.core.clients import ClosedLoopClient
from repro.core.cluster import CalvinCluster
from repro.core.metrics import Metrics, RunReport
from repro.core.node import CalvinNode
from repro.core.traffic import AdmissionController, ClientProfile, OpenLoopClient

__all__ = [
    "AdmissionController",
    "CalvinCluster",
    "CalvinDB",
    "CalvinNode",
    "ClientProfile",
    "ClosedLoopClient",
    "Metrics",
    "OpenLoopClient",
    "RunReport",
    "TxnHandle",
    "check_conflict_order",
    "check_epoch_contiguity",
    "check_no_double_apply",
    "check_no_lost_commits",
    "check_replica_consistency",
    "check_replica_prefix_consistency",
    "check_serializability",
    "reference_execution",
]

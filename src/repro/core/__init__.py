"""Calvin core: node/cluster assembly, clients, metrics, checkers, facade."""

from repro.core.api import CalvinDB
from repro.core.checkers import (
    check_conflict_order,
    check_epoch_contiguity,
    check_no_double_apply,
    check_no_lost_commits,
    check_replica_consistency,
    check_replica_prefix_consistency,
    check_serializability,
    reference_execution,
)
from repro.core.clients import ClosedLoopClient
from repro.core.cluster import CalvinCluster
from repro.core.metrics import Metrics, RunReport
from repro.core.node import CalvinNode

__all__ = [
    "CalvinCluster",
    "CalvinDB",
    "CalvinNode",
    "ClosedLoopClient",
    "Metrics",
    "RunReport",
    "check_conflict_order",
    "check_epoch_contiguity",
    "check_no_double_apply",
    "check_no_lost_commits",
    "check_replica_consistency",
    "check_replica_prefix_consistency",
    "check_serializability",
    "reference_execution",
]

"""``CalvinDB`` — the friendly facade over a simulated cluster.

For examples and small programs: register procedures, load data, execute
transactions and get results back, while the full Calvin machinery
(sequencer epochs, deterministic locking, remote reads, replication)
runs underneath in virtual time.

The facade has two surfaces over the same future mechanism:

- **Synchronous**: :meth:`CalvinDB.execute` runs one transaction to
  completion and returns its :class:`TransactionResult`.
- **Asynchronous**: :meth:`CalvinDB.submit` sends the transaction and
  returns a :class:`TxnHandle` immediately, *without* advancing virtual
  time. Call :meth:`TxnHandle.result` (or :meth:`CalvinDB.gather` over
  many handles) to drive the simulation until the result is ready.
  Handles submitted together pipeline through the same sequencing
  epochs, so N independent transactions cost roughly one epoch, not N.

Example (doctest)::

    >>> from repro import CalvinDB
    >>> db = CalvinDB(num_partitions=2)
    >>> @db.procedure("transfer")
    ... def transfer(ctx):
    ...     src, dst, amount = ctx.args
    ...     balance = ctx.read(src)
    ...     if balance < amount:
    ...         ctx.abort("insufficient funds")
    ...     ctx.write(src, balance - amount)
    ...     ctx.write(dst, ctx.read(dst) + amount)
    >>> db.load({"alice": 100, "bob": 50})
    >>> result = db.execute("transfer", ("alice", "bob", 30),
    ...                     read_set=["alice", "bob"], write_set=["alice", "bob"])
    >>> result.committed
    True
    >>> db.get("alice"), db.get("bob")
    (70, 80)

    Async: submit several transfers, then gather — they share epochs:

    >>> handles = [db.submit("transfer", ("alice", "bob", 1),
    ...                      read_set=["alice", "bob"], write_set=["alice", "bob"])
    ...            for _ in range(3)]
    >>> [h.done for h in handles]
    [False, False, False]
    >>> results = db.gather(handles)
    >>> [r.committed for r in results]
    [True, True, True]
    >>> db.get("alice")
    67
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.config import ClusterConfig
from repro.core.cluster import CalvinCluster
from repro.errors import ConfigError
from repro.net.messages import ClientSubmit, TxnReply
from repro.partition.catalog import NodeId, node_address
from repro.partition.partitioner import HashPartitioner, Key, Partitioner
from repro.sim.events import Event
from repro.txn.ollp import reconnoiter
from repro.txn.procedures import ProcedureRegistry
from repro.txn.result import TransactionResult, TxnStatus
from repro.txn.transaction import Transaction

_DRIVER_ADDRESS = ("driver", 0, 0)
_MAX_RESTARTS = 10
# Runaway guard for the interactive drain paths: far above anything a
# single transaction needs, small enough to fail fast on a livelock.
_MAX_DRAIN_EVENTS = 5_000_000


class TxnHandle:
    """A submitted-but-not-necessarily-finished transaction.

    Thin wrapper over the :class:`~repro.sim.events.Event` future that
    the reply router triggers; obtained from :meth:`CalvinDB.submit`.
    """

    __slots__ = ("db", "txn_id", "_future")

    def __init__(self, db: "CalvinDB", txn_id: int, future: Event):
        self.db = db
        self.txn_id = txn_id
        self._future = future

    @property
    def done(self) -> bool:
        """True once the result has been delivered (no time advances)."""
        return self._future.triggered

    def result(self) -> TransactionResult:
        """The transaction's result, advancing virtual time as needed."""
        return self.db.cluster.sim.run_until_triggered(
            self._future, max_events=_MAX_DRAIN_EVENTS
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "pending"
        return f"<TxnHandle txn_id={self.txn_id} {state}>"


class CalvinDB:
    """A single-caller view of a Calvin cluster (sync and async surfaces)."""

    def __init__(
        self,
        num_partitions: int = 2,
        num_replicas: int = 1,
        replication_mode: str = "none",
        seed: int = 2012,
        config: Optional[ClusterConfig] = None,
        partitioner: Optional[Partitioner] = None,
        **config_overrides: Any,
    ):
        if config is None:
            config = ClusterConfig(
                num_partitions=num_partitions,
                num_replicas=num_replicas,
                replication_mode=replication_mode,
                seed=seed,
            )
        if config_overrides:
            config = config.with_changes(**config_overrides)
        self.registry = ProcedureRegistry()
        partitioner = partitioner or HashPartitioner(config.num_partitions)
        self.cluster = CalvinCluster(
            config, registry=self.registry, partitioner=partitioner
        )
        self.cluster.network.register(_DRIVER_ADDRESS, self._on_reply)
        self._futures: Dict[int, Event] = {}

    # -- schema / data ------------------------------------------------------

    def procedure(
        self,
        name: str,
        logic_cpu: float = 50e-6,
        reconnoiter=None,
        recheck=None,
    ):
        """Decorator registering a stored procedure on every node."""
        return self.registry.define(
            name, logic_cpu=logic_cpu, reconnoiter=reconnoiter, recheck=recheck
        )

    def load(self, data: Dict[Key, Any]) -> None:
        """Bulk-load records (before or between transactions)."""
        self.cluster.load(data)

    def get(self, key: Key) -> Any:
        """Direct snapshot read (outside any transaction)."""
        return self.cluster.analytics_read(key)

    # -- async surface -------------------------------------------------------

    def submit(
        self,
        procedure: str,
        args: Any = None,
        read_set: Iterable[Key] = (),
        write_set: Iterable[Key] = (),
        origin_partition: Optional[int] = None,
    ) -> TxnHandle:
        """Submit one transaction; return a :class:`TxnHandle` immediately.

        Virtual time does *not* advance until :meth:`TxnHandle.result`
        (or :meth:`gather`) is called, so handles submitted together
        pipeline through the same sequencing epochs. Dependent
        procedures are not supported here (their OLLP reconnaissance is
        inherently sequential); use :meth:`execute_dependent`.
        """
        read_set, write_set = frozenset(read_set), frozenset(write_set)
        if not read_set and not write_set:
            raise ConfigError("submit needs a non-empty read or write set")
        if self.registry.get(procedure).is_dependent:
            raise ConfigError(
                f"procedure {procedure!r} is dependent; use execute_dependent"
            )
        return self._submit_txn(
            procedure, args, read_set, write_set, origin_partition,
            dependent=False, token=None, restarts=0,
        )

    def gather(self, handles: Iterable[TxnHandle]) -> List[TransactionResult]:
        """Wait for every handle; results come back in handle order."""
        return [handle.result() for handle in handles]

    def execute_many(
        self,
        requests: Iterable[tuple],
        origin_partition: Optional[int] = None,
    ) -> List[TransactionResult]:
        """Submit many transactions concurrently; wait for all results.

        ``requests`` is an iterable of ``(procedure, args, read_set,
        write_set)`` tuples. Equivalent to :meth:`submit` on each
        followed by :meth:`gather` — N independent transactions cost
        roughly one epoch, not N.
        """
        handles = [
            self.submit(procedure, args, read_set, write_set, origin_partition)
            for procedure, args, read_set, write_set in requests
        ]
        return self.gather(handles)

    # -- sync surface --------------------------------------------------------

    def execute(
        self,
        procedure: str,
        args: Any = None,
        read_set: Iterable[Key] = (),
        write_set: Iterable[Key] = (),
        origin_partition: Optional[int] = None,
    ) -> TransactionResult:
        """Run one transaction to completion and return its result.

        Thin synchronous wrapper over :meth:`submit`: virtual time
        advances as needed (epoch wait, network hops, execution); each
        call typically costs 10-20 ms of *virtual* time. Dependent
        procedures are routed through the full OLLP loop.
        """
        read_set, write_set = frozenset(read_set), frozenset(write_set)
        if not read_set and not write_set:
            raise ConfigError("execute needs a non-empty read or write set")
        proc = self.registry.get(procedure)
        if proc.is_dependent:
            return self.execute_dependent(procedure, args, origin_partition)
        return self._submit_txn(
            procedure, args, read_set, write_set, origin_partition,
            dependent=False, token=None, restarts=0,
        ).result()

    def execute_dependent(
        self,
        procedure: str,
        args: Any = None,
        origin_partition: Optional[int] = None,
    ) -> TransactionResult:
        """Run a dependent transaction through the full OLLP loop."""
        proc = self.registry.get(procedure)
        if not proc.is_dependent:
            raise ConfigError(f"procedure {procedure!r} is not dependent")
        restarts = 0
        while True:
            footprint = reconnoiter(proc, self.cluster.analytics_read, args)
            result = self._submit_txn(
                procedure, args, footprint.read_set, footprint.write_set,
                origin_partition, dependent=True, token=footprint.token,
                restarts=restarts,
            ).result()
            if result.status is not TxnStatus.RESTART:
                return result
            restarts += 1
            if restarts > _MAX_RESTARTS:
                return result

    # -- plumbing ------------------------------------------------------------

    def _submit_txn(
        self, procedure, args, read_set, write_set, origin_partition,
        dependent, token, restarts,
    ) -> TxnHandle:
        cluster = self.cluster
        cluster.start()
        all_keys = read_set | write_set
        if not all_keys:
            raise ConfigError("transaction needs a non-empty footprint")
        if origin_partition is None:
            origin_partition = min(cluster.catalog.partitions_of(all_keys))
        txn = Transaction.create(
            txn_id=cluster.next_txn_id(),
            procedure=procedure,
            args=args,
            read_set=read_set,
            write_set=write_set,
            origin_partition=origin_partition,
            client=_DRIVER_ADDRESS,
            dependent=dependent,
            footprint_token=token,
            submit_time=cluster.sim.now,
            restarts=restarts,
        )
        future = Event(cluster.sim)
        self._futures[txn.txn_id] = future
        message = ClientSubmit(txn)
        cluster.network.send(
            _DRIVER_ADDRESS,
            node_address(NodeId(0, origin_partition)),
            message,
            message.size_estimate(),
        )
        return TxnHandle(self, txn.txn_id, future)

    def _on_reply(self, src: Any, message: Any) -> None:
        assert isinstance(message, TxnReply)
        future = self._futures.pop(message.result.txn_id, None)
        if future is not None:
            future.succeed(message.result)

    # -- introspection -----------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self.cluster.sim.now

    def final_state(self) -> Dict[Key, Any]:
        return self.cluster.final_state()

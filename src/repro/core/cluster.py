"""Cluster orchestration: build, load, drive, checkpoint, replay.

:class:`CalvinCluster` owns the simulator, the network, all nodes and
clients, the metrics, and the committed-transaction history that the
correctness checkers consume. It is the main entry point for benchmarks;
examples usually go through the friendlier :class:`repro.core.api.CalvinDB`.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, List, Optional, TYPE_CHECKING, Tuple, Union

from repro.analysis.auditor import FootprintAuditor, adopt_auditor, audit_armed
from repro.config import ClusterConfig
from repro.core.clients import ClosedLoopClient
from repro.core.metrics import Metrics, RunReport
from repro.core.node import CalvinNode
from repro.core.traffic import ClientProfile, OpenLoopClient
from repro.errors import ConfigError, RecoveryError
from repro.obs import MetricsRegistry, NULL_RECORDER, TraceRecorder
from repro.partition.catalog import (
    Catalog,
    MIGRATION_PROC,
    NodeId,
    is_migration_txn,
    migration_route,
)
from repro.partition.partitioner import Key, Partitioner, warm_sort_tokens
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.network import Network, lan_topology, wan_topology
from repro.sim.rng import RngStreams
from repro.storage.checkpoint import CheckpointSnapshot
from repro.storage.inputlog import LogEntry
from repro.txn.procedures import ProcedureRegistry
from repro.txn.result import TxnStatus
from repro.txn.transaction import GlobalSeq, SequencedTxn, Transaction
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan

# (seq, txn, status) per terminal execution, in arbitrary append order;
# sort by seq to obtain the agreed serial history.
HistoryEntry = Tuple[GlobalSeq, Transaction, TxnStatus]

AnyClient = Union[ClosedLoopClient, OpenLoopClient]

# The old add_clients(n, **kwargs) form warns once per process.
_warned_legacy_add_clients = False


def _legacy_add_clients_args(
    profile, workload, think_time, max_txns, per_partition
) -> List[str]:
    """The legacy argument names a non-profile add_clients call used."""
    offending = []
    if profile is not None:
        offending.append("per_partition (positional)")
    if per_partition is not None:
        offending.append("per_partition")
    if workload is not None:
        offending.append("workload")
    if think_time != 0.0:
        offending.append("think_time")
    if max_txns is not None:
        offending.append("max_txns")
    return offending


def _warn_legacy_add_clients(offending: Iterable[str] = ()) -> None:
    global _warned_legacy_add_clients
    if _warned_legacy_add_clients:
        return
    _warned_legacy_add_clients = True
    used = ", ".join(offending) or "per_partition"
    warnings.warn(
        f"add_clients(per_partition, **kwargs) is deprecated (legacy "
        f"argument(s): {used}); pass a repro.ClientProfile instead: "
        "add_clients(ClientProfile(...))",
        DeprecationWarning,
        stacklevel=3,
    )


class CalvinCluster:
    """A fully assembled simulated Calvin deployment."""

    def __init__(
        self,
        config: ClusterConfig,
        workload: Optional[Workload] = None,
        registry: Optional[ProcedureRegistry] = None,
        partitioner: Optional[Partitioner] = None,
        record_history: bool = True,
        fault_plan: Optional["FaultPlan"] = None,
        monitor_interval: Optional[float] = None,
        tracer: Optional[TraceRecorder] = None,
    ):
        config.validate()
        self.config = config
        self.workload = workload

        if workload is not None:
            if registry is None:
                registry = ProcedureRegistry()
                workload.register(registry)
            if partitioner is None:
                partitioner = workload.build_partitioner(config.num_partitions)
        if registry is None or partitioner is None:
            raise ConfigError("cluster needs a workload, or registry + partitioner")
        self.registry = registry
        # The serial reference checker must be able to execute any
        # procedure appearing in the history, including control-plane
        # migrations; the identity-copy reference logic is inert unless
        # a migration is actually sequenced.
        if MIGRATION_PROC not in registry:
            from repro.reconfig.procedure import migration_procedure

            registry.register(migration_procedure())
        self.catalog = Catalog(config, partitioner)

        self.sim = Simulator(sanitize=config.sanitize)
        self.rngs = RngStreams(config.seed)
        # Observability: a no-op recorder unless the caller wants spans
        # (zero overhead when off), and one registry for every component's
        # tallies plus the transaction-outcome instruments. Resolved
        # before the network, which records HOP spans on geo topologies.
        self.tracer = tracer if tracer is not None else NULL_RECORDER
        self.network = self._build_network()
        # The geo topology, when one is configured (None on the flat
        # point-to-point network).
        self.geo = getattr(self.network, "geo", None)
        self.metrics_registry = MetricsRegistry()
        self.sim.register_metrics(self.metrics_registry)
        self.network.register_metrics(self.metrics_registry)
        self.metrics = Metrics(registry=self.metrics_registry)
        self.record_history = record_history
        self.history: List[HistoryEntry] = []

        cold = None
        if config.disk_enabled and workload is not None:
            cold = workload.cold_predicate()

        self.nodes: Dict[NodeId, CalvinNode] = {}
        for node_id in self.catalog.nodes():
            on_complete = self._completion_hook if node_id.replica == 0 else None
            self.nodes[node_id] = self._make_node(node_id, on_complete, cold)
        for node_id, node in self.nodes.items():
            prefix = f"node.r{node_id.replica}p{node_id.partition}"
            node.sequencer.register_metrics(self.metrics_registry, prefix)
            node.scheduler.register_metrics(self.metrics_registry, prefix)
            if node.engine.disk is not None:
                node.engine.disk.register_metrics(self.metrics_registry, f"{prefix}.disk")
            participant = getattr(node.sequencer.replication, "participant", None)
            if participant is not None:
                participant.register_metrics(self.metrics_registry, f"{prefix}.paxos")
            if node.sequencer.admission is not None:
                node.sequencer.admission.register_metrics(self.metrics_registry, prefix)

        # Opt-in footprint auditing (repro.analysis.auditor): one auditor
        # per cluster on replica-0 schedulers — replicas re-execute the
        # same deterministic accesses, so auditing them would only double
        # count. Armed by config or by an enclosing audit_scope().
        self.auditor = None
        if config.audit_footprints or audit_armed():
            self.auditor = FootprintAuditor()
            self.auditor.register_metrics(self.metrics_registry)
            for node_id, node in self.nodes.items():
                if node_id.replica == 0:
                    node.scheduler.auditor = self.auditor
            adopt_auditor(self.auditor)

        # Elastic reconfiguration: spare partitions exist from the
        # start but their sequencers stay dormant until the control
        # plane activates them (repro.reconfig.ClusterAdmin.add_node).
        self.reconfig_admin: Optional[Any] = None
        if self.catalog.has_reconfig:
            active = set(self.catalog.initial_origins)
            for node_id, node in self.nodes.items():
                if node_id.partition not in active:
                    node.sequencer.dormant = True

        self.clients: List[AnyClient] = []
        self.checkpoints: Dict[int, CheckpointSnapshot] = {}
        self._txn_counter = 0
        self._started = False
        self._initial_data: Dict[Key, Any] = {}

        # Fault injection: an explicit plan wins; otherwise a profile
        # named in the config is instantiated over a default horizon.
        self.fault_injector: Optional["FaultInjector"] = None
        if fault_plan is None and config.fault_profile is not None:
            from repro.faults.profiles import build_profile

            fault_plan = build_profile(
                config.fault_profile, config, config.fault_horizon
            )
        if fault_plan is not None:
            from repro.faults.injector import FaultInjector

            self.fault_injector = FaultInjector(
                self, fault_plan, monitor_interval=monitor_interval
            ).install()
            for node in self.nodes.values():
                node.scheduler.retain_remote_reads = True

    # -- construction helpers ------------------------------------------------

    def _make_node(self, node_id: NodeId, on_complete, cold) -> CalvinNode:
        """Build one node. Engine subclasses override to swap the node
        (and with it the scheduler) implementation; the hook must stay
        behaviour-identical for the core engine."""
        return CalvinNode(
            self.sim,
            self.network,
            node_id,
            self.catalog,
            self.config,
            self.registry,
            self.rngs,
            cold_predicate=cold,
            on_complete=on_complete,
            # Traces on every replica: the live fault checkers compare
            # peer replicas' executed prefixes against replica 0's.
            record_trace=self.record_history,
            tracer=self.tracer,
        )

    def _build_network(self):
        """Build the transport: the flat point-to-point network unless a
        geo topology preset is configured (the backward-compatible seam —
        flat configs never touch the geo code paths)."""
        config = self.config
        if config.topology is None:
            return Network(self.sim, self._build_topology())
        # Imported lazily: the flat path must not pay for (or depend on)
        # the geo subsystem.
        from repro.geo.network import GeoNetwork
        from repro.geo.presets import build_geo_topology

        geo = build_geo_topology(config)
        network = GeoNetwork(self.sim, geo, tracer=self.tracer)
        num_dcs = geo.num_datacenters
        for node_id in self.catalog.nodes():
            network.place(
                ("node", node_id.replica, node_id.partition),
                node_id.replica % num_dcs,
            )
        # Clients sit in datacenter 0 (the input site) unless
        # client_placement="spread" moves them (see _place_client).
        return network

    def _build_topology(self):
        config = self.config
        if config.num_replicas > 1:
            topology = wan_topology(
                lan_latency=config.lan_latency,
                wan_latency=config.wan_latency,
                lan_bandwidth=config.lan_bandwidth,
                wan_bandwidth=config.wan_bandwidth,
            )
        else:
            topology = lan_topology(config.lan_latency, config.lan_bandwidth)
        for replica in range(config.num_replicas):
            for partition in range(config.num_partitions):
                topology.place(("node", replica, partition), site=replica)
        # Clients sit in the input replica's datacenter (site 0, the default).
        return topology

    def _completion_hook(self, stxn: SequencedTxn, result) -> None:
        self.metrics.record_completion(stxn.txn.procedure, result, self.sim.now)
        if self.record_history:
            self.history.append((stxn.seq, stxn.txn, result.status))

    # -- basic accessors ---------------------------------------------------------

    def node(self, replica: int, partition: int) -> CalvinNode:
        return self.nodes[NodeId(replica, partition)]

    def next_txn_id(self) -> int:
        self._txn_counter += 1
        return self._txn_counter

    def current_epoch(self) -> int:
        """The sequencing epoch covering the present instant."""
        return int(self.sim.now / self.config.epoch_duration)

    def analytics_read(self, key: Key) -> Any:
        """Unsequenced snapshot read (OLLP reconnaissance path)."""
        catalog = self.catalog
        if catalog.has_reconfig:
            partition = catalog.partition_of_at(key, self.current_epoch())
        else:
            partition = catalog.partition_of(key)
        return self.node(0, partition).store.get(key)

    # -- data loading -----------------------------------------------------------

    def load(self, data: Dict[Key, Any]) -> None:
        """Bulk-load initial records into every replica."""
        # Hot paths sort key collections by cached sort token; warming
        # the whole key universe here keeps those sorts on the C-level
        # cache-hit path from the first epoch on.
        warm_sort_tokens(data)
        per_partition: Dict[int, Dict[Key, Any]] = {}
        for key, value in data.items():
            per_partition.setdefault(self.catalog.partition_of(key), {})[key] = value
        for partition, chunk in per_partition.items():
            for node_id in self.catalog.replicas_of_partition(partition):
                self.nodes[node_id].store.load_bulk(chunk)
        self._initial_data.update(data)

    def load_workload_data(self) -> None:
        """Load ``workload.initial_data`` (requires a workload)."""
        if self.workload is None:
            raise ConfigError("cluster has no workload to load data from")
        self.load(self.workload.initial_data(self.catalog))

    @property
    def initial_data(self) -> Dict[Key, Any]:
        return dict(self._initial_data)

    # -- running ------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for node in self.nodes.values():
            node.start()

    def add_clients(
        self,
        profile: Union[ClientProfile, int, None] = None,
        workload: Optional[Workload] = None,
        think_time: float = 0.0,
        max_txns: Optional[int] = None,
        *,
        per_partition: Optional[int] = None,
    ) -> List[AnyClient]:
        """Create one client population described by a :class:`ClientProfile`.

        The legacy ``add_clients(n, workload=..., think_time=...,
        max_txns=...)`` form still works through a deprecation shim that
        maps the old kwargs onto a closed-loop profile (and warns once
        per process).
        """
        if not isinstance(profile, ClientProfile):
            # Deprecation shim: the old kwargs-soup form.
            _warn_legacy_add_clients(
                _legacy_add_clients_args(
                    profile, workload, think_time, max_txns, per_partition
                )
            )
            count = per_partition if per_partition is not None else profile
            if not isinstance(count, int):
                raise ConfigError(
                    "add_clients needs a ClientProfile or a per-partition count"
                )
            profile = ClientProfile(
                per_partition=count,
                workload=workload,
                think_time=think_time,
                max_txns=max_txns,
            )
        profile.validate()
        workload = profile.workload or self.workload
        if workload is None:
            raise ConfigError("no workload for clients")
        created: List[AnyClient] = []
        # Under elastic reconfiguration only active origins accept
        # input; spares get their clients when the control plane (or
        # the autoscaler) redirects traffic to them.
        if self.catalog.has_reconfig:
            partitions: Iterable[int] = self.catalog.initial_origins
        else:
            partitions = range(self.config.num_partitions)
        for partition in partitions:
            for _ in range(profile.per_partition):
                index = len(self.clients)
                client: AnyClient
                if profile.mode == "open":
                    client = OpenLoopClient(self, partition, index, profile, workload)
                else:
                    client = ClosedLoopClient(
                        self,
                        partition,
                        index,
                        workload,
                        profile.think_time,
                        profile.max_txns,
                    )
                self.clients.append(client)
                created.append(client)
                self._place_client(client, index)
        return created

    def _place_client(self, client: Any, index: int) -> None:
        """Geo-aware client placement: on a geo topology with
        ``client_placement="spread"``, client ``i`` lives in datacenter
        ``i % num_datacenters`` (its traffic to the input site crosses
        the WAN). Default placement keeps every client in datacenter 0."""
        if self.geo is None or self.config.client_placement != "spread":
            return
        self.network.place(client.address, index % self.geo.num_datacenters)

    def quiesce(self, timeout: float = 300.0, step: float = 0.05) -> None:
        """Run until all clients are done and all in-flight work drained.

        Only meaningful with ``max_txns``-bounded clients; raises
        :class:`ConfigError` on unbounded ones (they never finish).
        """
        if any(client.max_txns is None for client in self.clients):
            raise ConfigError("quiesce requires max_txns-bounded clients")
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            self.sim.run(until=self.sim.now + step)
            clients_idle = all(client.idle for client in self.clients)
            nodes_idle = all(
                node.scheduler.outstanding == 0
                and node.scheduler.admission_backlog == 0
                and not node.sequencer._buffer
                and not node.sequencer.pending_config_txns
                and (
                    node.sequencer.admission is None
                    or node.sequencer.admission.queue_depth == 0
                )
                and not any(
                    batch.txns
                    for per_epoch in node.scheduler._arrived.values()
                    for batch in per_epoch.values()
                )
                for node in self.nodes.values()
            )
            # Peer replicas must have re-executed (or applied) everything
            # replica 0 finished (batches may still be crossing the WAN).
            # Under partial replication only hosted partitions compare.
            replicas_aligned = all(
                self.nodes[node_id].scheduler.completed
                == self.node(0, node_id.partition).scheduler.completed
                for node_id in self.catalog.nodes()
                if node_id.replica != 0
            )
            # In-flight control-plane actions (armed-but-unsequenced
            # migrations, pending joins/leaves) must land before the
            # cluster counts as drained.
            reconfig_idle = (
                self.reconfig_admin is None or self.reconfig_admin.quiesced
            )
            if clients_idle and nodes_idle and replicas_aligned and reconfig_idle:
                return
        raise ConfigError(f"cluster failed to quiesce within {timeout}s")

    def run(self, duration: float, warmup: float = 0.0) -> RunReport:
        """Start everything, warm up, measure for ``duration``; report."""
        self.start()
        for client in self.clients:
            if client.submitted == 0:
                client.start()
        if warmup > 0:
            self.sim.run(until=self.sim.now + warmup)
        self.metrics.begin_window(self.sim.now)
        self.sim.run(until=self.sim.now + duration)
        return self.metrics.report(self.sim.now)

    def run_until_idle(self, max_events: Optional[int] = None) -> None:
        """Drain the event queue completely (replay clusters: no epoch
        ticking, so the queue empties when all injected work is done)."""
        self.sim.run(max_events=max_events)
        for node in self.nodes.values():
            scheduler = node.scheduler
            if scheduler.outstanding or scheduler.admission_backlog:
                raise RecoveryError(
                    f"replay stalled at {node.node_id}: "
                    f"{scheduler.outstanding} running, "
                    f"{scheduler.admission_backlog} queued"
                )

    # -- checkpointing --------------------------------------------------------------

    def schedule_checkpoint(self, at_time: float, mode: Optional[str] = None) -> Event:
        """Checkpoint replica 0 at the first epoch boundary after ``at_time``.

        Returns an event triggering with the list of per-partition
        snapshots (also stored in :attr:`checkpoints`).
        """
        mode = mode or self.config.checkpoint_mode
        if mode not in ("naive", "zigzag"):
            raise ConfigError(f"cannot checkpoint with mode {mode!r}")
        done = Event(self.sim)
        self.sim.schedule_at(at_time, self._start_checkpoint, mode, done)
        return done

    def _start_checkpoint(self, mode: str, done: Event) -> None:
        replica_nodes = [self.node(0, p) for p in range(self.config.num_partitions)]
        # A safe epoch boundary strictly in the future of every scheduler.
        epoch = max(n.scheduler._next_epoch for n in replica_nodes) + 2
        events = [node.begin_checkpoint(mode, epoch) for node in replica_nodes]
        combined = self.sim.all_of(events)

        def record(event: Event) -> None:
            snapshots = event.value
            for snapshot in snapshots:
                self.checkpoints[snapshot.partition] = snapshot
            done.succeed(snapshots)

        combined.add_callback(record)

    # -- failures -------------------------------------------------------------------

    def crash_node(self, replica: int, partition: int) -> None:
        """Fail-stop a node: deaf (traffic to it is dropped), frozen
        (its timers park in the kernel), sends held until restart.

        With Paxos input replication, a crashed *non-input* replica node
        costs nothing: agreement needs only a majority, and surviving
        replicas keep executing the agreed log — the paper's
        no-single-point-of-failure claim, exercised by experiment E8.
        """
        self.node(replica, partition).crash()

    def restart_node(self, replica: int, partition: int, resync: bool = True) -> None:
        """Bring a crashed node back; with ``resync``, re-learn what it
        missed from healthy peers (paper Section 2's recovery story)."""
        node = self.node(replica, partition)
        if not node.crashed:
            return
        node.restart()
        if resync:
            self.resync_node(replica, partition)

    def resync_node(self, replica: int, partition: int) -> None:
        """Catch a rejoined node up on everything it was deaf to.

        Three classes of messages were dropped while the node's address
        was unregistered, each repaired from a healthy peer's durable or
        retained state:

        1. *Input-log entries* — paxos: every healthy same-partition
           peer retransmits its protocol state (chosen values as Learns;
           the leader additionally re-solicits stalled Accepts, without
           which a group whose majority needs the rejoined member would
           stay wedged forever); async: re-feed the origin replica's
           logged batches through the epoch-ordered intake.
        2. *Sub-batches* from same-replica sequencers of other
           partitions — each peer re-derives them from its input log
           (:meth:`Sequencer.resend_to`); scheduler intake is idempotent.
        3. *Remote reads* peers served while the node was down — peers
           retain served reads and re-send the relevant ones
           (:meth:`Scheduler.reserve_reads_to`).
        """
        node = self.node(replica, partition)
        mode = self.config.replication_mode
        if mode == "paxos":
            for peer_replica in range(self.config.num_replicas):
                if peer_replica == replica:
                    continue
                donor = self.node(peer_replica, partition)
                if not donor.crashed:
                    donor.sequencer.replication.participant.retransmit_to(replica)
        elif mode == "async" and replica != 0:
            origin = self.node(0, partition)
            from repro.net.messages import ReplicaBatch

            for entry in origin.input_log:
                node.sequencer.handle_replica_batch(
                    ReplicaBatch(entry.epoch, entry.origin_partition, entry.txns)
                )
        for peer_partition in range(self.config.num_partitions):
            if peer_partition == partition:
                continue
            peer = self.node(replica, peer_partition)
            if peer.crashed:
                continue
            peer.sequencer.resend_to(partition, from_epoch=node.scheduler.next_epoch)
            peer.scheduler.reserve_reads_to(node.scheduler)

    def snapshot_read(self, key: Key, replica: int = 0) -> Any:
        """A low-consistency read served by any replica (possibly stale —
        the "multiple consistency levels" the abstract mentions)."""
        catalog = self.catalog
        if catalog.has_reconfig:
            partition = catalog.partition_of_at(key, self.current_epoch())
        else:
            partition = catalog.partition_of(key)
        return self.node(replica, partition).store.get(key)

    def admission_stats(self) -> Dict[str, int]:
        """Aggregate admission-controller tallies across input nodes.

        All zeros when no admission policy is configured (there are no
        controllers to sum over).
        """
        totals = {
            "offered": 0,
            "admitted": 0,
            "queued": 0,
            "shed": 0,
            "dropped": 0,
            "backpressured": 0,
            "queue_depth": 0,
            "peak_queue_depth": 0,
        }
        for node in self.nodes.values():
            admission = node.sequencer.admission
            if admission is None:
                continue
            totals["offered"] += admission.offered
            totals["admitted"] += admission.admitted
            totals["queued"] += admission.queued
            totals["shed"] += admission.shed
            totals["dropped"] += admission.dropped
            totals["backpressured"] += admission.backpressured
            totals["queue_depth"] += admission.queue_depth
            totals["peak_queue_depth"] = max(
                totals["peak_queue_depth"], admission.peak_queue_depth
            )
        return totals

    def node_stats(self) -> Dict[NodeId, Dict[str, float]]:
        """Per-node health numbers for debugging and tests."""
        now = self.sim.now
        stats = {}
        for node_id, node in self.nodes.items():
            scheduler = node.scheduler
            stats[node_id] = {
                "admitted": scheduler.admitted,
                "completed": scheduler.completed,
                "outstanding": scheduler.outstanding,
                "worker_utilization": scheduler.workers.utilization(now) if now else 0.0,
                "lock_grants": scheduler.locks.grants,
                "immediate_grant_fraction": (
                    scheduler.locks.immediate_grants / scheduler.locks.grants
                    if scheduler.locks.grants
                    else 1.0
                ),
                "sequenced": node.sequencer.txns_sequenced,
                "deferred": node.sequencer.txns_deferred,
            }
        return stats

    # -- state inspection ---------------------------------------------------------

    def replica_fingerprints(self) -> Dict[int, Tuple[int, ...]]:
        """Per-replica tuple of *hosted* partition-store fingerprints."""
        return {
            replica: tuple(
                self.node(replica, p).store.fingerprint()
                for p in self.catalog.hosted_partitions(replica)
            )
            for replica in range(self.config.num_replicas)
        }

    def final_state(self, replica: int = 0) -> Dict[Key, Any]:
        """Union of the replica's hosted partition stores."""
        state: Dict[Key, Any] = {}
        for partition in self.catalog.hosted_partitions(replica):
            state.update(self.node(replica, partition).store.snapshot())
        return state

    def merged_log(self, replica: int = 0) -> List[LogEntry]:
        """The replica's input log (hosted origins), merged, global order."""
        entries: List[LogEntry] = []
        for partition in self.catalog.hosted_partitions(replica):
            entries.extend(self.node(replica, partition).input_log)
        entries.sort()
        return entries

    def sorted_history(self) -> List[HistoryEntry]:
        return sorted(self.history, key=lambda entry: entry[0])

    # -- recovery / deterministic replay ----------------------------------------------

    @classmethod
    def replay(
        cls,
        config: ClusterConfig,
        registry: ProcedureRegistry,
        partitioner: Partitioner,
        initial_data: Dict[Key, Any],
        entries: Iterable[LogEntry],
        start_epoch: int = 0,
    ) -> "CalvinCluster":
        """Rebuild state by deterministic replay of an input log.

        ``initial_data`` is either the original load (full replay) or a
        checkpoint image (recovery), in which case ``start_epoch`` is the
        checkpoint's epoch watermark.
        """
        replay_config = config.with_changes(
            num_replicas=1,
            replication_mode="none",
            disk_enabled=False,
            checkpoint_mode="none",
        )
        cluster = cls(
            replay_config,
            registry=registry,
            partitioner=partitioner,
            record_history=False,
        )
        cluster.load(initial_data)
        for partition in range(replay_config.num_partitions):
            cluster.node(0, partition).scheduler.fast_forward(start_epoch)

        ordered = sorted(entries)
        if ordered and ordered[0].epoch < start_epoch:
            raise RecoveryError(
                f"log entry epoch {ordered[0].epoch} precedes checkpoint "
                f"epoch {start_epoch}"
            )
        cluster._rearm_reconfig(ordered)
        for entry in ordered:
            node = cluster.node(0, entry.origin_partition)
            node.sequencer.dispatch(entry.epoch, entry.txns)
        cluster.run_until_idle()
        return cluster

    def _rearm_reconfig(self, ordered: List[LogEntry]) -> None:
        """Reconstruct the epoch-keyed routing and origin timeline from
        a log containing control-plane activity (replay path).

        Both are derivable from the log alone: each migration carries
        its (source, dest) route and moving keys in the sequenced
        transaction, and every active sequencer logs one entry per
        epoch (empty batches included), so the per-epoch origin sets
        fall out of the entries themselves. A log with no migrations
        and a constant origin set leaves the catalog untouched — the
        static replay path stays byte-identical.
        """
        catalog = self.catalog
        per_epoch: Dict[int, set] = {}
        migrations: List[Tuple[int, Transaction]] = []
        for entry in ordered:
            per_epoch.setdefault(entry.epoch, set()).add(entry.origin_partition)
            for txn in entry.txns:
                if is_migration_txn(txn):
                    migrations.append((entry.epoch, txn))
        initial = set(catalog.initial_origins)
        if not migrations and all(
            origins == initial for origins in per_epoch.values()
        ):
            return
        for epoch, txn in migrations:  # entry order == epoch order
            dest = migration_route(txn)[1]
            catalog.arm_override(epoch, {key: dest for key in txn.write_set})
        current = initial
        for epoch in sorted(per_epoch):
            origins = per_epoch[epoch]
            if origins != current:
                catalog.arm_origin_change(epoch, origins)
                current = origins

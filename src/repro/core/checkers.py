"""Correctness checkers: replica consistency and serializability.

Calvin's guarantees are checkable end-to-end in this reproduction
because transactions execute real logic on real stores:

- **Replica consistency** — all replicas fed the same input log must
  hold byte-identical partition states (determinism).
- **Serializability / determinism** — re-executing the committed history
  serially, in the agreed global order, on a single reference store must
  yield (a) the same per-transaction outcome the cluster reported and
  (b) exactly the cluster's final state.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.errors import ConsistencyError, TransactionAborted
from repro.partition.partitioner import Key
from repro.txn.context import DELETED, TxnContext
from repro.txn.procedures import ProcedureRegistry
from repro.txn.result import TxnStatus
from repro.txn.transaction import Transaction


def check_replica_consistency(cluster) -> None:
    """Raise :class:`ConsistencyError` unless all replicas' stores match.

    Compared per partition against replica 0 (which hosts everything),
    so partial-replication layouts — where replicas host different
    partition subsets — are checked on exactly the hosted overlap.
    """
    catalog = cluster.catalog
    for replica in range(1, cluster.config.num_replicas):
        diverged = [
            partition
            for partition in catalog.hosted_partitions(replica)
            if cluster.node(replica, partition).store.fingerprint()
            != cluster.node(0, partition).store.fingerprint()
        ]
        if diverged:
            raise ConsistencyError(
                f"replica {replica} diverged from replica 0 on partitions "
                f"{diverged}"
            )


def check_epoch_contiguity(cluster) -> int:
    """Every node's input log covers a gap-free epoch range.

    A sequencer that skipped an epoch (e.g. a fault dropped the batch
    between agreement and logging) would leave a hole that deterministic
    replay cannot bridge. Safe to run mid-flight: a frozen (crashed)
    node's log simply stops early, which is still contiguous. Returns
    the number of log entries inspected.
    """
    inspected = 0
    for node_id, node in sorted(cluster.nodes.items()):
        epochs = [entry.epoch for entry in node.input_log]
        for prior, current in zip(epochs, epochs[1:]):
            if current != prior + 1:
                raise ConsistencyError(
                    f"{node_id}: input-log epoch gap {prior} -> {current}"
                )
        inspected += len(epochs)
    return inspected


def check_no_double_apply(cluster) -> int:
    """No transaction is sequenced or executed twice.

    Duplicated network messages (ClientSubmit, SubBatch, ReplicaBatch,
    Learn) must be absorbed by the idempotent intake layers; if one
    slips through, a transaction shows up at two sequence positions or
    finishes twice on some scheduler. Returns transactions inspected.
    """
    inspected = 0
    for replica in range(cluster.config.num_replicas):
        seen: Dict[int, Any] = {}
        for entry in cluster.merged_log(replica):
            for index, txn in enumerate(entry.txns):
                seq = (entry.epoch, entry.origin_partition, index)
                if txn.txn_id in seen:
                    raise ConsistencyError(
                        f"replica {replica}: txn {txn.txn_id} sequenced twice "
                        f"(at {seen[txn.txn_id]} and {seq})"
                    )
                seen[txn.txn_id] = seq
                inspected += 1
    for node_id, node in sorted(cluster.nodes.items()):
        trace = node.scheduler.execution_trace
        if trace is not None and len(trace) != len(set(trace)):
            duplicated = sorted({seq for seq in trace if trace.count(seq) > 1})
            raise ConsistencyError(
                f"{node_id}: executed sequence(s) {duplicated[:3]} twice"
            )
    return inspected


def check_no_lost_commits(cluster) -> int:
    """Every completion the cluster reported is backed by the input log.

    A result whose sequence position is absent from replica 0's merged
    log would be unrecoverable — replay could never reproduce it.
    Requires ``record_history=True``. Returns completions inspected.
    """
    logged = set()
    for entry in cluster.merged_log(replica=0):
        for index in range(len(entry.txns)):
            logged.add((entry.epoch, entry.origin_partition, index))
    for seq, txn, _status in cluster.history:
        if seq not in logged:
            raise ConsistencyError(
                f"lost commit: txn {txn.txn_id} completed at seq {seq} "
                "but that position is not in replica 0's input log"
            )
    return len(cluster.history)


def check_replica_prefix_consistency(cluster) -> int:
    """Replicas that executed the same transactions hold the same state.

    The end-of-run :func:`check_replica_consistency` needs quiescence;
    this variant is safe *during* a run (including mid-fault): a peer
    partition is only compared against replica 0 when both have executed
    exactly the same set of sequence positions — a lagging (or crashed)
    peer is simply skipped, a diverged one is caught the moment it
    catches up. Requires execution traces on every replica
    (``record_history=True``). Returns the number of partitions compared.
    """
    compared = 0
    for partition in range(cluster.config.num_partitions):
        reference = cluster.node(0, partition)
        if reference.scheduler.execution_trace is None:
            raise ConsistencyError(
                "execution traces are off; build the cluster with "
                "record_history=True"
            )
        reference_seqs = set(reference.scheduler.execution_trace)
        for replica in range(1, cluster.config.num_replicas):
            if not cluster.catalog.is_hosted(replica, partition):
                continue  # partial replication: no such node
            peer = cluster.node(replica, partition)
            if set(peer.scheduler.execution_trace or ()) != reference_seqs:
                continue  # lagging or ahead; nothing comparable yet
            if peer.store.fingerprint() != reference.store.fingerprint():
                raise ConsistencyError(
                    f"replica {replica} partition {partition} diverged from "
                    f"replica 0 after the same {len(reference_seqs)} executions"
                )
            compared += 1
    return compared


def reference_execution(
    initial_data: Dict[Key, Any],
    history: List[Tuple[Any, Transaction, TxnStatus]],
    registry: ProcedureRegistry,
) -> Tuple[Dict[Key, Any], List[TxnStatus]]:
    """Serially execute ``history`` (sorted by sequence) on one store.

    Returns the reference final state and the per-transaction statuses
    the serial execution produced.
    """
    store: Dict[Key, Any] = dict(initial_data)
    statuses: List[TxnStatus] = []
    for _seq, txn, _reported in sorted(history, key=lambda entry: entry[0]):
        procedure = registry.get(txn.procedure)
        reads = {key: store[key] for key in txn.read_set if key in store}
        context = TxnContext(txn, reads)
        if (
            txn.dependent
            and procedure.recheck is not None
            and not procedure.recheck(context)
        ):
            statuses.append(TxnStatus.RESTART)
            continue
        try:
            procedure.logic(context)
            status = TxnStatus.COMMITTED
        except TransactionAborted:
            status = TxnStatus.ABORTED
            context.writes.clear()
        statuses.append(status)
        if status is TxnStatus.COMMITTED:
            for key, value in context.writes.items():
                if value is DELETED:
                    store.pop(key, None)
                else:
                    store[key] = value
    return store, statuses


def check_conflict_order(cluster) -> int:
    """Independent serializability evidence from execution traces.

    Each replica-0 scheduler records the order in which transactions
    actually *finished* on its partition. Deterministic locking promises
    that conflicting transactions finish in global sequence order on
    every partition they share: a later-sequenced writer cannot finish
    before any earlier toucher of the key, and a later-sequenced reader
    cannot finish before an earlier writer. This check walks each
    partition's trace and verifies exactly that — no re-execution, so it
    is independent of :func:`check_serializability`. Returns the number
    of trace entries verified.

    Requires ``record_history=True`` (traces ride along with history).
    """
    txn_by_seq = {seq: txn for seq, txn, _status in cluster.history}
    verified = 0
    for partition in range(cluster.config.num_partitions):
        scheduler = cluster.node(0, partition).scheduler
        trace = scheduler.execution_trace
        if trace is None:
            raise ConsistencyError(
                "execution traces are off; build the cluster with "
                "record_history=True"
            )
        partition_of = cluster.catalog.partition_of
        max_touch: Dict[Key, Any] = {}
        max_write: Dict[Key, Any] = {}
        for seq in trace:
            txn = txn_by_seq.get(seq)
            if txn is None:
                # Executed on this partition but replied elsewhere before
                # history recording began (warm-up); skip footprint lookup.
                continue
            for key in txn.write_set:
                if partition_of(key) != partition:
                    continue
                prior = max_touch.get(key)
                if prior is not None and prior > seq:
                    raise ConsistencyError(
                        f"partition {partition}: writer {seq} finished after "
                        f"conflicting {prior} on {key!r} despite earlier order"
                    )
            read_only = txn.read_set - txn.write_set
            for key in read_only:
                if partition_of(key) != partition:
                    continue
                prior = max_write.get(key)
                if prior is not None and prior > seq:
                    raise ConsistencyError(
                        f"partition {partition}: reader {seq} finished after "
                        f"conflicting writer {prior} on {key!r}"
                    )
            for key in txn.write_set:
                if partition_of(key) == partition:
                    max_touch[key] = max(max_touch.get(key, seq), seq)
                    max_write[key] = max(max_write.get(key, seq), seq)
            for key in read_only:
                if partition_of(key) == partition:
                    max_touch[key] = max(max_touch.get(key, seq), seq)
            verified += 1
    return verified


def check_serializability(cluster) -> int:
    """Verify the cluster behaved as a serial execution of its history.

    Returns the number of transactions checked. Requires the cluster to
    have been built with ``record_history=True``.
    """
    history = cluster.sorted_history()
    reference_state, reference_statuses = reference_execution(
        cluster.initial_data, history, cluster.registry
    )
    reported_statuses = [status for _seq, _txn, status in history]
    if reference_statuses != reported_statuses:
        for index, (ref, got) in enumerate(zip(reference_statuses, reported_statuses)):
            if ref != got:
                seq, txn, _ = history[index]
                raise ConsistencyError(
                    f"outcome mismatch at seq {seq} ({txn.procedure}): "
                    f"serial reference says {ref}, cluster reported {got}"
                )
    cluster_state = cluster.final_state(replica=0)
    if cluster_state != reference_state:
        missing = reference_state.keys() - cluster_state.keys()
        extra = cluster_state.keys() - reference_state.keys()
        differing = [
            key
            for key in reference_state.keys() & cluster_state.keys()
            if reference_state[key] != cluster_state[key]
        ]
        raise ConsistencyError(
            "final state differs from serial reference: "
            f"{len(missing)} missing, {len(extra)} extra, "
            f"{len(differing)} differing (e.g. {sorted(map(repr, differing))[:3]})"
        )
    return len(history)

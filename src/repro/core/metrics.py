"""Run metrics: throughput, latency, outcome counts.

One :class:`Metrics` instance per cluster collects completions (from the
reply partitions of replica 0, so each transaction counts once) and
client-observed latencies. ``report`` condenses a measurement window
into the numbers the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs import MetricsRegistry
from repro.txn.result import TransactionResult, TxnStatus


@dataclass(frozen=True)
class RunReport:
    """Summary of one measurement window."""

    duration: float
    committed: int
    aborted: int
    restarts: int
    throughput: float          # committed txns / second
    latency_mean: float
    latency_p50: float
    latency_p99: float
    per_procedure: Dict[str, int]
    # Server-side latency decomposition (means, seconds): epoch wait +
    # lock queueing vs actual execution (phases 2-5 incl. remote reads).
    sequencing_mean: float = 0.0
    execution_mean: float = 0.0

    def __str__(self) -> str:  # pragma: no cover - presentation
        return (
            f"{self.throughput:,.0f} txn/s over {self.duration:.2f}s "
            f"({self.committed} committed, {self.aborted} aborted, "
            f"{self.restarts} restarts; latency p50={self.latency_p50 * 1e3:.1f}ms "
            f"p99={self.latency_p99 * 1e3:.1f}ms)"
        )


class Metrics:
    """Mutable collector; one per cluster.

    All instruments live in a :class:`MetricsRegistry` (one is created if
    the cluster does not supply a shared one), so ``registry.snapshot()``
    covers transaction outcomes alongside component tallies. The familiar
    ``committed``/``aborted``/``restarts`` ints remain readable as
    properties over the underlying counters.
    """

    def __init__(self, bucket_width: float = 0.05, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.throughput = self.registry.series("txn.throughput", bucket_width)
        self.latency = self.registry.histogram("txn.latency")
        self.sequencing = self.registry.histogram("txn.sequencing")
        self.execution = self.registry.histogram("txn.execution")
        self._committed = self.registry.counter("txn.committed")
        self._aborted = self.registry.counter("txn.aborted")
        self._restarts = self.registry.counter("txn.restarts")
        self.per_procedure: Dict[str, int] = {}
        # Client latency samples are only taken inside the measurement
        # window; until begin_window() nothing qualifies (warm-up and
        # cold-start latencies would otherwise pollute the percentiles).
        self.window_start = float("inf")

    @property
    def committed(self) -> int:
        return self._committed.value

    @property
    def aborted(self) -> int:
        return self._aborted.value

    @property
    def restarts(self) -> int:
        return self._restarts.value

    def record_completion(self, procedure: str, result: TransactionResult, now: float) -> None:
        """Record a terminal execution (called on the reply partition)."""
        if result.status is TxnStatus.COMMITTED:
            self._committed.increment()
            self.throughput.record(now)
            self.per_procedure[procedure] = self.per_procedure.get(procedure, 0) + 1
            if result.granted_time:
                self.sequencing.add(result.sequencing_latency)
                self.execution.add(result.execution_latency)
        elif result.status is TxnStatus.ABORTED:
            self._aborted.increment()
        else:
            self._restarts.increment()

    def record_latency(self, latency: float) -> None:
        """Record a client-observed latency (client side, replica 0)."""
        self.latency.add(latency)

    def begin_window(self, now: float) -> None:
        """Mark the start of the measurement window (end of warm-up)."""
        self.window_start = now

    def report(self, now: float) -> RunReport:
        window_start = 0.0 if self.window_start == float("inf") else self.window_start
        duration = max(1e-9, now - window_start)
        rate = self.throughput.rate(window_start, now)
        return RunReport(
            duration=duration,
            committed=self.committed,
            aborted=self.aborted,
            restarts=self.restarts,
            throughput=rate,
            latency_mean=self.latency.mean,
            latency_p50=self.latency.percentile(50),
            latency_p99=self.latency.percentile(99),
            per_procedure=dict(self.per_procedure),
            sequencing_mean=self.sequencing.mean,
            execution_mean=self.execution.mean,
        )

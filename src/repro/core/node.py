"""One Calvin node: sequencer + scheduler + storage on a network address.

The node is the message router (paper Figure 1: all three components
share a machine) and the host of checkpoint orchestration for its
partition.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.config import ClusterConfig
from repro.core.traffic import AdmissionController
from repro.errors import NetworkError, StorageError
from repro.net.messages import (
    ClientSubmit,
    PrefetchRequest,
    ReadOnlyQuery,
    ReadOnlyReply,
    RemoteRead,
    ReplicaBatch,
    SubBatch,
    TxnReply,
    WriteSetApply,
)
from repro.obs import CAT_NODE, NULL_RECORDER, SpanKind, TraceRecorder
from repro.partition.catalog import Catalog, NodeId, node_address
from repro.paxos.messages import Accept, Accepted, Learn, Nack, Prepare, Promise
from repro.scheduler.scheduler import Scheduler
from repro.sequencer.replication import (
    AsyncReplication,
    NoReplication,
    PaxosReplication,
)
from repro.sequencer.sequencer import Sequencer
from repro.sim.events import Event
from repro.storage.checkpoint import (
    CheckpointSnapshot,
    NaiveCheckpointer,
    ZigZagCheckpointer,
)
from repro.storage.engine import StorageEngine
from repro.storage.inputlog import InputLog
from repro.txn.procedures import ProcedureRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.kernel import Simulator
    from repro.sim.network import Network
    from repro.sim.rng import RngStreams

_PAXOS_MESSAGES = (Prepare, Promise, Accept, Accepted, Nack, Learn)
# Records serialized per background checkpoint slice (zigzag mode).
# Each slice waits its turn for a worker slot, so under saturation the
# inter-slice gap is a full queue drain; slices must be large enough
# that the dump outruns the store's growth and finishes promptly.
_CHECKPOINT_SLICE = 4096


class CalvinNode:
    """A full Calvin server: one partition of one replica."""

    # The scheduler implementation this node type wires in. Engine
    # subclasses (e.g. STAR's node) override it; the class must accept
    # the same constructor signature as :class:`Scheduler`.
    scheduler_class = Scheduler

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        node_id: NodeId,
        catalog: Catalog,
        config: ClusterConfig,
        registry: ProcedureRegistry,
        rngs: "RngStreams",
        cold_predicate=None,
        on_complete: Optional[Callable] = None,
        record_trace: bool = False,
        tracer: TraceRecorder = NULL_RECORDER,
    ):
        self.sim = sim
        self.network = network
        self.node_id = node_id
        self.catalog = catalog
        self.config = config
        self.tracer = tracer
        self.address = node_address(node_id)
        # Before the components: Paxos leader election sends during
        # sequencer construction, and send() consults the crash flag.
        self.crashed = False
        self.suppressed_sends = 0
        self._held_sends: list = []

        self.engine = StorageEngine(
            sim,
            node_id.partition,
            config.costs,
            rngs.stream("disk", node_id.replica, node_id.partition),
            disk_enabled=config.disk_enabled,
            cold_predicate=cold_predicate,
            tracer=tracer,
            replica=node_id.replica,
        )
        self.input_log = InputLog()
        self.scheduler = self.scheduler_class(
            sim,
            node_id,
            catalog,
            config,
            registry,
            self.engine,
            send=self.send,
            on_complete=on_complete,
            record_trace=record_trace,
            tracer=tracer,
        )
        self.sequencer = Sequencer(
            sim,
            node_id,
            catalog,
            config,
            send=self.send,
            input_log=self.input_log,
            engine=self.engine,
            replication=self._make_replication(),
            tracer=tracer,
        )
        if config.admission_policy != "none" and self.sequencer.accepts_input:
            self.sequencer.admission = AdmissionController(
                sim, node_id, config, self.sequencer, self.send
            )
        network.register(self.address, self.handle_message)
        self._checkpointing = False

    def _make_replication(self):
        mode = self.config.replication_mode
        if mode == "none":
            return NoReplication()
        if mode == "async":
            return AsyncReplication()
        if mode == "paxos":
            return PaxosReplication()
        raise NetworkError(f"unknown replication mode {mode!r}")

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self.sequencer.start()

    def crash(self) -> None:
        """Fail-stop: deaf (address unregistered, traffic to it dropped)
        and frozen (owner-tagged timers park in the kernel until restart).

        Sends attempted while crashed are *parked*, not dropped: the
        simulated processes that produce them are deterministic, so a
        real recovery replay would regenerate byte-identical messages —
        flushing them at restart is equivalent and far cheaper.
        """
        if self.crashed:
            return
        self.crashed = True
        self.network.unregister(self.address)
        self.sim.suspend_owner(self.address)

    def restart(self) -> None:
        """Rejoin the cluster: re-register, thaw parked timers, flush
        parked sends.

        State recovery (re-learning missed input-log entries and lost
        remote reads from healthy peers) is orchestrated by
        :meth:`repro.core.cluster.CalvinCluster.resync_node`.
        """
        if not self.crashed:
            return
        self.crashed = False
        self.network.register(self.address, self.handle_message)
        self.sim.resume_owner(self.address)
        held, self._held_sends = self._held_sends, []
        for dst, message, size in held:
            self.network.send(self.address, dst, message, size)

    @property
    def store(self):
        return self.engine.store

    def send(self, dst: Any, message: Any, size: int = 256) -> None:
        if self.crashed:
            self.suppressed_sends += 1
            self._held_sends.append((dst, message, size))
            return
        self.network.send(self.address, dst, message, size)

    # -- message routing ---------------------------------------------------------

    def handle_message(self, src: Any, message: Any) -> None:
        # Ordered by arrival frequency: one submit per transaction, then
        # remote reads (multipartition only), then per-epoch subbatches.
        if isinstance(message, ClientSubmit):
            self.sequencer.submit(message.txn)
        elif isinstance(message, RemoteRead):
            self.scheduler.receive_remote_read(message)
        elif isinstance(message, SubBatch):
            self.scheduler.receive_subbatch(message)
        elif isinstance(message, ReplicaBatch):
            self.sequencer.handle_replica_batch(message)
        elif isinstance(message, _PAXOS_MESSAGES):
            # src is a node address ("node", replica, partition); the
            # Paxos member id within a partition group is the replica.
            self.sequencer.handle_paxos(src[1], message)
        elif isinstance(message, PrefetchRequest):
            for key in message.keys:
                if self.engine.is_cold(key):
                    self.engine.fetch(key)
        elif isinstance(message, WriteSetApply):
            self.scheduler.receive_writeset(message)
        elif isinstance(message, ReadOnlyQuery):
            self.sim.process(self._serve_read_only(src, message))
        elif isinstance(message, TxnReply):  # pragma: no cover - defensive
            raise NetworkError(f"TxnReply misrouted to node {self.node_id}")
        else:
            raise NetworkError(f"unhandled message at {self.node_id}: {message!r}")

    def _serve_read_only(self, client: Any, query: ReadOnlyQuery):
        """Serve a replica-local read-only query from the current local
        snapshot, outside the sequenced pipeline (no locks: Calvin's
        determinism makes any committed prefix a consistent snapshot).
        The reply carries the scheduler's epoch watermark so the client
        can bound its staleness.
        """
        costs = self.config.costs
        yield self.scheduler.workers.request()
        yield self.sim.timeout(
            costs.txn_base_cpu + costs.read_cpu * len(query.keys)
        )
        values = {key: self.store.get(key) for key in query.keys}
        epoch = self.scheduler.next_epoch
        self.scheduler.workers.release()
        reply = ReadOnlyReply(query.query_id, self.node_id.partition, values, epoch)
        self.send(client, reply, reply.size_estimate())

    # -- checkpointing (Section 5) -------------------------------------------------

    def begin_checkpoint(self, mode: str, epoch: int) -> Event:
        """Checkpoint this partition at the epoch-``epoch`` boundary.

        Returns an event that triggers with the finished
        :class:`CheckpointSnapshot`. The scheduler is paused just before
        admitting epoch ``epoch``; once quiesced, the snapshot point is
        exactly "all transactions sequenced before ``epoch``".
        """
        if self._checkpointing:
            raise StorageError(f"{self.node_id}: checkpoint already in progress")
        if mode not in ("naive", "zigzag"):
            raise StorageError(f"unknown checkpoint mode {mode!r}")
        self._checkpointing = True
        done = Event(self.sim)
        quiesced = self.scheduler.pause_before_epoch(epoch)
        if mode == "naive":
            quiesced.add_callback(lambda _e: self._run_naive(epoch, done))
        else:
            quiesced.add_callback(lambda _e: self._run_zigzag(epoch, done))
        return done

    def _record_checkpoint_span(self, start: float, mode: str) -> None:
        if self.tracer.enabled:
            self.tracer.record(
                SpanKind.CHECKPOINT, start, self.sim.now,
                cat=CAT_NODE,
                replica=self.node_id.replica,
                partition=self.node_id.partition,
                detail=mode,
            )

    def _run_naive(self, epoch: int, done: Event) -> None:
        checkpointer = NaiveCheckpointer(self.store, self.node_id.partition)
        duration = checkpointer.dump_duration(self.config.costs.checkpoint_record_cpu)
        snapshot = checkpointer.capture(epoch, self.sim.now)
        # The node stays frozen for the whole dump, then resumes.
        self.sim.schedule(duration, self._finish_naive, snapshot, done)

    def _finish_naive(self, snapshot: CheckpointSnapshot, done: Event) -> None:
        snapshot.finished_at = self.sim.now
        self._record_checkpoint_span(snapshot.started_at, "naive")
        self.scheduler.resume()
        self._checkpointing = False
        done.succeed(snapshot)

    def _run_zigzag(self, epoch: int, done: Event) -> None:
        checkpointer = ZigZagCheckpointer(self.store, self.node_id.partition)
        checkpointer.begin(epoch, self.sim.now)
        self.scheduler.resume()  # processing continues during the dump
        self.sim.process(self._zigzag_dumper(checkpointer, done))

    def _zigzag_dumper(self, checkpointer: ZigZagCheckpointer, done: Event):
        record_cpu = self.config.costs.checkpoint_record_cpu
        dump_start = self.sim.now
        while checkpointer.pending:
            # The dumper competes with transaction execution for a
            # worker slot — this is the Figure 8 throughput dip.
            yield self.scheduler.workers.request()
            emitted = checkpointer.dump_slice(_CHECKPOINT_SLICE)
            yield self.sim.timeout(max(1e-9, emitted * record_cpu))
            self.scheduler.workers.release()
        snapshot = checkpointer.finish(self.sim.now)
        self._record_checkpoint_span(dump_start, "zigzag")
        self._checkpointing = False
        done.succeed(snapshot)

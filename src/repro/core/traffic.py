"""Open-loop traffic: client profiles, arrival processes, admission control.

The paper's headline numbers are statements about a system *under
offered load*: throughput scales until the hardware saturates, then
admission at the sequencer front-end decides what happens to the excess.
Closed-loop clients (one outstanding request each) can only approach
saturation asymptotically; this module adds the other half of the
methodology:

- :class:`ClientProfile` — one typed description of a client population,
  shared by closed-loop and open-loop clients, the benchmark harness and
  the CLI flags (replaces the old ``add_clients(n, **kwargs)`` soup).
- :class:`OpenLoopClient` — submits transactions on an *arrival process*
  (Poisson, uniform or bursty, driven by the deterministic sim RNG)
  regardless of how many are still outstanding, so offered load is an
  independent variable.
- :class:`AdmissionController` — a bounded intake queue in front of each
  input sequencer, drained at a fixed per-epoch budget, with a
  configurable overflow policy (``queue`` | ``shed`` | ``backpressure``).

Everything is deterministic: arrivals come from named RNG streams,
admission decisions are pure functions of queue state, and the
backpressure retry-after hint is computed from the backlog — the same
seed reproduces the same shed/queue decisions and the same trace digest.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, TYPE_CHECKING, Tuple

from repro.errors import ConfigError
from repro.net.messages import ClientSubmit, TxnReply
from repro.partition.catalog import NodeId, client_address, node_address
from repro.txn.ollp import reconnoiter
from repro.txn.result import TransactionResult, TxnStatus
from repro.txn.transaction import Transaction
from repro.workloads.base import TxnSpec, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ClusterConfig
    from repro.core.cluster import CalvinCluster
    from repro.sequencer.sequencer import Sequencer
    from repro.sim.kernel import Simulator

_ARRIVALS = ("poisson", "uniform", "burst")
_MODES = ("closed", "open")
_MAX_OLLP_RESTARTS = 10


@dataclass(frozen=True)
class ClientProfile:
    """A typed description of one client population.

    ``mode="closed"`` clients keep one transaction outstanding each
    (``think_time`` pacing, ``max_txns`` bound) — the original
    behaviour. ``mode="open"`` clients submit on an arrival process at
    ``rate`` transactions per second per client, independent of
    completions; ``max_txns`` then bounds *arrivals*.
    """

    per_partition: int = 1
    mode: str = "closed"
    workload: Optional[Workload] = None
    think_time: float = 0.0
    max_txns: Optional[int] = None
    # Open-loop knobs.
    arrival: str = "poisson"       # poisson | uniform | burst
    rate: float = 100.0            # offered txns/sec per client
    burst_size: int = 8            # arrivals per burst (arrival="burst")
    burst_period: Optional[float] = None  # default: burst_size / rate
    # Resubmit after a backpressure rejection's retry-after hint.
    retry_rejected: bool = True

    def validate(self) -> None:
        if self.per_partition < 0:
            raise ConfigError("per_partition must be >= 0")
        if self.mode not in _MODES:
            raise ConfigError(f"unknown client mode {self.mode!r}; use {_MODES}")
        if self.think_time < 0:
            raise ConfigError("think_time must be >= 0")
        if self.max_txns is not None and self.max_txns < 0:
            raise ConfigError("max_txns must be >= 0")
        if self.mode == "open":
            if self.arrival not in _ARRIVALS:
                raise ConfigError(
                    f"unknown arrival process {self.arrival!r}; use {_ARRIVALS}"
                )
            if self.rate <= 0:
                raise ConfigError("open-loop clients need rate > 0")
            if self.arrival == "burst" and self.burst_size < 1:
                raise ConfigError("burst_size must be >= 1")
            if self.burst_period is not None and self.burst_period <= 0:
                raise ConfigError("burst_period must be positive")

    def effective_burst_period(self) -> float:
        """Burst spacing preserving the configured mean ``rate``."""
        if self.burst_period is not None:
            return self.burst_period
        return self.burst_size / self.rate


class OpenLoopClient:
    """Submits transactions on an arrival process, completions be damned.

    Offered load is an independent variable: the client schedules its
    next arrival from its RNG stream whether or not earlier requests
    have completed (or were shed). Latency is recorded per client into
    the cluster's metrics registry, so p50/p95/p99 histograms are
    available per client and in aggregate.
    """

    def __init__(
        self,
        cluster: "CalvinCluster",
        partition: int,
        index: int,
        profile: ClientProfile,
        workload: Workload,
    ):
        self.cluster = cluster
        self.partition = partition
        self.index = index
        self.profile = profile
        self.workload = workload
        self.max_txns = profile.max_txns
        self.address = client_address(0, index)
        # A dedicated stream family: open-loop arrivals must never
        # perturb the draws existing closed-loop clients see.
        self.rng = cluster.rngs.stream("openloop", index)
        self._target = node_address(NodeId(0, partition))
        self._inflight: Dict[int, Tuple[TxnSpec, int]] = {}
        self._burst_position = 0
        self._pending_retries = 0
        self._started = False
        self._stopped = False
        # Tallies (offered = arrivals generated, incl. retries).
        self.arrivals = 0
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.retried = 0
        self.stale_replies = 0
        self.latency = cluster.metrics_registry.histogram(
            f"client.open{index}.latency"
        )
        cluster.network.register(self.address, self._on_message)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self._started or self._stopped:
            return
        self._started = True
        self.cluster.sim.schedule(self._next_gap(), self._arrive)

    def stop(self) -> None:
        """Stop generating new arrivals (outstanding requests drain)."""
        self._stopped = True

    def redirect(self, partition: int) -> None:
        """Re-home this client onto another origin partition.

        The control plane schedules the redirect at the retiring
        origin's hand-off time, so every same-seed run moves the same
        clients at the same instant. Replies for in-flight requests
        still arrive (the reply path uses the client address).
        """
        self.partition = partition
        self._target = node_address(NodeId(0, partition))

    @property
    def finished(self) -> bool:
        """All bounded arrivals generated (never True when unbounded)."""
        if self._stopped:
            return True
        return self.max_txns is not None and self.arrivals >= self.max_txns

    @property
    def idle(self) -> bool:
        """Nothing outstanding, no retries pending, no arrivals to come."""
        return self.finished and not self._inflight and self._pending_retries == 0

    # -- arrival process ---------------------------------------------------

    def _next_gap(self) -> float:
        profile = self.profile
        if profile.arrival == "poisson":
            return self.rng.expovariate(profile.rate)
        if profile.arrival == "uniform":
            return 1.0 / profile.rate
        # burst: burst_size arrivals back-to-back, then one long gap.
        self._burst_position += 1
        if self._burst_position % profile.burst_size == 0:
            return profile.effective_burst_period()
        return 0.0

    def _arrive(self) -> None:
        if self._stopped or (
            self.max_txns is not None and self.arrivals >= self.max_txns
        ):
            return
        self.arrivals += 1
        spec = self.workload.generate(self.rng, self.partition, self.cluster.catalog)
        self._submit(spec, restarts=0)
        if self.max_txns is None or self.arrivals < self.max_txns:
            self.cluster.sim.schedule(self._next_gap(), self._arrive)

    # -- submission --------------------------------------------------------

    def _submit(self, spec: TxnSpec, restarts: int) -> None:
        cluster = self.cluster
        read_set, write_set, token = spec.read_set, spec.write_set, None
        if spec.dependent:
            procedure = cluster.registry.get(spec.procedure)
            footprint = reconnoiter(procedure, cluster.analytics_read, spec.args)
            read_set = spec.read_set | footprint.read_set
            write_set = spec.write_set | footprint.write_set
            token = footprint.token
        txn = Transaction.create(
            txn_id=cluster.next_txn_id(),
            procedure=spec.procedure,
            args=spec.args,
            read_set=read_set,
            write_set=write_set,
            origin_partition=self.partition,
            client=self.address,
            dependent=spec.dependent,
            footprint_token=token,
            submit_time=cluster.sim.now,
            restarts=restarts,
        )
        self._inflight[txn.txn_id] = (spec, restarts)
        self.submitted += 1
        message = ClientSubmit(txn)
        cluster.network.send(self.address, self._target, message, message.size_estimate())

    def _resubmit(self, spec: TxnSpec, restarts: int) -> None:
        self._pending_retries -= 1
        self._submit(spec, restarts)

    # -- replies -----------------------------------------------------------

    def _on_message(self, src: Any, message: Any) -> None:
        assert isinstance(message, TxnReply), f"open-loop client got {message!r}"
        result = message.result
        entry = self._inflight.pop(result.txn_id, None)
        if entry is None:
            # Duplicate/reordered delivery from a faulty network.
            self.stale_replies += 1
            return
        spec, restarts = entry
        cluster = self.cluster
        if result.status is TxnStatus.REJECTED:
            retry_after = result.retry_after
            if retry_after > 0 and self.profile.retry_rejected and not self._stopped:
                self.retried += 1
                self._pending_retries += 1
                cluster.sim.schedule(retry_after, self._resubmit, spec, restarts)
            else:
                self.rejected += 1
            return
        if result.status is TxnStatus.RESTART and restarts < _MAX_OLLP_RESTARTS:
            # Stale OLLP footprint: reconnoiter again and resubmit.
            self._pending_retries += 1
            cluster.sim.schedule(0.0, self._resubmit, spec, restarts + 1)
            return
        self.completed += 1
        if cluster.sim.now >= cluster.metrics.window_start:
            latency = result.latency
            cluster.metrics.record_latency(latency)
            self.latency.add(latency)

    # -- introspection -----------------------------------------------------

    def latency_stats(self) -> Dict[str, float]:
        """Per-client latency percentiles (measurement window only)."""
        return {
            "count": self.latency.count,
            "p50": self.latency.percentile(50),
            "p95": self.latency.percentile(95),
            "p99": self.latency.percentile(99),
        }


class AdmissionController:
    """A bounded intake queue in front of one input sequencer.

    The controller admits at most ``admission_epoch_budget`` transactions
    into each sequencing epoch. Arrivals beyond the budget wait in a
    FIFO queue of ``admission_queue_capacity``; the queue drains (budget
    per epoch) at every epoch tick. What happens to an arrival while the
    queue is full is the *policy*:

    - ``queue``: tail-drop silently — the request is lost and the client
      learns nothing (a router dropping packets).
    - ``shed``: reject immediately with a ``TxnStatus.REJECTED`` reply.
    - ``backpressure``: reject with a deterministic retry-after hint,
      ``epoch_duration * (1 + depth // budget)`` — the time by which the
      present backlog will have drained.

    All decisions are pure functions of (policy, queue depth, epoch
    budget), so the same seed reproduces the same admit/shed sequence.
    """

    def __init__(
        self,
        sim: "Simulator",
        node_id: NodeId,
        config: "ClusterConfig",
        sequencer: "Sequencer",
        send,
    ):
        if config.admission_policy == "none":  # pragma: no cover - guarded by caller
            raise ConfigError("AdmissionController requires a non-none policy")
        self.sim = sim
        self.node_id = node_id
        self.policy = config.admission_policy
        self.capacity = config.admission_queue_capacity
        self.budget = int(config.admission_epoch_budget or 0)
        self.epoch_duration = config.epoch_duration
        self.sequencer = sequencer
        self.send = send
        self._queue: Deque[Transaction] = deque()
        self._admitted_this_epoch = 0
        # Tallies (plain ints on the hot path; gauges read them lazily).
        self.offered = 0
        self.admitted = 0
        self.queued = 0
        self.shed = 0
        self.dropped = 0
        self.backpressured = 0
        self.peak_queue_depth = 0

    # -- intake ------------------------------------------------------------

    def offer(self, txn: Transaction) -> None:
        """Admission decision for one deduplicated client request."""
        self.offered += 1
        if self._admitted_this_epoch < self.budget and not self._queue:
            self._admit(txn)
            return
        if len(self._queue) < self.capacity:
            self._queue.append(txn)
            self.queued += 1
            depth = len(self._queue)
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth
            return
        # Queue full: overflow per policy.
        if self.policy == "queue":
            self.dropped += 1
        elif self.policy == "shed":
            self.shed += 1
            self._reject(txn, retry_after=None)
        else:  # backpressure
            self.backpressured += 1
            self._reject(txn, retry_after=self.retry_after())

    def retry_after(self) -> float:
        """Deterministic backpressure hint: when the backlog has drained."""
        backlog_epochs = 1 + len(self._queue) // max(1, self.budget)
        return self.epoch_duration * backlog_epochs

    def _admit(self, txn: Transaction) -> None:
        self.admitted += 1
        self._admitted_this_epoch += 1
        self.sequencer.accept(txn)

    def _reject(self, txn: Transaction, retry_after: Optional[float]) -> None:
        result = TransactionResult(
            txn_id=txn.txn_id,
            status=TxnStatus.REJECTED,
            value=retry_after if retry_after is not None else "admission shed",
            submit_time=txn.submit_time,
            complete_time=self.sim.now,
            restarts=txn.restarts,
        )
        message = TxnReply(result)
        self.send(txn.client, message, message.size_estimate())

    # -- epoch hook (called by the sequencer after it cuts each batch) -----

    def on_epoch_tick(self) -> None:
        """Reset the per-epoch budget and drain the queue into it."""
        self._admitted_this_epoch = 0
        queue = self._queue
        while queue and self._admitted_this_epoch < self.budget:
            self._admit(queue.popleft())

    def drain(self) -> Tuple[Transaction, ...]:
        """Empty the queue and return its contents in FIFO order.

        Used by a retiring sequencer's hand-off: queued-but-unadmitted
        transactions are forwarded to the successor origin instead of
        being stranded on a partition that no longer sequences input.
        """
        leftovers = tuple(self._queue)
        self._queue.clear()
        return leftovers

    # -- observability -----------------------------------------------------

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def register_metrics(self, registry, prefix: str) -> None:
        """Expose intake tallies as gauges in ``registry``."""
        registry.gauge(f"{prefix}.admission.offered", lambda: self.offered)
        registry.gauge(f"{prefix}.admission.admitted", lambda: self.admitted)
        registry.gauge(f"{prefix}.admission.queued", lambda: self.queued)
        registry.gauge(f"{prefix}.admission.shed", lambda: self.shed)
        registry.gauge(f"{prefix}.admission.dropped", lambda: self.dropped)
        registry.gauge(
            f"{prefix}.admission.backpressured", lambda: self.backpressured
        )
        registry.gauge(f"{prefix}.admission.queue_depth", lambda: self.queue_depth)
        registry.gauge(
            f"{prefix}.admission.peak_queue_depth", lambda: self.peak_queue_depth
        )

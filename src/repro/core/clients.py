"""Closed-loop benchmark clients.

Each client keeps exactly one transaction outstanding against its local
node (replica 0), matching how the paper saturates the system. Dependent
transactions go through OLLP reconnaissance before submission and are
re-reconnoitered and resubmitted when the execution-time recheck reports
a stale footprint.
"""

from __future__ import annotations

from typing import Any, Optional, TYPE_CHECKING

from repro.net.messages import ClientSubmit, TxnReply
from repro.partition.catalog import NodeId, client_address, node_address
from repro.txn.ollp import reconnoiter
from repro.txn.result import TxnStatus
from repro.txn.transaction import Transaction
from repro.workloads.base import TxnSpec, Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cluster import CalvinCluster

_MAX_OLLP_RESTARTS = 10


class ClosedLoopClient:
    """One outstanding transaction at a time, zero think time by default."""

    def __init__(
        self,
        cluster: "CalvinCluster",
        partition: int,
        index: int,
        workload: Workload,
        think_time: float = 0.0,
        max_txns: Optional[int] = None,
        retry_backoff: float = 0.0,
        max_restarts: int = _MAX_OLLP_RESTARTS,
    ):
        self.cluster = cluster
        self.partition = partition
        self.workload = workload
        self.think_time = think_time
        self.max_txns = max_txns
        self.retry_backoff = retry_backoff
        self.max_restarts = max_restarts
        self.address = client_address(0, index)
        self.rng = cluster.rngs.stream("client", index)
        self._target = node_address(NodeId(0, partition))
        self._inflight: Optional[TxnSpec] = None
        self._inflight_txn_id: Optional[int] = None
        self._restarts = 0
        self.stale_replies = 0
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self._pending_resubmits = 0
        cluster.network.register(self.address, self._on_message)

    def start(self) -> None:
        self._submit_new()

    def redirect(self, partition: int) -> None:
        """Re-home this client onto another origin partition.

        Scheduled by the control plane when this client's origin leaves
        the cluster; the next submission targets the new origin.
        """
        self.partition = partition
        self._target = node_address(NodeId(0, partition))

    @property
    def idle(self) -> bool:
        """True when nothing is outstanding and no resubmission is due."""
        return (
            self._inflight is None
            and self._pending_resubmits == 0
            and self.finished
        )

    @property
    def finished(self) -> bool:
        return self.max_txns is not None and self.completed >= self.max_txns

    # -- submission ---------------------------------------------------------

    def _submit_new(self) -> None:
        if self.finished:
            return
        spec = self.workload.generate(self.rng, self.partition, self.cluster.catalog)
        self._restarts = 0
        self._submit(spec)

    def _submit(self, spec: TxnSpec) -> None:
        cluster = self.cluster
        read_set, write_set, token = spec.read_set, spec.write_set, None
        if spec.dependent:
            procedure = cluster.registry.get(spec.procedure)
            footprint = reconnoiter(procedure, cluster.analytics_read, spec.args)
            read_set = spec.read_set | footprint.read_set
            write_set = spec.write_set | footprint.write_set
            token = footprint.token
        txn = Transaction.create(
            txn_id=cluster.next_txn_id(),
            procedure=spec.procedure,
            args=spec.args,
            read_set=read_set,
            write_set=write_set,
            origin_partition=self.partition,
            client=self.address,
            dependent=spec.dependent,
            footprint_token=token,
            submit_time=cluster.sim.now,
            restarts=self._restarts,
        )
        self._inflight = spec
        self._inflight_txn_id = txn.txn_id
        self.submitted += 1
        message = ClientSubmit(txn)
        cluster.network.send(self.address, self._target, message, message.size_estimate())

    def _resubmit_rejected(self, spec: TxnSpec) -> None:
        self._pending_resubmits -= 1
        self._submit(spec)

    # -- replies --------------------------------------------------------------

    def _on_message(self, src: Any, message: Any) -> None:
        assert isinstance(message, TxnReply), f"client got {message!r}"
        result = message.result
        if result.txn_id != self._inflight_txn_id:
            # Duplicate or reordered reply from a faulty network for a
            # request this closed-loop client already accounted for.
            self.stale_replies += 1
            return
        cluster = self.cluster
        now = cluster.sim.now
        if result.status is TxnStatus.REJECTED:
            # Admission control refused the request before sequencing.
            # Resubmit the same spec (fresh txn id — the sequencer's
            # dedupe set already saw the old one) after the retry-after
            # hint, or after one epoch for a plain shed, so a throttled
            # closed-loop client stays live without spinning.
            self.rejected += 1
            spec = self._inflight
            self._inflight = None
            self._inflight_txn_id = None
            delay = result.retry_after or cluster.config.epoch_duration
            self._pending_resubmits += 1
            cluster.sim.schedule(delay, self._resubmit_rejected, spec)
            return
        if now >= cluster.metrics.window_start:
            cluster.metrics.record_latency(result.latency)
        spec = self._inflight
        self._inflight = None
        self._inflight_txn_id = None
        self.completed += 1

        if (
            result.status is TxnStatus.RESTART
            and spec is not None
            and self._restarts < self.max_restarts
        ):
            # Stale OLLP footprint (Calvin) or wait-die death (baseline):
            # resubmit, optionally after a backoff.
            self._restarts += 1
            if self.retry_backoff > 0:
                cluster.sim.schedule(self.retry_backoff, self._submit, spec)
            else:
                self._submit(spec)
            return
        if self.think_time > 0:
            cluster.sim.schedule(self.think_time, self._submit_new)
        else:
            self._submit_new()

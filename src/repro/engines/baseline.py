"""The ``baseline`` engine: strict 2PL with wait-die plus 2PC."""

from __future__ import annotations

from typing import Any, Optional

from repro.engines.base import ExecutionEngine


class BaselineEngine(ExecutionEngine):
    name = "baseline"
    # Lock races decide the serialization order, so only *a* serializable
    # outcome is promised — not Calvin's pre-agreed one.
    deterministic_order = False

    def build(self, config, workload: Optional[Any] = None, **kwargs: Any):
        from repro.baseline.cluster import BaselineCluster

        return BaselineCluster(self.prepare_config(config), workload=workload, **kwargs)

"""Cross-engine equivalence oracle: same schedule, three engines.

Closed-loop clients cannot prove engine equivalence — their submit
times depend on reply latencies, so different engines would sequence
different global orders and (on non-commutative workloads) legitimately
reach different final states. The oracle therefore *scripts* the input:
one pre-generated stream of ``(txn_id, spec, partition, submit_time)``
tuples, drawn from a dedicated seeded RNG, injected at fixed virtual
times into every engine. Same schedule + same epoch boundaries ⇒ the
deterministic engines (``core``, ``star``) agree on the global sequence
and must produce **identical** terminal statuses and final states.

The lock-race baseline makes a weaker promise: every scripted
transaction reaches a terminal outcome, and the completion order is a
valid serialization order (under strict 2PL + 2PC the commit point
precedes lock release), so replaying the completion history serially
must reproduce the baseline's exact final state and statuses.

Scope: dependent (OLLP) specs are skipped at generation time — their
reconnaissance reads live state, which differs across engines at a
fixed virtual time, and the baseline rejects them outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Any, Dict, List, Optional, Sequence

from repro.config import ClusterConfig
from repro.core.checkers import reference_execution
from repro.engines import get_engine
from repro.errors import ConfigError, ConsistencyError
from repro.net.messages import ClientSubmit
from repro.partition.catalog import Catalog
from repro.txn.result import TxnStatus
from repro.txn.transaction import Transaction
from repro.workloads.base import TxnSpec, Workload

# Virtual-time step the drive loops advance by between progress checks.
_STEP = 0.05
_MAX_SPEC_ATTEMPTS = 1000


@dataclass(frozen=True)
class ScriptedSubmission:
    """One pre-generated transaction request."""

    txn_id: int
    partition: int
    submit_time: float
    spec: TxnSpec


@dataclass
class EngineRun:
    """Outcome of one engine's execution of a scripted schedule."""

    engine: str
    cluster: Any
    final_state: Dict[Any, Any]
    # txn_id -> terminal status (RESTART retries collapse to the final one).
    statuses: Dict[int, TxnStatus]

    @property
    def committed(self) -> int:
        return sum(
            1 for status in self.statuses.values() if status is TxnStatus.COMMITTED
        )


def scripted_schedule(
    workload: Workload,
    config: ClusterConfig,
    txns_per_partition: int = 30,
    horizon: float = 0.25,
    seed: int = 0,
) -> List[ScriptedSubmission]:
    """Pre-generate one engine-independent submission schedule."""
    catalog = Catalog(config, workload.build_partitioner(config.num_partitions))
    # A dedicated stream: engines never draw from it, so the schedule is
    # identical no matter which engine consumes it.
    rng = Random((seed * 2654435761 + 97) % (2**31))  # det: allow[DET001] seeded schedule stream deliberately outside RngStreams so no engine shares it
    schedule: List[ScriptedSubmission] = []
    txn_id = 0
    for partition in range(config.num_partitions):
        times = sorted(rng.uniform(0.0, horizon) for _ in range(txns_per_partition))
        for submit_time in times:
            spec = workload.generate(rng, partition, catalog)
            for _ in range(_MAX_SPEC_ATTEMPTS):
                if not spec.dependent:
                    break
                spec = workload.generate(rng, partition, catalog)
            else:
                raise ConfigError(
                    f"workload {workload.name} generates only dependent "
                    "transactions; the equivalence oracle cannot script it"
                )
            txn_id += 1
            schedule.append(ScriptedSubmission(txn_id, partition, submit_time, spec))
    schedule.sort(key=lambda item: (item.submit_time, item.txn_id))
    return schedule


def _build_txn(item: ScriptedSubmission, restarts: int = 0) -> Transaction:
    return Transaction.create(
        txn_id=item.txn_id,
        procedure=item.spec.procedure,
        args=item.spec.args,
        read_set=item.spec.read_set,
        write_set=item.spec.write_set,
        origin_partition=item.partition,
        client=None,
        submit_time=item.submit_time,
        restarts=restarts,
    )


def run_scripted(
    engine_name: str,
    config: ClusterConfig,
    workload: Workload,
    schedule: Sequence[ScriptedSubmission],
    timeout: float = 60.0,
) -> EngineRun:
    """Execute ``schedule`` under ``engine_name``; collect the outcome."""
    engine = get_engine(engine_name)
    cluster = engine.build(config, workload, record_history=True)
    cluster.load_workload_data()
    if engine_name == "baseline":
        return _run_baseline(cluster, schedule, timeout)
    return _run_sequenced(engine_name, cluster, schedule, timeout)


def _run_sequenced(engine_name, cluster, schedule, timeout) -> EngineRun:
    cluster.start()
    for item in schedule:
        node = cluster.node(0, item.partition)
        cluster.sim.schedule_at(
            item.submit_time, node.handle_message, None, ClientSubmit(_build_txn(item))
        )
    # Scripted transactions have no client, so nothing resubmits: one
    # history entry per submission is completion.
    deadline = cluster.sim.now + timeout
    while len(cluster.history) < len(schedule):
        if cluster.sim.now >= deadline:
            raise ConsistencyError(
                f"{engine_name}: only {len(cluster.history)}/{len(schedule)} "
                f"scripted transactions completed within {timeout}s"
            )
        cluster.sim.run(until=cluster.sim.now + _STEP)
    statuses = {txn.txn_id: status for _seq, txn, status in cluster.history}
    return EngineRun(engine_name, cluster, cluster.final_state(), statuses)


def _run_baseline(cluster, schedule, timeout) -> EngineRun:
    by_id = {item.txn_id: item for item in schedule}
    for item in schedule:
        node = cluster.nodes[item.partition]
        cluster.sim.schedule_at(
            item.submit_time, node.handle_message, None, ClientSubmit(_build_txn(item))
        )
    backoff = cluster.baseline.retry_backoff or cluster.config.epoch_duration
    deadline = cluster.sim.now + timeout
    terminal = 0
    processed = 0
    while terminal < len(schedule):
        if cluster.sim.now >= deadline:
            raise ConsistencyError(
                f"baseline: only {terminal}/{len(schedule)} scripted "
                f"transactions reached a terminal outcome within {timeout}s"
            )
        cluster.sim.run(until=cluster.sim.now + _STEP)
        while processed < len(cluster.history):
            _index, txn, status = cluster.history[processed]
            processed += 1
            if status is TxnStatus.RESTART:
                # Wait-die victim. A closed-loop client would resubmit;
                # the oracle does it here (same id, bumped restart count).
                item = by_id[txn.txn_id]
                retry = _build_txn(item, restarts=txn.restarts + 1)
                node = cluster.nodes[item.partition]
                cluster.sim.schedule(
                    backoff, node.handle_message, None, ClientSubmit(retry)
                )
            else:
                terminal += 1
    statuses: Dict[int, TxnStatus] = {}
    for _index, txn, status in cluster.sorted_history():
        if status is not TxnStatus.RESTART:
            statuses[txn.txn_id] = status
    return EngineRun("baseline", cluster, cluster.final_state(), statuses)


def check_identical_outcome(reference: EngineRun, other: EngineRun) -> None:
    """Both runs committed the same effects: identical statuses + state."""
    if reference.statuses != other.statuses:
        diff = [
            txn_id
            for txn_id in sorted(set(reference.statuses) | set(other.statuses))
            if reference.statuses.get(txn_id) is not other.statuses.get(txn_id)
        ]
        raise ConsistencyError(
            f"{reference.engine} vs {other.engine}: terminal statuses differ "
            f"for txn ids {diff[:5]} ({len(diff)} total)"
        )
    if reference.final_state != other.final_state:
        keys_a, keys_b = reference.final_state, other.final_state
        differing = [
            key
            for key in keys_a.keys() | keys_b.keys()
            if keys_a.get(key) != keys_b.get(key)
        ]
        raise ConsistencyError(
            f"{reference.engine} vs {other.engine}: final states differ on "
            f"{len(differing)} keys (e.g. {sorted(map(repr, differing))[:3]})"
        )


def check_serializable_outcome(run: EngineRun) -> None:
    """The run's own completion history serially explains its state.

    For ``core``/``star`` the history order is the agreed global
    sequence; for ``baseline`` it is the completion order, which strict
    2PL makes a valid serialization order.
    """
    # Wait-die victims (baseline RESTARTs on non-dependent txns) applied
    # nothing and were re-run later — drop them from the replay. OLLP
    # RESTARTs on dependent txns stay: reference_execution re-derives them.
    history = [
        entry
        for entry in run.cluster.sorted_history()
        if entry[2] is not TxnStatus.RESTART or entry[1].dependent
    ]
    state, statuses = reference_execution(
        run.cluster.initial_data, history, run.cluster.registry
    )
    reported = [status for _seq, _txn, status in history]
    if statuses != reported:
        raise ConsistencyError(
            f"{run.engine}: serial replay statuses diverge from reported ones"
        )
    if state != run.final_state:
        differing = [
            key
            for key in state.keys() | run.final_state.keys()
            if state.get(key) != run.final_state.get(key)
        ]
        raise ConsistencyError(
            f"{run.engine}: serial replay of the completion history does not "
            f"reproduce the final state ({len(differing)} keys differ)"
        )


def compare_engines(
    workload: Workload,
    config: ClusterConfig,
    engines: Sequence[str] = ("core", "star", "baseline"),
    txns_per_partition: int = 30,
    horizon: float = 0.25,
    seed: int = 0,
    timeout: float = 60.0,
    schedule: Optional[Sequence[ScriptedSubmission]] = None,
) -> Dict[str, EngineRun]:
    """Run one scripted schedule under every engine and cross-check.

    Deterministic-order engines are checked pairwise-identical against
    the first of them; every engine is additionally checked
    self-serializable. Returns the per-engine runs for further asserts.
    """
    if schedule is None:
        schedule = scripted_schedule(
            workload, config, txns_per_partition=txns_per_partition,
            horizon=horizon, seed=seed,
        )
    runs = {
        name: run_scripted(name, config, workload, schedule, timeout=timeout)
        for name in engines
    }
    deterministic = [
        runs[name] for name in engines if get_engine(name).deterministic_order
    ]
    for other in deterministic[1:]:
        check_identical_outcome(deterministic[0], other)
    for run in runs.values():
        check_serializable_outcome(run)
    return runs


__all__ = [
    "EngineRun",
    "ScriptedSubmission",
    "check_identical_outcome",
    "check_serializable_outcome",
    "compare_engines",
    "run_scripted",
    "scripted_schedule",
]

"""The `ExecutionEngine` seam: one contract, three transaction processors.

An execution engine is a *strategy for turning a stream of transaction
requests into serializable state changes* on the shared substrate (the
deterministic simulator, the network model, the partitioned storage
engine, the workload generators, the obs stack). The repository ships
three:

``core``
    Calvin's deterministic scheduler (the paper): epoch-batched global
    pre-ordering, in-order lock acquisition, distributed execution with
    remote-read push.
``baseline``
    The System R*-style comparison point: strict 2PL with wait-die,
    two-phase commit with forced log writes.
``star``
    STAR-style phase switching (arXiv:1811.02059): single-partition
    transactions execute locally under Calvin's deterministic locking;
    multipartition transactions drain on a designated master node
    during single-master phases, coordination-free.

The engine object itself is tiny — a named factory. The real contract
is on the **cluster** it builds, which must expose the surface the
clients, benchmark harness, and equivalence oracle drive:

==================  =====================================================
attribute           meaning
==================  =====================================================
``config``          the validated :class:`repro.config.ClusterConfig`
``sim``             the owned :class:`repro.sim.kernel.Simulator`
``metrics``         a :class:`repro.core.metrics.Metrics`
``load(data)``      bulk-load initial records into every partition
``load_workload_data()``  load ``workload.initial_data``
``add_clients(p)``  create a client population from a ClientProfile
``run(d, warmup)``  drive for ``d`` seconds of virtual time; RunReport
``quiesce()``       run until bounded clients + in-flight work drain
``final_state()``   union of the (replica-0) partition stores
``next_txn_id()``   monotone transaction-id allocator
==================  =====================================================

Engines whose agreed order is reconstructible (``deterministic_order``)
additionally expose ``sorted_history()`` — the serial history the
:mod:`repro.core.checkers` replay — and identical ``(workload, seed)``
inputs must yield *identical* final states across such engines. Engines
without a pre-agreed order (the baseline) instead promise
serializability: some serial order of the committed transactions
explains the final state.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ClusterConfig
    from repro.workloads.base import Workload


class ExecutionEngine(ABC):
    """A named factory for one transaction-processing strategy.

    Subclasses set :attr:`name` (the ``ClusterConfig.engine`` /
    ``--engine`` spelling) and implement :meth:`build`. Register new
    engines in :data:`repro.engines.ENGINES`; see ``docs/engines.md``
    for the step-by-step recipe.
    """

    #: Registry key; also what ``ClusterConfig.engine`` validates against.
    name: str = "abstract"

    #: True when the engine executes an agreed global order, so same
    #: (workload, seed, injected schedule) implies bit-identical final
    #: state across engines sharing the flag. False for engines that
    #: only promise *some* serializable order (the lock-race baseline).
    deterministic_order: bool = True

    @abstractmethod
    def build(
        self,
        config: "ClusterConfig",
        workload: Optional["Workload"] = None,
        **kwargs: Any,
    ) -> Any:
        """Assemble a cluster implementing the surface described above.

        ``kwargs`` pass through to the concrete cluster constructor
        (``tracer=``, ``record_history=``, ...).
        """

    def prepare_config(self, config: "ClusterConfig") -> "ClusterConfig":
        """``config`` rewritten to name this engine (validated)."""
        if config.engine == self.name:
            return config
        return config.with_changes(engine=self.name)

    def __repr__(self) -> str:  # pragma: no cover - presentation
        return f"<ExecutionEngine {self.name}>"

"""The ``core`` engine: Calvin's deterministic scheduler (the paper)."""

from __future__ import annotations

from typing import Any, Optional

from repro.engines.base import ExecutionEngine


class CoreEngine(ExecutionEngine):
    name = "core"
    deterministic_order = True

    def build(self, config, workload: Optional[Any] = None, **kwargs: Any):
        from repro.core.cluster import CalvinCluster

        return CalvinCluster(self.prepare_config(config), workload=workload, **kwargs)

"""The ``star`` engine: phase switching with a single-master MP drain."""

from __future__ import annotations

from typing import Any, Optional

from repro.engines.base import ExecutionEngine


class StarEngine(ExecutionEngine):
    name = "star"
    # STAR keeps Calvin's agreed global order (phases gate only *where*
    # multipartition transactions run), so final state matches core's
    # bit for bit on the same input schedule.
    deterministic_order = True

    def build(self, config, workload: Optional[Any] = None, **kwargs: Any):
        from repro.star.cluster import StarCluster

        return StarCluster(self.prepare_config(config), workload=workload, **kwargs)

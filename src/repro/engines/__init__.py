"""Execution-engine registry (see :mod:`repro.engines.base`).

This module stays import-light: :class:`repro.config.ClusterConfig`
validates ``engine`` names against :data:`ENGINES` lazily, so importing
it must not drag in the cluster implementations (which themselves
import the config module). Engine modules load on first
:func:`get_engine` call.
"""

from __future__ import annotations

import importlib
from typing import Any, Dict, Optional, TYPE_CHECKING, Tuple

from repro.engines.base import ExecutionEngine
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import ClusterConfig
    from repro.workloads.base import Workload

# name -> (module, class). Adding a fourth engine is one line here plus
# an ExecutionEngine subclass; docs/engines.md walks through it.
ENGINES: Dict[str, Tuple[str, str]] = {
    "core": ("repro.engines.core", "CoreEngine"),
    "baseline": ("repro.engines.baseline", "BaselineEngine"),
    "star": ("repro.engines.star", "StarEngine"),
}

_instances: Dict[str, ExecutionEngine] = {}


def get_engine(name: str) -> ExecutionEngine:
    """The (singleton) engine registered under ``name``."""
    if name not in ENGINES:
        raise ConfigError(f"unknown engine {name!r}; known: {sorted(ENGINES)}")
    engine = _instances.get(name)
    if engine is None:
        module_name, class_name = ENGINES[name]
        engine = getattr(importlib.import_module(module_name), class_name)()
        if engine.name != name:
            raise ConfigError(
                f"engine registered as {name!r} calls itself {engine.name!r}"
            )
        _instances[name] = engine
    return engine


def build_cluster(
    config: "ClusterConfig",
    workload: Optional["Workload"] = None,
    **kwargs: Any,
) -> Any:
    """Build the cluster ``config.engine`` names (the CLI entry point)."""
    return get_engine(config.engine).build(config, workload, **kwargs)


__all__ = ["ENGINES", "ExecutionEngine", "build_cluster", "get_engine"]

"""Partial replication: hosting maps, shrunk Paxos groups, replica-local reads."""

from __future__ import annotations

import pytest

from repro import CalvinCluster, ClusterConfig, Microbenchmark
from repro.core import checkers
from repro.core.traffic import ClientProfile
from repro.errors import ConfigError
from repro.geo import add_read_clients
from repro.geo.readonly import ReadOnlyClient
from repro.partition.catalog import NodeId
from tests.conftest import run_bounded_cluster

# Replica 0 hosts everything (the system of record); replicas 1 and 2
# each host one partition.
HOSTING = ((0, 1), (0,), (1,))


def _partial_config(**overrides) -> ClusterConfig:
    base = dict(
        num_partitions=2,
        num_replicas=3,
        replication_mode="paxos",
        partial_hosting=HOSTING,
        seed=2012,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def _workload():
    return Microbenchmark(mp_fraction=0.3, hot_set_size=20, cold_set_size=100)


class TestConfigValidation:
    @pytest.mark.parametrize(
        "overrides, message",
        [
            (dict(partial_hosting=((0, 1),)), "one partition tuple per replica"),
            (dict(partial_hosting=((0, 1), (1, 0), (1,))), "sorted and unique"),
            (dict(partial_hosting=((0, 1), (0, 0), (1,))), "sorted and unique"),
            (dict(partial_hosting=((0, 1), (5,), (1,))), "unknown partition 5"),
            (dict(partial_hosting=((0, 1), (), (1,))), "hosts no partitions"),
            (
                dict(partial_hosting=((0,), (0,), (1,))),
                "replica 0 must host every partition",
            ),
            (dict(engine="star"), "requires the core engine"),
        ],
    )
    def test_invalid_hosting_rejected(self, overrides, message):
        with pytest.raises(ConfigError, match=message):
            _partial_config(**overrides).validate()

    def test_hosting_rejects_fault_injection(self):
        with pytest.raises(ConfigError, match="fault injection"):
            _partial_config(fault_profile="chaos-mix").validate()

    def test_hosting_needs_multiple_replicas(self):
        with pytest.raises(ConfigError, match="num_replicas >= 2"):
            ClusterConfig(
                num_partitions=2, num_replicas=1, partial_hosting=((0, 1),)
            ).validate()


class TestCatalogLayout:
    def test_sparse_layout(self):
        cluster = CalvinCluster(_partial_config(), workload=_workload())
        catalog = cluster.catalog
        assert catalog.partial
        assert tuple(catalog.hosted_partitions(0)) == (0, 1)
        assert tuple(catalog.hosted_partitions(1)) == (0,)
        assert tuple(catalog.hosted_partitions(2)) == (1,)
        assert catalog.is_hosted(1, 0) and not catalog.is_hosted(1, 1)
        # Unhosted nodes are never built.
        assert set(cluster.nodes) == {
            NodeId(0, 0),
            NodeId(0, 1),
            NodeId(1, 0),
            NodeId(2, 1),
        }

    def test_full_replication_is_dense(self):
        config = ClusterConfig(
            num_partitions=2, num_replicas=2, replication_mode="paxos"
        )
        cluster = CalvinCluster(config, workload=_workload())
        assert not cluster.catalog.partial
        assert len(cluster.nodes) == 4
        assert cluster.catalog.writeset_targets(0, {0, 1}) == ()

    def test_writeset_targets_cover_straddled_hosts(self):
        catalog = CalvinCluster(_partial_config(), workload=_workload()).catalog
        # Replica 1 hosts partition 0 but not partition 1: a {0, 1}
        # transaction must ship it a writeset for partition 0.
        assert catalog.writeset_targets(0, {0, 1}) == (1,)
        assert catalog.writeset_targets(1, {0, 1}) == (2,)
        # Single-partition transactions re-execute everywhere they land.
        assert catalog.writeset_targets(0, {0}) == ()
        assert catalog.writeset_targets(1, {1}) == ()

    def test_paxos_groups_shrink_to_hosting_replicas(self):
        cluster = CalvinCluster(_partial_config(), workload=_workload())
        group_of = lambda node_id: (
            cluster.nodes[node_id].sequencer.replication.participant.group
        )
        assert group_of(NodeId(0, 0)) == [0, 1]
        assert group_of(NodeId(0, 1)) == [0, 2]


class TestPartialReplicationEndToEnd:
    def test_partial_cluster_converges_and_stays_consistent(self):
        cluster = run_bounded_cluster(
            _workload(), _partial_config(), clients_per_partition=4, max_txns=8
        )
        assert cluster.metrics.committed > 0
        checkers.check_replica_consistency(cluster)
        checkers.check_no_double_apply(cluster)
        checkers.check_epoch_contiguity(cluster)
        checkers.check_serializability(cluster)

    def test_partial_cluster_is_deterministic(self):
        def fingerprints():
            cluster = run_bounded_cluster(
                _workload(), _partial_config(), clients_per_partition=4, max_txns=8
            )
            return cluster.final_state(), cluster.metrics.committed

        assert fingerprints() == fingerprints()

    def test_partial_over_geo_topology(self):
        config = _partial_config(topology="ring", wan_latency=0.01)
        cluster = CalvinCluster(config, workload=_workload())
        cluster.load_workload_data()
        cluster.add_clients(ClientProfile(per_partition=4, max_txns=8))
        cluster.run(duration=0.4)
        cluster.quiesce()
        assert cluster.metrics.committed > 0
        assert cluster.network.wan_messages > 0
        checkers.check_replica_consistency(cluster)


def _ro_cluster(replica_local: bool, max_txns: int = 5):
    config = ClusterConfig(
        num_partitions=2,
        num_replicas=3,
        replication_mode="paxos",
        topology="ring",
        wan_latency=0.01,
        seed=2012,
    )
    cluster = CalvinCluster(config, workload=_workload())
    cluster.load_workload_data()
    cluster.add_clients(ClientProfile(per_partition=2, max_txns=5))
    readers = add_read_clients(
        cluster, 6, max_txns=max_txns, replica_local=replica_local
    )
    cluster.run(duration=0.5)
    cluster.quiesce()
    return cluster, readers


class TestReplicaLocalReads:
    def test_read_only_clients_complete_off_the_write_path(self):
        cluster, readers = _ro_cluster(replica_local=True)
        assert all(reader.completed == reader.max_txns for reader in readers)
        # Spread clients hit their own replica, not the input site.
        assert sum(reader.local_replica_hits for reader in readers) > 0
        staleness = cluster.metrics_registry.histogram("geo.ro.staleness_epochs")
        latency = cluster.metrics_registry.histogram("geo.ro.latency_ms")
        assert staleness.count == sum(reader.completed for reader in readers)
        assert latency.count == staleness.count
        # A local read never pays a WAN round trip (10 ms one way).
        assert latency.percentile(50) < 10.0

    def test_replica_local_false_forces_the_input_site(self):
        _, readers = _ro_cluster(replica_local=False)
        assert all(reader.completed == reader.max_txns for reader in readers)
        assert sum(reader.local_replica_hits for reader in readers) == 0

    def test_reads_are_deterministic(self):
        def staleness_snapshot():
            cluster, readers = _ro_cluster(replica_local=True)
            hist = cluster.metrics_registry.histogram("geo.ro.staleness_epochs")
            return (
                hist.count,
                hist.percentile(50),
                tuple(reader.local_replica_hits for reader in readers),
            )

        assert staleness_snapshot() == staleness_snapshot()

    def test_partial_hosting_restricts_serving_replicas(self):
        config = _partial_config(topology="ring", wan_latency=0.01)
        cluster = CalvinCluster(config, workload=_workload())
        cluster.load_workload_data()
        readers = add_read_clients(cluster, 3, max_txns=3)
        # Replica 1 hosts only partition 0: a query touching partition 1
        # can never be served there, whatever the client's datacenter.
        client = readers[1]
        assert client.datacenter == 1
        assert cluster.catalog.is_hosted(1, 0)
        chosen = client._choose_replica([0])
        assert cluster.catalog.is_hosted(chosen, 0)
        assert client._choose_replica([0, 1]) == 0  # only replica 0 has both
        cluster.run(duration=0.4)
        cluster.quiesce()
        assert all(reader.completed == 3 for reader in readers)

    def test_read_client_rejects_bad_shapes(self):
        cluster = CalvinCluster(_partial_config(), workload=_workload())
        with pytest.raises(ConfigError, match="partitions_per_query"):
            ReadOnlyClient(cluster, 0, partitions_per_query=0)
        with pytest.raises(ConfigError, match="cover every queried partition"):
            ReadOnlyClient(cluster, 0, keys_per_query=1, partitions_per_query=2)

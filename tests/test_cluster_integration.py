"""End-to-end cluster correctness: serializability, determinism, replicas."""

import pytest

from repro import (
    CalvinCluster,
    ClusterConfig,
    Microbenchmark,
    TpccWorkload,
    check_replica_consistency,
    check_serializability,
)
from tests.conftest import BankWorkload, run_bounded_cluster


class TestSerializability:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_microbenchmark_serializable(self, seed):
        workload = Microbenchmark(mp_fraction=0.3, hot_set_size=10, cold_set_size=100)
        cluster = run_bounded_cluster(
            workload, ClusterConfig(num_partitions=3, seed=seed)
        )
        assert check_serializability(cluster) > 0

    def test_bank_conserves_money_and_serializes(self):
        workload = BankWorkload(accounts_per_partition=20)
        cluster = run_bounded_cluster(
            workload, ClusterConfig(num_partitions=3, seed=11), max_txns=30
        )
        check_serializability(cluster)
        total = sum(cluster.final_state().values())
        assert total == 3 * 20 * 100  # transfers conserve money

    def test_tpcc_mix_serializable(self):
        workload = TpccWorkload()
        cluster = run_bounded_cluster(
            workload, ClusterConfig(num_partitions=2, seed=7),
            clients_per_partition=8, max_txns=20,
        )
        checked = check_serializability(cluster)
        assert checked >= 2 * 8 * 20  # restarts add extra history entries

    def test_microbenchmark_sum_invariant(self):
        workload = Microbenchmark(mp_fraction=0.5, hot_set_size=5, cold_set_size=50)
        cluster = run_bounded_cluster(
            workload, ClusterConfig(num_partitions=2, seed=3)
        )
        total = sum(cluster.final_state().values())
        assert total == 10 * cluster.metrics.committed


class TestDeterminism:
    def run_once(self, seed=5):
        workload = Microbenchmark(mp_fraction=0.2, hot_set_size=10, cold_set_size=100)
        return run_bounded_cluster(
            workload, ClusterConfig(num_partitions=2, seed=seed)
        )

    def test_same_seed_identical_final_state(self):
        assert self.run_once().final_state() == self.run_once().final_state()

    def test_same_seed_identical_history(self):
        a, b = self.run_once(), self.run_once()
        assert [(s, t.txn_id, st) for s, t, st in a.sorted_history()] == [
            (s, t.txn_id, st) for s, t, st in b.sorted_history()
        ]

    def test_different_seed_differs(self):
        assert self.run_once(seed=5).final_state() != self.run_once(seed=6).final_state()

    def test_log_replay_reproduces_state(self):
        cluster = self.run_once()
        replayed = CalvinCluster.replay(
            cluster.config,
            cluster.registry,
            cluster.catalog.partitioner,
            cluster.initial_data,
            cluster.merged_log(),
        )
        assert replayed.final_state() == cluster.final_state()


class TestReplication:
    def run_replicated(self, mode, replicas):
        workload = Microbenchmark(mp_fraction=0.25, hot_set_size=10, cold_set_size=100)
        config = ClusterConfig(
            num_partitions=2, num_replicas=replicas, replication_mode=mode, seed=9
        )
        cluster = CalvinCluster(config, workload=workload)
        cluster.load_workload_data()
        cluster.add_clients(8, max_txns=20)
        cluster.run(duration=0.2)
        cluster.quiesce()
        return cluster

    def test_async_replicas_consistent(self):
        cluster = self.run_replicated("async", 2)
        check_replica_consistency(cluster)
        check_serializability(cluster)

    def test_paxos_replicas_consistent(self):
        cluster = self.run_replicated("paxos", 3)
        check_replica_consistency(cluster)
        check_serializability(cluster)

    def test_paxos_commits_despite_wan(self):
        cluster = self.run_replicated("paxos", 3)
        assert cluster.metrics.committed >= 2 * 8 * 20 * 0.9

    def test_replica_fingerprints_shape(self):
        cluster = self.run_replicated("async", 2)
        prints = cluster.replica_fingerprints()
        assert set(prints) == {0, 1}
        assert len(prints[0]) == 2


class TestDependentWorkloadIntegration:
    def test_tpcc_delivery_eventually_delivers(self):
        workload = TpccWorkload(
            mix={"new_order": 0.7, "delivery": 0.3}, remote_fraction=0.0
        )
        cluster = run_bounded_cluster(
            workload, ClusterConfig(num_partitions=1, seed=13),
            clients_per_partition=6, max_txns=30,
        )
        check_serializability(cluster)
        state = cluster.final_state()
        delivered = sum(
            1 for key, value in state.items()
            if key[0] == "order" and value["carrier"] is not None
        )
        assert delivered > 0
        assert cluster.metrics.per_procedure.get("delivery", 0) > 0


class TestConflictOrderChecker:
    def test_conflict_order_holds(self):
        from repro import check_conflict_order

        workload = Microbenchmark(mp_fraction=0.4, hot_set_size=5, cold_set_size=60)
        cluster = run_bounded_cluster(
            workload, ClusterConfig(num_partitions=3, seed=23)
        )
        verified = check_conflict_order(cluster)
        # Every (participant, txn) completion on replica 0 is verified.
        total_completions = sum(
            cluster.node(0, p).scheduler.completed for p in range(3)
        )
        assert verified == total_completions

    def test_requires_history(self):
        from repro import CalvinCluster, check_conflict_order
        from repro.errors import ConsistencyError

        workload = Microbenchmark(hot_set_size=5, cold_set_size=60)
        cluster = CalvinCluster(
            ClusterConfig(num_partitions=1, seed=1),
            workload=workload, record_history=False,
        )
        with pytest.raises(ConsistencyError):
            check_conflict_order(cluster)

    def test_detects_injected_violation(self):
        from repro import check_conflict_order
        from repro.errors import ConsistencyError

        workload = Microbenchmark(mp_fraction=0.0, hot_set_size=2, cold_set_size=60)
        cluster = run_bounded_cluster(
            workload, ClusterConfig(num_partitions=1, seed=2),
            clients_per_partition=4, max_txns=10,
        )
        trace = cluster.node(0, 0).scheduler.execution_trace
        # Corrupt the trace: swap two conflicting completions (every txn
        # touches a hot key from a 2-element set, so swaps conflict).
        trace[0], trace[-1] = trace[-1], trace[0]
        with pytest.raises(ConsistencyError):
            check_conflict_order(cluster)

"""Elastic reconfiguration: the control plane's correctness contract.

Every cluster-shape change (split / merge / join / leave) goes through
the sequenced log, so the standard oracles apply unchanged: the run is
serializable, the log replays bit-identically (including the
reconfiguration itself), and the same seed gives the same digests
whatever the control plane did mid-run.
"""

from __future__ import annotations

import pytest

from repro import (
    CalvinCluster,
    ClientProfile,
    ClusterAdmin,
    ClusterConfig,
    ConfigError,
    Microbenchmark,
    check_conflict_order,
    check_epoch_contiguity,
    check_no_double_apply,
    check_no_lost_commits,
    check_serializability,
)
from repro.bench.elastic import shape_digest
from repro.reconfig import AutoscalePolicy, Autoscaler


def _workload():
    return Microbenchmark(mp_fraction=0.3, hot_set_size=10, cold_set_size=100)


def _cluster(partitions=4, active=2, replicas=1, seed=2012, **overrides):
    config = ClusterConfig(
        num_partitions=partitions,
        num_replicas=replicas,
        replication_mode="paxos" if replicas > 1 else "none",
        seed=seed,
        active_partitions=active,
        **overrides,
    )
    cluster = CalvinCluster(config, workload=_workload())
    cluster.load_workload_data()
    return cluster


def _checks(cluster):
    check_serializability(cluster)
    check_conflict_order(cluster)
    check_epoch_contiguity(cluster)
    check_no_double_apply(cluster)
    check_no_lost_commits(cluster)


class TestEpochRouter:
    def test_origin_sets_are_epoch_keyed(self):
        cluster = _cluster()
        catalog = cluster.catalog
        assert catalog.origins_at(0) == (0, 1)
        catalog.arm_origin_change(5, (0, 1, 2))
        assert catalog.origins_at(4) == (0, 1)
        assert catalog.origins_at(5) == (0, 1, 2)
        assert catalog.origins_at(9) == (0, 1, 2)

    def test_overrides_flip_at_their_epoch(self):
        cluster = _cluster()
        catalog = cluster.catalog
        key = next(iter(cluster.node(0, 0).store.keys()))
        assert catalog.partition_of_at(key, 0) == 0
        catalog.arm_override(3, {key: 2})
        assert catalog.partition_of_at(key, 2) == 0
        assert catalog.partition_of_at(key, 3) == 2
        assert catalog.partition_of_at(key, 7) == 2

    def test_routing_version_changes_with_each_arm(self):
        cluster = _cluster()
        catalog = cluster.catalog
        before = catalog.routing_version_at(4)
        catalog.arm_override(4, {"k": 1})
        assert catalog.routing_version_at(4) != before
        assert catalog.routing_version_at(3) == before


class TestAdminValidation:
    def test_plan_is_pure(self):
        cluster = _cluster()
        admin = ClusterAdmin(cluster)
        plan = admin.plan(0, fraction=0.5)
        assert plan.num_keys > 0
        assert admin.migrations == 0 and not admin.events
        assert admin.plan(0, fraction=0.5) == plan  # no id consumed

    def test_rejects_bad_arguments(self):
        cluster = _cluster()
        admin = ClusterAdmin(cluster)
        with pytest.raises(ConfigError):
            admin.plan(0, fraction=0.0)
        with pytest.raises(ConfigError):
            admin.plan(0, fraction=1.5)
        with pytest.raises(ConfigError):
            admin.plan(3)  # dormant spare, not an active origin
        with pytest.raises(ConfigError):
            admin.plan(0, dest=0)
        with pytest.raises(ConfigError):
            admin.plan(0, at_epoch=0)  # flip must be >= current + lead
        with pytest.raises(ConfigError):
            admin.add_node(partition=0)  # already active
        with pytest.raises(ConfigError):
            admin.remove_node(3)  # not an origin

    def test_cannot_remove_last_origin(self):
        cluster = _cluster(partitions=2, active=1)
        admin = ClusterAdmin(cluster)
        with pytest.raises(ConfigError):
            admin.remove_node(0)

    def test_one_admin_per_cluster(self):
        cluster = _cluster()
        ClusterAdmin(cluster)
        with pytest.raises(ConfigError):
            ClusterAdmin(cluster)

    def test_requires_core_engine(self):
        from repro.engines import build_cluster

        config = ClusterConfig(num_partitions=2, seed=1, engine="star")
        cluster = build_cluster(config, workload=_workload())
        with pytest.raises(ConfigError):
            ClusterAdmin(cluster)


class TestSplit:
    def test_split_under_load_is_serializable(self):
        cluster = _cluster()
        admin = ClusterAdmin(cluster)
        cluster.add_clients(ClientProfile(per_partition=4, max_txns=15))
        plan = admin.split(0, fraction=0.5)
        cluster.run(duration=0.4)
        cluster.quiesce()
        assert admin.quiesced
        _checks(cluster)
        # The spare joined and the moved keys live only at the dest.
        assert admin.current_origins() == (0, 1, 2)
        dest_store = cluster.node(0, plan.dest).store
        source_store = cluster.node(0, plan.source).store
        for key in plan.keys:
            assert key in dest_store
            assert key not in source_store
        assert [event.kind for event in admin.events] == ["join", "split"]
        assert admin.keys_moved == plan.num_keys

    def test_merge_moves_everything(self):
        cluster = _cluster(partitions=2, active=2)
        admin = ClusterAdmin(cluster)
        cluster.add_clients(ClientProfile(per_partition=4, max_txns=10))
        plan = admin.merge(1, dest=0)
        cluster.run(duration=0.4)
        cluster.quiesce()
        _checks(cluster)
        assert len(cluster.node(0, 1).store) == 0
        assert plan.num_keys > 0
        # Merge does not retire the source origin.
        assert admin.current_origins() == (0, 1)


class TestJoinLeave:
    def test_add_node_grows_origin_set(self):
        cluster = _cluster()
        admin = ClusterAdmin(cluster)
        cluster.add_clients(ClientProfile(per_partition=4, max_txns=10))
        partition = admin.add_node()
        assert partition == 2
        cluster.run(duration=0.3)
        cluster.quiesce()
        _checks(cluster)
        assert admin.current_origins() == (0, 1, 2)
        assert admin.spare_partitions() == [3]

    def test_remove_node_retires_and_redirects(self):
        cluster = _cluster()
        admin = ClusterAdmin(cluster)
        cluster.add_clients(ClientProfile(per_partition=4, max_txns=15))
        plan = admin.remove_node(1)
        cluster.run(duration=0.5)
        cluster.quiesce()
        _checks(cluster)
        assert admin.current_origins() == (0,)
        assert len(cluster.node(0, 1).store) == 0
        assert plan is not None and plan.dest == 0
        # Clients homed on the retired origin were redirected.
        assert all(client.partition != 1 for client in cluster.clients)
        # The retired sequencer stopped cutting batches.
        last_epoch = max(entry.epoch for entry in cluster.node(0, 1).input_log)
        assert last_epoch <= plan.flip_epoch

    def test_quiesce_waits_for_pending_migration(self):
        cluster = _cluster()
        admin = ClusterAdmin(cluster)
        cluster.add_clients(ClientProfile(per_partition=4, max_txns=10))
        admin.split(0, 0.5)
        assert not admin.quiesced  # config txn still pending
        cluster.run(duration=0.3)
        cluster.quiesce()
        assert admin.quiesced


class TestDeterminism:
    def _elastic_run(self, seed=2012):
        cluster = _cluster(seed=seed)
        admin = ClusterAdmin(cluster)
        cluster.add_clients(ClientProfile(per_partition=4, max_txns=15))
        sim = cluster.sim
        sim.schedule_at(0.1, admin.split, 0, 0.5)
        sim.schedule_at(0.25, admin.remove_node, 1)
        cluster.run(duration=0.5)
        cluster.quiesce()
        return cluster

    def test_same_seed_same_shape_digest(self):
        a, b = self._elastic_run(), self._elastic_run()
        assert shape_digest(a) == shape_digest(b)
        assert a.reconfig_admin.events == b.reconfig_admin.events

    def test_different_seed_differs(self):
        assert shape_digest(self._elastic_run(seed=2012)) != shape_digest(
            self._elastic_run(seed=2013)
        )

    def test_replay_reproduces_reconfigured_state(self):
        cluster = self._elastic_run()
        replayed = CalvinCluster.replay(
            cluster.config,
            cluster.registry,
            cluster.catalog.partitioner,
            cluster.initial_data,
            cluster.merged_log(),
        )
        assert replayed.final_state() == cluster.final_state()
        # The replay rebuilt the same routing timeline from the log
        # alone: the moved keys live at the destination there too.
        plan = cluster.reconfig_admin.plans[0]
        assert all(key in replayed.node(0, plan.dest).store for key in plan.keys)


class TestAutoscaler:
    def _overloaded(self, seed=2012):
        cluster = _cluster(
            admission_policy="backpressure",
            admission_epoch_budget=20,
            admission_queue_capacity=40,
            seed=seed,
        )
        admin = ClusterAdmin(cluster)
        rate = 1.3 * 20 / cluster.config.epoch_duration / 4
        total = 0.4
        cluster.add_clients(
            ClientProfile(
                per_partition=4, mode="open", rate=rate,
                max_txns=max(1, int(rate * total)),
            )
        )
        scaler = Autoscaler(
            admin,
            AutoscalePolicy(
                interval=4 * cluster.config.epoch_duration,
                scale_up_queue_depth=10,
                cooldown=0.1,
                min_origins=2,
            ),
        )
        scaler.start()
        cluster.run(duration=total)
        cluster.quiesce()
        return cluster, scaler

    def test_scales_up_under_overload(self):
        cluster, scaler = self._overloaded()
        assert any(action == "split" for _, action, _, _ in scaler.decisions)
        admin = cluster.reconfig_admin
        # A spare was activated and keys really moved; once the bounded
        # load drains the scaler may retire it again (that's the point).
        assert admin.joins >= 1 and admin.migrations >= 1
        assert admin.keys_moved > 0
        _checks(cluster)

    def test_decisions_are_deterministic(self):
        (_, a), (_, b) = self._overloaded(), self._overloaded()
        assert a.decisions == b.decisions

    def test_respects_min_origins(self):
        cluster = _cluster(partitions=2, active=2)
        admin = ClusterAdmin(cluster)
        cluster.add_clients(ClientProfile(per_partition=2, max_txns=5))
        scaler = Autoscaler(
            admin,
            AutoscalePolicy(
                interval=2 * cluster.config.epoch_duration,
                scale_down_idle_samples=2,
                cooldown=0.0,
                min_origins=2,
            ),
        )
        scaler.start()
        cluster.run(duration=0.4)
        cluster.quiesce()
        assert admin.current_origins() == (0, 1)
        assert not scaler.decisions

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            AutoscalePolicy(interval=0).validate()
        with pytest.raises(ConfigError):
            AutoscalePolicy(min_origins=0).validate()
        with pytest.raises(ConfigError):
            AutoscalePolicy(split_fraction=2.0).validate()

"""Unit tests for the transaction model: requests, contexts, procedures, OLLP."""

import pytest

from repro.config import ClusterConfig
from repro.errors import ConfigError, FootprintViolation, TransactionAborted
from repro.partition import Catalog, FuncPartitioner
from repro.txn import (
    DELETED,
    Footprint,
    Procedure,
    ProcedureRegistry,
    SequencedTxn,
    Transaction,
    TxnContext,
    reconnoiter,
)


def make_catalog(partitions=4):
    config = ClusterConfig(num_partitions=partitions)
    return Catalog(config, FuncPartitioner(partitions, lambda key: key[1]))


def make_txn(read_set, write_set, txn_id=1, dependent=False, token=None):
    return Transaction.create(
        txn_id=txn_id,
        procedure="p",
        args=None,
        read_set=read_set,
        write_set=write_set,
        dependent=dependent,
        footprint_token=token,
    )


class TestTransaction:
    def test_footprint_normalized(self):
        txn = make_txn([("k", 0)], [("k", 1)])
        assert isinstance(txn.read_set, frozenset)
        assert txn.all_keys() == {("k", 0), ("k", 1)}

    def test_participants(self):
        catalog = make_catalog()
        txn = make_txn([("k", 0), ("k", 2)], [("k", 2)])
        assert txn.participants(catalog) == {0, 2}

    def test_active_participants_are_writers(self):
        catalog = make_catalog()
        txn = make_txn([("k", 0), ("k", 1)], [("k", 1)])
        assert txn.active_participants(catalog) == {1}

    def test_read_only_has_one_active(self):
        catalog = make_catalog()
        txn = make_txn([("k", 3), ("k", 1)], [])
        assert txn.active_participants(catalog) == {1}
        assert txn.reply_partition(catalog) == 1

    def test_reply_partition_lowest_active(self):
        catalog = make_catalog()
        txn = make_txn([("k", 0)], [("k", 3), ("k", 2)])
        assert txn.reply_partition(catalog) == 2

    def test_empty_footprint_rejected(self):
        catalog = make_catalog()
        txn = make_txn([], [])
        with pytest.raises(ConfigError):
            txn.participants(catalog)

    def test_multipartition_flag(self):
        catalog = make_catalog()
        assert make_txn([("k", 0)], [("k", 1)]).is_multipartition(catalog)
        assert not make_txn([("k", 0)], [("k", 0)]).is_multipartition(catalog)


class TestSequencedTxn:
    def test_ordering_is_epoch_origin_index(self):
        txn = make_txn([("k", 0)], [])
        early = SequencedTxn((1, 0, 5), txn)
        later_origin = SequencedTxn((1, 1, 0), txn)
        later_epoch = SequencedTxn((2, 0, 0), txn)
        assert early < later_origin < later_epoch
        assert early.epoch == 1


class TestTxnContext:
    def test_read_from_snapshot(self):
        txn = make_txn([("k", 0)], [])
        ctx = TxnContext(txn, {("k", 0): 42})
        assert ctx.read(("k", 0)) == 42

    def test_missing_key_reads_none(self):
        txn = make_txn([("k", 0)], [])
        ctx = TxnContext(txn, {})
        assert ctx.read(("k", 0)) is None

    def test_read_outside_footprint_rejected(self):
        txn = make_txn([("k", 0)], [])
        ctx = TxnContext(txn, {})
        with pytest.raises(FootprintViolation):
            ctx.read(("other", 0))

    def test_write_only_key_not_readable_before_write(self):
        txn = make_txn([], [("k", 0)])
        ctx = TxnContext(txn, {})
        with pytest.raises(FootprintViolation):
            ctx.read(("k", 0))

    def test_read_your_writes(self):
        txn = make_txn([], [("k", 0)])
        ctx = TxnContext(txn, {})
        ctx.write(("k", 0), 7)
        assert ctx.read(("k", 0)) == 7

    def test_write_outside_write_set_rejected(self):
        txn = make_txn([("k", 0)], [])
        ctx = TxnContext(txn, {})
        with pytest.raises(FootprintViolation):
            ctx.write(("k", 0), 1)

    def test_delete_buffers_tombstone(self):
        txn = make_txn([("k", 0)], [("k", 0)])
        ctx = TxnContext(txn, {("k", 0): 5})
        ctx.delete(("k", 0))
        assert ctx.writes[("k", 0)] is DELETED
        assert ctx.read(("k", 0)) is None

    def test_delete_outside_write_set_rejected(self):
        txn = make_txn([("k", 0)], [])
        ctx = TxnContext(txn, {})
        with pytest.raises(FootprintViolation):
            ctx.delete(("k", 0))

    def test_cannot_write_sentinel(self):
        txn = make_txn([], [("k", 0)])
        ctx = TxnContext(txn, {})
        with pytest.raises(FootprintViolation):
            ctx.write(("k", 0), DELETED)

    def test_abort_raises(self):
        txn = make_txn([("k", 0)], [])
        ctx = TxnContext(txn, {})
        with pytest.raises(TransactionAborted):
            ctx.abort("nope")

    def test_random_deterministic_per_txn_id(self):
        a = TxnContext(make_txn([("k", 0)], [], txn_id=9), {})
        b = TxnContext(make_txn([("k", 0)], [], txn_id=9), {})
        c = TxnContext(make_txn([("k", 0)], [], txn_id=10), {})
        assert a.random.random() == b.random.random()
        assert a.random.random() != c.random.random()


class TestProcedureRegistry:
    def test_register_and_get(self):
        registry = ProcedureRegistry()
        proc = Procedure("p", lambda ctx: None)
        registry.register(proc)
        assert registry.get("p") is proc
        assert "p" in registry

    def test_duplicate_rejected(self):
        registry = ProcedureRegistry()
        registry.register(Procedure("p", lambda ctx: None))
        with pytest.raises(ConfigError):
            registry.register(Procedure("p", lambda ctx: None))

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            ProcedureRegistry().get("ghost")

    def test_define_decorator(self):
        registry = ProcedureRegistry()

        @registry.define("hello", logic_cpu=1e-6)
        def hello(ctx):
            return "hi"

        assert registry.get("hello").logic is hello
        assert registry.names() == ["hello"]

    def test_dependent_needs_both_hooks(self):
        with pytest.raises(ConfigError):
            Procedure("p", lambda ctx: None, reconnoiter=lambda r, a: None)

    def test_negative_cpu_rejected(self):
        with pytest.raises(ConfigError):
            Procedure("p", lambda ctx: None, logic_cpu=-1)


class TestOllp:
    def make_dependent(self):
        def recon(read_fn, args):
            pointer = read_fn("pointer")
            return Footprint.create({"pointer", pointer}, {pointer}, token=pointer)

        return Procedure(
            "dep", lambda ctx: None, reconnoiter=recon, recheck=lambda ctx: True
        )

    def test_reconnoiter_builds_footprint(self):
        proc = self.make_dependent()
        footprint = reconnoiter(proc, lambda key: "target", None)
        assert footprint.read_set == {"pointer", "target"}
        assert footprint.write_set == {"target"}
        assert footprint.token == "target"

    def test_reconnoiter_on_independent_rejected(self):
        proc = Procedure("p", lambda ctx: None)
        with pytest.raises(ConfigError):
            reconnoiter(proc, lambda key: None, None)

    def test_reconnoiter_must_return_footprint(self):
        proc = Procedure(
            "bad", lambda ctx: None,
            reconnoiter=lambda read_fn, args: "oops",
            recheck=lambda ctx: True,
        )
        with pytest.raises(ConfigError):
            reconnoiter(proc, lambda key: None, None)

    def test_create_normalizes_iterables(self):
        # Reconnaissance code builds sets, lists, generators — create()
        # freezes them all the same way.
        footprint = Footprint.create(
            ["a", "b", "a"], (key for key in ("b",))
        )
        assert footprint.read_set == frozenset({"a", "b"})
        assert footprint.write_set == frozenset({"b"})
        assert isinstance(footprint.read_set, frozenset)
        assert isinstance(footprint.write_set, frozenset)

    def test_footprint_token_pickle_round_trip(self):
        # The token rides in the replicated input log, so it must
        # survive pickling (delivery-style tuple-of-tuples evidence).
        import pickle

        token = ((("district", 1, 2), 3041), (("district", 1, 3), None))
        footprint = Footprint.create({"a"}, {"a"}, token=token)
        clone = pickle.loads(pickle.dumps(footprint))
        assert clone == footprint
        assert clone.token == token
        txn = make_txn({"a"}, {"a"}, dependent=True, token=token)
        wire = pickle.loads(pickle.dumps(txn))
        assert wire.footprint_token == token

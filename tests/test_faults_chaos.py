"""Property-based chaos tests: randomized fault plans, invariants green.

The property: for any survivable fault plan (drawn by
:func:`repro.faults.random_plan` or named in ``FAULT_PROFILES``) and any
seed, a bounded run must (a) quiesce, (b) satisfy every correctness
invariant — serializability, conflict order, replica consistency, epoch
contiguity, no double-apply, no lost commits — and (c) be bit-for-bit
reproducible: the same seed yields the same fault trace digest and the
same replica store fingerprints.

A fast smoke subset runs by default; the wider seeded sweeps carry the
``chaos`` marker (``pytest -m chaos``).
"""

import random

import pytest

from repro import CalvinCluster, ClusterConfig, Microbenchmark
from repro.core import checkers
from repro.faults import random_plan

# (config kwargs, label) — the shapes the sweep exercises. Replicated
# shapes unlock crash/partition draws in random_plan.
SHAPES = [
    ({"num_partitions": 2, "num_replicas": 1, "replication_mode": "none"}, "1r-none"),
    ({"num_partitions": 2, "num_replicas": 2, "replication_mode": "async"}, "2r-async"),
    ({"num_partitions": 2, "num_replicas": 2, "replication_mode": "paxos"}, "2r-paxos"),
    (
        {"num_partitions": 2, "num_replicas": 1, "replication_mode": "none",
         "disk_enabled": True},
        "1r-disk",
    ),
]


def build_workload(disk: bool = False):
    kwargs = dict(mp_fraction=0.3, hot_set_size=10, cold_set_size=100)
    if disk:
        kwargs.update(archive_fraction=0.3, archive_set_size=200)
    return Microbenchmark(**kwargs)


def run_chaos(config_kwargs, seed, plan_seed=None, duration=0.7, monitor=None):
    """One seeded chaos run; returns the quiesced cluster."""
    config = ClusterConfig(seed=seed, **config_kwargs)
    plan = random_plan(
        random.Random(seed * 101 if plan_seed is None else plan_seed),
        config,
        duration=duration * 0.7,
    )
    cluster = CalvinCluster(
        config,
        workload=build_workload(config.disk_enabled),
        fault_plan=plan,
        monitor_interval=monitor,
    )
    cluster.load_workload_data()
    cluster.add_clients(3, max_txns=12)
    cluster.run(duration=duration)
    cluster.quiesce()
    return cluster


def assert_invariants(cluster):
    checkers.check_serializability(cluster)
    checkers.check_conflict_order(cluster)
    checkers.check_replica_consistency(cluster)
    checkers.check_epoch_contiguity(cluster)
    checkers.check_no_double_apply(cluster)
    checkers.check_no_lost_commits(cluster)
    checkers.check_replica_prefix_consistency(cluster)
    assert cluster.metrics.committed > 0


class TestChaosSmoke:
    """Fast default subset: one run per shape plus the acceptance scenario."""

    def test_acceptance_chaos_mix_invariants_and_determinism(self):
        """The issue's acceptance run: crash + partition + disk + flaky
        links on a 2-replica paxos cluster, live monitor on, invariants
        green, and a same-seed rerun is bit-identical."""

        def run():
            config = ClusterConfig(
                num_partitions=2,
                num_replicas=2,
                replication_mode="paxos",
                seed=2012,
                fault_profile="chaos-mix",
                fault_horizon=0.6,
            )
            cluster = CalvinCluster(
                config, workload=build_workload(), monitor_interval=0.05
            )
            cluster.load_workload_data()
            cluster.add_clients(4, max_txns=20)
            cluster.run(duration=0.8)
            cluster.quiesce()
            return cluster

        a = run()
        assert_invariants(a)
        assert a.fault_injector.monitor_checks > 0
        kinds = {entry[1] for entry in a.fault_injector.trace}
        assert {"crash", "restart", "partition", "heal"} <= kinds

        b = run()
        assert a.fault_injector.trace_digest() == b.fault_injector.trace_digest()
        assert a.replica_fingerprints() == b.replica_fingerprints()
        assert [h[0] for h in a.sorted_history()] == [h[0] for h in b.sorted_history()]

    @pytest.mark.parametrize("config_kwargs,label", SHAPES, ids=[s[1] for s in SHAPES])
    def test_one_random_plan_per_shape(self, config_kwargs, label):
        cluster = run_chaos(config_kwargs, seed=7)
        assert_invariants(cluster)

    def test_same_seed_reproduces_trace_and_state(self):
        a = run_chaos(SHAPES[2][0], seed=5)
        b = run_chaos(SHAPES[2][0], seed=5)
        assert a.fault_injector.trace == b.fault_injector.trace
        assert a.replica_fingerprints() == b.replica_fingerprints()

    def test_different_plan_seeds_draw_different_plans(self):
        config = ClusterConfig(**SHAPES[2][0])
        plans = {
            random_plan(random.Random(seed), config, duration=0.5).describe().split(
                "\n", 1
            )[1]
            for seed in range(8)
        }
        assert len(plans) > 1


@pytest.mark.chaos
class TestChaosSweep:
    """Wider seeded sweeps (opt-in: ``pytest -m chaos``)."""

    @pytest.mark.parametrize("config_kwargs,label", SHAPES, ids=[s[1] for s in SHAPES])
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_random_plans_keep_invariants(self, config_kwargs, label, seed):
        cluster = run_chaos(config_kwargs, seed=seed, monitor=0.05)
        assert_invariants(cluster)

    @pytest.mark.parametrize("seed", [11, 12])
    def test_determinism_across_shapes(self, seed):
        for config_kwargs, _label in SHAPES[:3]:
            a = run_chaos(config_kwargs, seed=seed)
            b = run_chaos(config_kwargs, seed=seed)
            assert a.fault_injector.trace_digest() == b.fault_injector.trace_digest()
            assert a.replica_fingerprints() == b.replica_fingerprints()

    @pytest.mark.parametrize("profile", ["replica-crash", "site-partition",
                                         "flaky-links", "chaos-mix"])
    def test_named_profiles_on_paxos_pair(self, profile):
        config = ClusterConfig(
            num_partitions=2, num_replicas=2, replication_mode="paxos",
            seed=31, fault_profile=profile, fault_horizon=0.5,
        )
        cluster = CalvinCluster(
            config, workload=build_workload(), monitor_interval=0.05
        )
        cluster.load_workload_data()
        cluster.add_clients(3, max_txns=12)
        cluster.run(duration=0.7)
        cluster.quiesce()
        assert_invariants(cluster)

"""Unit tests for message types and their wire-size model."""

import dataclasses

import pytest

from repro.net.messages import (
    ClientSubmit,
    PrefetchRequest,
    RemoteRead,
    ReplicaBatch,
    SubBatch,
    TxnReply,
)
from repro.txn.result import TransactionResult, TxnStatus
from repro.txn.transaction import SequencedTxn, Transaction


def make_txn(txn_id=1):
    return Transaction.create(txn_id, "p", None, [("k", 0)], [("k", 0)])


class TestSizeEstimates:
    def test_client_submit(self):
        assert ClientSubmit(make_txn()).size_estimate() > 0

    def test_replica_batch_scales_with_txns(self):
        small = ReplicaBatch(0, 0, (make_txn(1),))
        large = ReplicaBatch(0, 0, tuple(make_txn(i) for i in range(10)))
        assert large.size_estimate() > small.size_estimate()

    def test_subbatch_scales(self):
        stxn = SequencedTxn((0, 0, 0), make_txn())
        empty = SubBatch(0, 0, ())
        full = SubBatch(0, 0, (stxn,) * 5)
        assert full.size_estimate() > empty.size_estimate()
        assert empty.size_estimate() > 0  # headers still cost bytes

    def test_remote_read_scales_with_values(self):
        small = RemoteRead((0, 0, 0), 1, {("k", 0): 1})
        large = RemoteRead((0, 0, 0), 1, {("k", i): i for i in range(20)})
        assert large.size_estimate() > small.size_estimate()

    def test_prefetch_request(self):
        msg = PrefetchRequest((("arch", 0, 1), ("arch", 0, 2)))
        assert msg.size_estimate() > PrefetchRequest(()).size_estimate() - 48

    def test_txn_reply(self):
        result = TransactionResult(1, TxnStatus.COMMITTED)
        assert TxnReply(result).size_estimate() > 0


class TestImmutability:
    def test_messages_frozen(self):
        msg = ClientSubmit(make_txn())
        with pytest.raises(dataclasses.FrozenInstanceError):
            msg.txn = None

    def test_transaction_frozen(self):
        txn = make_txn()
        with pytest.raises(dataclasses.FrozenInstanceError):
            txn.txn_id = 5
